//! E20 — platform observability under steady-state and faulted load.
//!
//! Claim (§IV-C / §V): a governable platform must be *auditable while it
//! runs*, not only after the fact — operators, regulators, and users all
//! need to see what the modules are doing. This experiment drives the
//! instrumented platform API through two otherwise identical workloads —
//! one steady-state, one under an injected fault schedule — and reads
//! everything off [`TelemetrySnapshot`]s: per-module call counts and
//! latency quantiles, epoch-commit phase timings (collect → merkle →
//! sign → append), breaker events, moderation backlog motion, and the
//! twins sync channel attached to the *same* hub. Along the way it
//! checks the snapshot contract the proptests state in the small:
//! every epoch-boundary snapshot dominates its predecessor.

use metaverse_core::platform::MetaversePlatform;
use metaverse_core::ReviewRequest;
use metaverse_ledger::chain::ChainConfig;
use metaverse_resilience::{FaultPlan, RetryPolicy};
use metaverse_telemetry::TelemetrySnapshot;
use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::DigitalTwin;

use crate::report::{ExperimentResult, Table};

const HORIZON: u64 = 1000;
const EPOCH: u64 = 100;
const CITIZENS: [&str; 6] = ["alice", "bob", "carol", "dave", "erin", "frank"];
const TROLLS: [&str; 4] = ["troll-0", "troll-1", "troll-2", "troll-3"];
const FAULT_MODULES: [&str; 4] = ["moderation", "privacy", "decision-making", "assets"];
/// The module slots the workload exercises (fixed order for stable rows).
const EXERCISED: [&str; 5] = ["decision-making", "reputation", "moderation", "assets", "privacy"];

/// One driven workload, scored entirely from its telemetry.
struct WorkloadRun {
    label: &'static str,
    snapshot: TelemetrySnapshot,
    boundary_snapshots: usize,
    monotone: bool,
    json_bytes: usize,
}

/// Drives the scripted workload (a trimmed E19 script: proposals,
/// ballots, reports, endorsements, flows, mints — plus a digital-twin
/// sync channel attached to the platform's hub) for `HORIZON` ticks.
fn drive(label: &'static str, seed: u64, plan: Option<FaultPlan>) -> WorkloadRun {
    let mut builder = MetaversePlatform::builder()
        .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
        .validators(["validator-0"])
        .telemetry(true);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let mut p = builder.build();
    for u in CITIZENS.iter().chain(TROLLS.iter()) {
        p.register_user(u).expect("fresh platform accepts every user");
    }
    p.review_collection_purpose(&ReviewRequest {
        collector: "render-svc".into(),
        sensor: metaverse_ledger::audit::SensorClass::Gaze,
        purpose: "foveation".into(),
        justification: "render quality".into(),
    });

    // A lossy, duplicating twin channel reporting into the same hub, so
    // the platform snapshot covers the twins subsystem too.
    let mut twin = DigitalTwin::new(1, "gallery-statue", "museum", 6);
    let mut channel = SyncChannel::new(SyncConfig {
        loss_rate: 0.2,
        dup_rate: 0.1,
        reconcile_interval: 50,
        seed,
        retry: Some(RetryPolicy::default()),
    });
    channel.attach_telemetry(p.telemetry());

    let mut pending_proposal: Option<&'static str> = None;
    let mut pending_votes: Vec<(&'static str, metaverse_dao::proposal::ProposalId)> = Vec::new();
    let mut open_proposals: Vec<(metaverse_dao::proposal::ProposalId, u64)> = Vec::new();
    let mut prev = p.telemetry_snapshot();
    let mut monotone = true;
    let mut boundary_snapshots = 0usize;

    while p.tick() < HORIZON {
        let t = p.tick();
        if t.is_multiple_of(EPOCH) {
            pending_proposal = Some(CITIZENS[(t / EPOCH) as usize % CITIZENS.len()]);
        }
        if let Some(proposer) = pending_proposal {
            if let Ok(id) = p.propose("root", proposer, "fund the commons") {
                pending_proposal = None;
                open_proposals.push((id, t));
                for voter in CITIZENS.iter().chain(TROLLS.iter()) {
                    pending_votes.push((voter, id));
                }
            }
        }
        pending_votes.retain(|&(voter, id)| p.vote("root", voter, id, true).is_err());
        if t.is_multiple_of(10) {
            let i = (t / 10) as usize;
            let _ = p.report(CITIZENS[i % CITIZENS.len()], TROLLS[i % TROLLS.len()]);
        }
        if t.is_multiple_of(7) {
            let i = (t / 7) as usize;
            let _ = p.endorse(CITIZENS[i % CITIZENS.len()], CITIZENS[(i + 1) % CITIZENS.len()]);
        }
        if t.is_multiple_of(25) {
            let user = CITIZENS[(t / 25) as usize % CITIZENS.len()];
            let _ = p.configure_flow(
                user,
                metaverse_ledger::audit::SensorClass::Gaze,
                "render-svc",
                "foveation",
            );
        }
        if t.is_multiple_of(50) {
            let creator = CITIZENS[(t / 50) as usize % CITIZENS.len()];
            if let Ok(id) = p.mint_asset(creator, &format!("meta://art/{t}"), b"pixels", 0.8) {
                let _ = p.list_asset(creator, id, 100);
            }
        }
        channel.step(&mut twin, (t % 6) as usize, if t.is_multiple_of(2) { 0.3 } else { -0.2 });

        p.advance_ticks(1);
        if p.tick().is_multiple_of(EPOCH) {
            let now = p.tick();
            let mut still_open = Vec::new();
            for (id, opened_at) in open_proposals.drain(..) {
                if now < opened_at + EPOCH {
                    still_open.push((id, opened_at));
                    continue;
                }
                match p.close_proposal("root", id) {
                    Ok(_) => pending_votes.retain(|&(_, v)| v != id),
                    Err(_) => still_open.push((id, opened_at)),
                }
            }
            open_proposals = still_open;
            let _ = p.commit_epoch();
            // The snapshot contract, checked live at every boundary.
            let snap = p.telemetry_snapshot();
            monotone &= snap.dominates(&prev);
            prev = snap;
            boundary_snapshots += 1;
        }
    }
    let _ = p.commit_epoch();

    let snapshot = p.telemetry_snapshot();
    monotone &= snapshot.dominates(&prev);
    let json_bytes = snapshot.to_json().len();
    WorkloadRun { label, snapshot, boundary_snapshots, monotone, json_bytes }
}

fn counter(snap: &TelemetrySnapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

/// Runs E20.
pub fn run(seed: u64) -> ExperimentResult {
    let steady = drive("steady", seed, None);
    let faulted = drive(
        "faulted",
        seed,
        Some(FaultPlan::random(
            seed.wrapping_mul(6364136223846793005).wrapping_add(20),
            HORIZON,
            12,
            &FAULT_MODULES,
            &["validator-0"],
        )),
    );
    let runs = [&steady, &faulted];

    let mut modules = Table::new(
        "per-module calls and latency (wall-clock ns from log2-bucket histograms)",
        &["workload", "module", "calls", "refused", "zombie", "timed", "p50 ns", "p99 ns"],
    );
    for run in runs {
        for label in EXERCISED {
            let snap = &run.snapshot;
            let hist = &snap.histograms[&format!("module.{label}.latency_ns")];
            modules.row(vec![
                run.label.into(),
                label.into(),
                counter(snap, &format!("module.{label}.calls")).to_string(),
                counter(snap, &format!("module.{label}.refused")).to_string(),
                counter(snap, &format!("module.{label}.zombie")).to_string(),
                hist.count.to_string(),
                hist.quantile(0.5).to_string(),
                hist.quantile(0.99).to_string(),
            ]);
        }
    }

    let mut phases = Table::new(
        "epoch-commit phase profile (collect spans commits; merkle/sign/append span blocks)",
        &["workload", "phase", "count", "mean ns", "p99 ns"],
    );
    for run in runs {
        for phase in ["collect", "merkle", "sign", "append"] {
            let hist = &run.snapshot.histograms[&format!("epoch.{phase}_ns")];
            phases.row(vec![
                run.label.into(),
                phase.into(),
                hist.count.to_string(),
                format!("{:.0}", hist.mean()),
                hist.quantile(0.99).to_string(),
            ]);
        }
    }

    let mut counters = Table::new(
        "op counters, breaker events, and the twins channel on the shared hub",
        &[
            "workload", "ops total", "commits", "aborted", "txs", "breaker events",
            "deferred", "replayed", "twins lost", "twins retx", "twins dedup",
        ],
    );
    for run in runs {
        let snap = &run.snapshot;
        counters.row(vec![
            run.label.into(),
            snap.counter_sum("ops.").to_string(),
            counter(snap, "epoch.commits").to_string(),
            counter(snap, "epoch.aborts").to_string(),
            counter(snap, "epoch.txs_submitted").to_string(),
            snap.counter_sum("breaker.").to_string(),
            counter(snap, "moderation.reports_deferred").to_string(),
            counter(snap, "moderation.reports_replayed").to_string(),
            counter(snap, "twins.sync.updates_lost").to_string(),
            counter(snap, "twins.sync.retransmissions").to_string(),
            counter(snap, "twins.sync.duplicates_dropped").to_string(),
        ]);
    }

    ExperimentResult {
        id: "E20".into(),
        title: "Platform observability under steady-state and faulted load".into(),
        claim: "A governable platform is auditable while it runs: one snapshot surface \
                covers module latencies, epoch phases, breaker events, and subsystem \
                counters, and only ever grows (§IV-C)"
            .into(),
        tables: vec![modules, phases, counters],
        notes: vec![
            format!(
                "snapshot monotonicity held at every epoch boundary (steady: {} snapshots, \
                 {}; faulted: {} snapshots, {})",
                steady.boundary_snapshots,
                if steady.monotone { "all dominate their predecessor" } else { "VIOLATED" },
                faulted.boundary_snapshots,
                if faulted.monotone { "all dominate their predecessor" } else { "VIOLATED" },
            ),
            format!(
                "the full snapshot serialises to ~{} bytes (steady) / ~{} bytes (faulted) of \
                 dependency-free JSON — cheap enough to ship every epoch",
                steady.json_bytes, faulted.json_bytes,
            ),
            format!(
                "the faulted workload shows what the steady one cannot: {} refused calls, \
                 {} breaker transitions, and {} deferred-then-replayed moderation reports, \
                 all from the same pre-registered instruments — observability does not need \
                 a code path of its own",
                EXERCISED
                    .iter()
                    .map(|m| counter(&faulted.snapshot, &format!("module.{m}.refused")))
                    .sum::<u64>(),
                faulted.snapshot.counter_sum("breaker."),
                counter(&faulted.snapshot, "moderation.reports_replayed"),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Columns of the module table that are deterministic in the seed
    /// (everything but the wall-clock ns quantiles).
    fn deterministic_module_cols(result: &ExperimentResult) -> Vec<Vec<String>> {
        result.tables[0].rows.iter().map(|r| r[..6].to_vec()).collect()
    }

    #[test]
    fn counters_deterministic_in_the_seed() {
        let a = run(7);
        let b = run(7);
        assert_eq!(deterministic_module_cols(&a), deterministic_module_cols(&b));
        assert_eq!(a.tables[2].rows, b.tables[2].rows);
    }

    #[test]
    fn both_workloads_time_every_exercised_module_and_phase() {
        let result = run(7);
        let modules = &result.tables[0].rows;
        assert_eq!(modules.len(), 2 * EXERCISED.len());
        for row in modules {
            assert!(row[2].parse::<u64>().unwrap() > 0, "no calls: {row:?}");
            assert!(row[5].parse::<u64>().unwrap() > 0, "empty latency histogram: {row:?}");
        }
        let phases = &result.tables[1].rows;
        assert_eq!(phases.len(), 8);
        for row in phases {
            assert!(row[2].parse::<u64>().unwrap() > 0, "phase never timed: {row:?}");
        }
        assert!(result.notes[0].contains("all dominate"), "{:?}", result.notes[0]);
        assert!(!result.notes[0].contains("VIOLATED"));
    }

    #[test]
    fn faults_surface_only_in_the_faulted_workload() {
        let result = run(7);
        let rows = &result.tables[2].rows;
        let (steady, faulted) = (&rows[0], &rows[1]);
        let num = |row: &Vec<String>, col: usize| row[col].parse::<u64>().unwrap();
        assert_eq!(num(steady, 5), 0, "steady workload trips no breakers");
        assert_eq!(num(steady, 6), 0, "steady workload defers nothing");
        assert!(num(faulted, 5) > 0, "faulted workload records breaker events");
        assert!(num(faulted, 6) > 0, "faulted workload defers reports");
        assert_eq!(
            num(faulted, 6),
            num(faulted, 7),
            "every deferred report is replayed by an epoch boundary at the latest"
        );
        // The lossy twins channel is visible on both hubs.
        assert!(num(steady, 8) > 0 && num(faulted, 8) > 0);
        assert!(num(steady, 9) > 0, "retransmissions recorded");
    }
}
