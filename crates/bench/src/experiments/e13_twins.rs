//! E13 — digital-twin synchronization and ledger authenticity.
//!
//! Claim (§IV-A): the metaverse stays "synchronized with the physical
//! one", and "the most straightforward approach to protecting digital
//! twins' authenticity and origin is using a digital ledger". The
//! experiment sweeps channel loss and reconciliation interval, then
//! demonstrates attestation-based forgery detection.

use metaverse_ledger::chain::{Chain, ChainConfig};
use metaverse_twins::registry::{TwinRegistry, VerifyOutcome};
use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::{DigitalTwin, TwinState};

use crate::report::{f3, ExperimentResult, Table};

const TICKS: u64 = 2000;

/// Runs E13.
pub fn run(seed: u64) -> ExperimentResult {
    let mut sync_table = Table::new(
        "twin divergence vs channel loss × reconciliation interval (2000 ticks)",
        &["loss", "reconcile every", "mean div", "max div", "lost", "attestations"],
    );
    for &loss in &[0.0, 0.1, 0.3] {
        for &interval in &[0u64, 200, 50, 10] {
            let mut twin = DigitalTwin::new(1, "gallery-statue", "museum", 6);
            let mut channel = SyncChannel::new(SyncConfig {
                loss_rate: loss,
                reconcile_interval: interval,
                seed,
                ..SyncConfig::default()
            });
            let report = channel.run(&mut twin, TICKS);
            sync_table.row(vec![
                format!("{loss:.1}"),
                if interval == 0 { "never".into() } else { interval.to_string() },
                f3(report.mean_divergence),
                f3(report.max_divergence),
                report.updates_lost.to_string(),
                report.attestations.to_string(),
            ]);
        }
    }

    // Authenticity via ledger.
    let mut auth_table = Table::new("ledger authenticity checks", &["check", "result"]);
    let mut chain = Chain::poa_single(
        "twin-validator",
        ChainConfig { key_tree_depth: 6, ..ChainConfig::default() },
    );
    let mut registry = TwinRegistry::new();
    registry.register(&mut chain, 1, "museum").expect("register");
    let mut state = TwinState::zeros(6);
    state.apply(0, 3.25);
    registry.attest(&mut chain, 1, &state, 100).expect("attest");
    chain.seal_all().expect("seal");

    auth_table.row(vec![
        "attested state verifies".into(),
        matches!(registry.verify(&chain, 1, &state), VerifyOutcome::Authentic { .. }).to_string(),
    ]);
    let mut forged = state.clone();
    forged.apply(1, -9.0);
    auth_table.row(vec![
        "forged state rejected".into(),
        (registry.verify(&chain, 1, &forged) == VerifyOutcome::Forged).to_string(),
    ]);
    auth_table.row(vec![
        "unregistered twin rejected".into(),
        (registry.verify(&chain, 99, &state) == VerifyOutcome::UnknownTwin).to_string(),
    ]);

    ExperimentResult {
        id: "E13".into(),
        title: "Digital-twin sync and ledger-backed authenticity".into(),
        claim: "Twins stay synchronized with the physical world; a ledger protects their \
                authenticity and origin (§IV-A)"
            .into(),
        tables: vec![sync_table, auth_table],
        notes: vec![
            "with a lossless channel divergence is zero; under loss, divergence scales with \
             the reconciliation interval — frequent snapshots bound it tightly"
                .into(),
            "every reconciliation emits a ledger attestation, making any later forgery of \
             the twin's claimed state detectable"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconciliation_bounds_divergence() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        // For loss 0.3 (rows 8..12): never > every-200 > every-50 > every-10.
        let mean = |i: usize| rows[i][2].parse::<f64>().unwrap();
        assert!(mean(8) > mean(9), "never worse than 200");
        assert!(mean(9) > mean(10));
        assert!(mean(10) > mean(11));
        // Lossless rows have zero divergence.
        assert_eq!(mean(0), 0.0);
    }

    #[test]
    fn authenticity_checks_pass() {
        let result = run(7);
        for row in &result.tables[1].rows {
            assert_eq!(row[1], "true", "{row:?}");
        }
    }
}
