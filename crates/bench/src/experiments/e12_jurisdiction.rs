//! E12 — jurisdiction-module swapping (≈ paper Figure 3).
//!
//! Claim (§II-D, §III-E, §IV-C): "if the metaverse is required to follow
//! the local rules, the modules will swap accordingly", while a
//! modular framework still provides "a homogeneous policy to protect
//! users' privacy". One fixed data-collection workload is evaluated
//! under GDPR, CCPA, and permissive modules.

use metaverse_core::policy::{Jurisdiction, PolicyEngine};
use metaverse_ledger::audit::{AuditRegistry, DataCollectionEvent, LawfulBasis, SensorClass};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::report::{ExperimentResult, Table};

/// Builds a mixed workload: lawful traffic, biometric-without-consent
/// traffic, lawless traffic, and a concentration skew.
fn workload(seed: u64) -> AuditRegistry {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut audit = AuditRegistry::new();
    for i in 0..400 {
        let roll: f64 = rng.gen();
        let (sensor, basis) = if roll < 0.55 {
            (SensorClass::Audio, LawfulBasis::Consent) // clean
        } else if roll < 0.75 {
            (SensorClass::Gaze, LawfulBasis::LegitimateInterest) // GDPR-dirty
        } else if roll < 0.85 {
            (SensorClass::Behavioural, LawfulBasis::None) // dirty everywhere regulated
        } else {
            (SensorClass::SpatialScan, LawfulBasis::Contract) // clean
        };
        let collector = if rng.gen_bool(0.5) {
            "megacorp".to_string() // concentration driver
        } else {
            format!("studio-{}", i % 5)
        };
        audit.record(DataCollectionEvent {
            collector,
            subject: format!("user-{}", i % 40),
            sensor,
            purpose: "mixed".into(),
            basis,
            tick: i,
            bytes: rng.gen_range(128..2048),
        });
    }
    audit
}

/// Runs E12.
pub fn run(seed: u64) -> ExperimentResult {
    let audit = workload(seed);
    let dp_spend = vec![("user-0".to_string(), 2.5), ("user-1".to_string(), 1.0)];

    let mut table = Table::new(
        "one workload (400 events), three jurisdiction modules",
        &["jurisdiction", "compliant", "findings", "biometric", "lawless", "monopoly", "dp"],
    );
    let mut lawless_counts = Vec::new();
    for jurisdiction in
        [Jurisdiction::gdpr(), Jurisdiction::ccpa(), Jurisdiction::permissive()]
    {
        let engine = PolicyEngine::new(jurisdiction.clone());
        let report = engine.evaluate(&audit, &dp_spend);
        use metaverse_core::policy::ComplianceFinding as F;
        let count = |f: fn(&F) -> bool| report.findings.iter().filter(|x| f(x)).count();
        let biometric = count(|f| matches!(f, F::BiometricWithoutConsent { .. }));
        let lawless = count(|f| matches!(f, F::MissingLawfulBasis { .. }));
        let monopoly = count(|f| matches!(f, F::DataMonopoly { .. }));
        let dp = count(|f| matches!(f, F::DpBudgetExceeded { .. }));
        if jurisdiction.name != "permissive" {
            lawless_counts.push(lawless);
        }
        table.row(vec![
            jurisdiction.name,
            report.compliant.to_string(),
            report.findings.len().to_string(),
            biometric.to_string(),
            lawless.to_string(),
            monopoly.to_string(),
            dp.to_string(),
        ]);
    }

    let homogeneous = lawless_counts.windows(2).all(|w| w[0] == w[1]);

    ExperimentResult {
        id: "E12".into(),
        title: "Jurisdiction-module swap over a fixed workload".into(),
        claim: "Modules swap per local regulation while protection stays homogeneous \
                (§II-D, §III-E, Fig. 3)"
            .into(),
        tables: vec![table],
        notes: vec![
            format!(
                "homogeneous core protection: GDPR and CCPA catch the identical set of \
                 lawless-collection events ({}), while jurisdiction-specific rules \
                 (biometric consent, monopoly threshold, DP budget) differ — exactly the \
                 'adapt locally, protect homogeneously' behaviour of §II-D",
                homogeneous
            ),
            "the permissive module (no regulation) flags nothing — the unprotected baseline \
             the paper warns the metaverse must not default to"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_changes_findings_but_core_protection_homogeneous() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        let findings = |i: usize| rows[i][2].parse::<usize>().unwrap();
        let lawless = |i: usize| rows[i][4].parse::<usize>().unwrap();
        assert!(findings(0) > findings(1), "GDPR stricter than CCPA");
        assert_eq!(findings(2), 0, "permissive flags nothing");
        assert_eq!(lawless(0), lawless(1), "homogeneous lawless-collection protection");
        assert!(rows[0][3].parse::<usize>().unwrap() > 0, "GDPR biometric findings");
        assert_eq!(rows[1][3], "0", "CCPA has no biometric-consent rule");
    }
}
