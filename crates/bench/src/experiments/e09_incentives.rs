//! E9 — incentive mechanisms shaping population behaviour.
//!
//! Claim (§III-D, after the Minecraft study): "incentive mechanisms to
//! promote positive behaviour and restrain negative players" work. The
//! experiment runs the adaptive agent population with incentives on and
//! off, sweeps detection coverage, and ablates the reputation decay
//! half-life (DESIGN.md §3).

use metaverse_reputation::engine::{EngineConfig, ReputationEngine};
use metaverse_reputation::incentives::{mixed_population, IncentiveConfig, IncentiveEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

const AGENTS: usize = 300;
const ROUNDS: usize = 40;

fn run_population(
    enabled: bool,
    detection: f64,
    decay_half_life: u64,
    seed: u64,
) -> (f64, f64, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut agents = mixed_population(AGENTS, &mut rng);
    let mut reputation = ReputationEngine::new(EngineConfig {
        decay_half_life,
        epoch_action_limit: u32::MAX,
        ..EngineConfig::default()
    });
    for a in &agents {
        reputation.register(&a.name, 0).unwrap();
    }
    let mut engine = IncentiveEngine::new(IncentiveConfig {
        detection_probability: detection,
        ..IncentiveConfig::default()
    });
    engine.enabled = enabled;
    let stats = engine.run(&mut agents, &mut reputation, ROUNDS, &mut rng);
    let late: Vec<_> = stats[ROUNDS - 10..].to_vec();
    let late_positive = late.iter().map(|s| s.positive_rate).sum::<f64>() / 10.0;
    let last = stats.last().unwrap();
    (late_positive, last.mean_propensity, last.mean_reputation)
}

/// Runs E9.
pub fn run(seed: u64) -> ExperimentResult {
    let mut main_table = Table::new(
        "positive-action rate (late average), 300 agents, 40 rounds",
        &["incentives", "detection", "late positive rate", "mean propensity", "mean reputation"],
    );
    for (enabled, detection) in [(false, 0.4), (true, 0.1), (true, 0.4), (true, 0.8)] {
        let (positive, propensity, reputation) = run_population(enabled, detection, 1000, seed);
        main_table.row(vec![
            if enabled { "on" } else { "off" }.to_string(),
            format!("{detection:.1}"),
            f3(positive),
            f3(propensity),
            f3(reputation),
        ]);
    }

    let mut decay_table = Table::new(
        "decay half-life ablation (incentives on, detection 0.4)",
        &["half-life (ticks)", "late positive rate", "mean reputation"],
    );
    for &half_life in &[0u64, 50, 500, 5000] {
        let (positive, _, reputation) = run_population(true, 0.4, half_life, seed);
        decay_table.row(vec![half_life.to_string(), f3(positive), f3(reputation)]);
    }

    ExperimentResult {
        id: "E9".into(),
        title: "Incentive mechanisms vs population behaviour".into(),
        claim: "Incentive mechanisms promote positive behaviour and restrain negative players \
                (§III-D)"
            .into(),
        tables: vec![main_table, decay_table],
        notes: vec![
            "turning incentives on lifts the late positive-action rate; the lift grows with \
             detection coverage — enforcement, not just rules, drives the effect"
                .into(),
            "decay half-life barely moves behaviour here but controls how quickly \
             reputations forget — the trade-off governance must pick"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incentives_on_beats_off() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        let off: f64 = rows[0][2].parse().unwrap();
        let on_mid: f64 = rows[2][2].parse().unwrap();
        assert!(on_mid > off + 0.03, "on {on_mid} vs off {off}");
    }

    #[test]
    fn detection_sweep_monotone() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        let low: f64 = rows[1][2].parse().unwrap();
        let high: f64 = rows[3][2].parse().unwrap();
        assert!(high >= low, "high-detection {high} vs low {low}");
    }
}
