//! E11 — trust incentives vs. misinformation spread.
//!
//! Claim (§IV-B): "Incentive systems to share trust among avatars will
//! be key functionality to reduce the sharing of misinformation." The
//! experiment runs alternating false/true rumour waves over a
//! small-world social graph with the trust system on and off, and
//! repeats the sweep on a scale-free graph.

use metaverse_social::graph::SocialGraph;
use metaverse_social::propagation::PropagationConfig;
use metaverse_social::trust::{TrustConfig, TrustSystem};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

const NODES: usize = 500;
const WAVES: usize = 20;

fn late(xs: &[f64]) -> f64 {
    let n = xs.len();
    let tail = &xs[n - (n / 4).max(1)..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

fn run_on_graph(graph: &SocialGraph, enabled: bool, seed: u64) -> (f64, f64, f64, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut system = TrustSystem::new(graph.len(), TrustConfig { enabled, ..Default::default() });
    let report = system.run_experiment(graph, WAVES, &PropagationConfig::default(), &mut rng);
    (
        report.false_outbreaks[0],
        late(&report.false_outbreaks),
        late(&report.true_outbreaks),
        report.final_reputation,
    )
}

/// Runs E11.
pub fn run(seed: u64) -> ExperimentResult {
    let mut table = Table::new(
        "rumour outbreak sizes, 500 nodes, 20 alternating waves",
        &["graph", "incentives", "first false", "late false", "late true", "mean reputation"],
    );

    let graphs: Vec<(&str, SocialGraph)> = {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        vec![
            ("small-world", SocialGraph::small_world(NODES, 6, 0.1, &mut rng)),
            ("scale-free", SocialGraph::scale_free(NODES, 3, &mut rng)),
        ]
    };

    for (label, graph) in &graphs {
        for enabled in [false, true] {
            let (first_false, late_false, late_true, reputation) =
                run_on_graph(graph, enabled, seed);
            table.row(vec![
                label.to_string(),
                if enabled { "on" } else { "off" }.to_string(),
                f3(first_false),
                f3(late_false),
                f3(late_true),
                f3(reputation),
            ]);
        }
    }

    ExperimentResult {
        id: "E11".into(),
        title: "Trust incentives vs misinformation".into(),
        claim: "Incentive systems sharing trust among avatars reduce misinformation (§IV-B)"
            .into(),
        tables: vec![table],
        notes: vec![
            "with incentives on, late false-rumour outbreaks collapse relative to the first \
             wave as burned sharers learn to verify; true-content reach is dented far less"
                .into(),
            "the effect persists on scale-free graphs, where hubs make the uncontrolled \
             baseline spread even harder to contain"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incentives_reduce_late_false_spread_on_both_graphs() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        for pair in rows.chunks(2) {
            let off_late: f64 = pair[0][3].parse().unwrap();
            let on_late: f64 = pair[1][3].parse().unwrap();
            assert!(
                on_late < off_late * 0.8,
                "incentives must curb late false spread: {pair:?}"
            );
        }
    }

    #[test]
    fn true_content_survives_better_than_false() {
        let result = run(7);
        for row in &result.tables[0].rows {
            if row[1] == "on" {
                let late_false: f64 = row[3].parse().unwrap();
                let late_true: f64 = row[4].parse().unwrap();
                assert!(late_true > late_false, "{row:?}");
            }
        }
    }
}
