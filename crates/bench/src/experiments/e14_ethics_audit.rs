//! E14 — the Ethical-Hierarchy-of-Needs audit over platform configs.
//!
//! Claim (§IV-C): the modular architecture aligns with the 'Ethical
//! Hierarchy of Needs' — human rights, human effort, human experience —
//! and misconfigurations should be catchable. The experiment audits a
//! corpus of platform configurations, from the recommended default to a
//! surveillance-platform caricature.

use metaverse_core::ethics::EthicsLayer;
use metaverse_core::module::{ModuleDescriptor, ModuleKind, Stakeholder};
use metaverse_core::platform::MetaversePlatform;
use metaverse_core::policy::Jurisdiction;
use metaverse_ledger::audit::{DataCollectionEvent, LawfulBasis, SensorClass};

use crate::report::{ExperimentResult, Table};

fn layer_label(layer: Option<EthicsLayer>) -> &'static str {
    match layer {
        None => "none (rights violated)",
        Some(EthicsLayer::HumanRights) => "human rights only",
        Some(EthicsLayer::HumanEffort) => "rights + effort",
        Some(EthicsLayer::HumanExperience) => "fully ethical",
    }
}

/// Runs E14. (Deterministic; `_seed` kept for interface uniformity.)
pub fn run(_seed: u64) -> ExperimentResult {
    let mut table = Table::new(
        "ethics audit across platform configurations",
        &["configuration", "rights", "effort", "experience", "satisfied up to"],
    );

    let mut audit_row = |label: &str, platform: &MetaversePlatform| {
        let audit = platform.ethics_audit();
        let score = |i: usize| format!("{}/{}", audit.scores[i].1, audit.scores[i].2);
        table.row(vec![
            label.to_string(),
            score(0),
            score(1),
            score(2),
            layer_label(audit.satisfied_up_to).to_string(),
        ]);
        audit
    };

    // 1. Recommended default.
    let mut default_platform = MetaversePlatform::builder().build();
    default_platform.register_user("alice").unwrap();
    let default_audit = audit_row("recommended default", &default_platform);

    // 2. Privacy off by default (status-quo XR platform).
    let mut lax = MetaversePlatform::builder().privacy_defaults(false).build();
    lax.register_user("alice").unwrap();
    audit_row("privacy defaults off", &lax);

    // 3. Opaque AI moderation module.
    let mut opaque = MetaversePlatform::builder().build();
    opaque.register_user("alice").unwrap();
    let mut blackbox = ModuleDescriptor::open(ModuleKind::Moderation, "blackbox-ai");
    blackbox.transparent = false;
    opaque.install_module(blackbox);
    audit_row("opaque AI moderation", &opaque);

    // 4. Developer-only governance (users excluded).
    let mut devs_only = MetaversePlatform::builder().build();
    devs_only.register_user("alice").unwrap();
    let mut closed = ModuleDescriptor::open(ModuleKind::DecisionMaking, "corporate-board");
    closed.stakeholders = vec![Stakeholder::Developers];
    devs_only.install_module(closed);
    audit_row("developer-only governance", &devs_only);

    // 5. Single community (no plurality).
    let mut monoculture = MetaversePlatform::builder().scopes(["root"]).build();
    monoculture.register_user("alice").unwrap();
    audit_row("single community", &monoculture);

    // 6. Surveillance caricature: permissive jurisdiction + lawless
    //    biometric harvesting + opaque modules.
    let mut surveillance = MetaversePlatform::builder()
        .privacy_defaults(false)
        .jurisdiction(Jurisdiction::gdpr()) // regulator's view of the platform
        .build();
    surveillance.register_user("alice").unwrap();
    surveillance.record_collection(DataCollectionEvent {
        collector: "megacorp".into(),
        subject: "alice".into(),
        sensor: SensorClass::Gaze,
        purpose: "ads".into(),
        basis: LawfulBasis::None,
        tick: 0,
        bytes: 1 << 20,
    });
    audit_row("surveillance caricature", &surveillance);

    ExperimentResult {
        id: "E14".into(),
        title: "Ethical-Hierarchy-of-Needs audit".into(),
        claim: "The modular design can be audited against the Ethical Hierarchy of Needs \
                (§IV-C)"
            .into(),
        tables: vec![table],
        notes: vec![
            format!(
                "the recommended default passes all {} checks; every deviation is caught at \
                 the correct layer, and rights-layer failures gate the whole pyramid",
                default_audit.scores.iter().map(|(_, _, t)| t).sum::<usize>()
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_passes_and_deviations_caught() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        assert_eq!(rows[0][4], "fully ethical");
        assert_eq!(rows[1][4], "none (rights violated)", "privacy-off fails at the base");
        assert_eq!(rows[2][4], "none (rights violated)", "opacity is a rights failure");
        assert_eq!(rows[3][4], "human rights only", "closed governance fails effort");
        assert_eq!(rows[4][4], "rights + effort", "monoculture fails experience");
        assert_eq!(rows[5][4], "none (rights violated)");
    }
}
