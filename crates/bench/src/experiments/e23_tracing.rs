//! E23 — end-to-end causal tracing: overhead, byte-identity, and
//! drop/refusal provenance over the gateway → shard → ledger pipeline.
//!
//! Claim (§IV-C / §V): accountability in a metaverse platform needs
//! *per-action* provenance — who was admitted, refused, or dropped,
//! where each action executed, and which ledger block made it durable —
//! and that record must itself be trustworthy: independent of how many
//! worker threads happened to run the epoch, and cheap enough to leave
//! on. This experiment replays E21's seeded 120k-op stream at 1–8
//! shards with the flight recorder off and on and measures:
//!
//! * **overhead** — wall-clock cost of tracing every admitted op
//!   (non-deterministic; the acceptance target is < 10% on this
//!   replay, and `trace_capacity: 0` must cost nothing at all);
//! * **byte-identical traces** — the merged JSONL trace stream at each
//!   shard count is compared byte-for-byte between a 1-worker and an
//!   N-worker run (the deterministic half CI gates on);
//! * **drop/refusal provenance** — every admission-seq's terminal
//!   stage, tabulated: committed in a named ledger block, refused with
//!   a typed cause, rate-limited, or dropped in settlement;
//! * **settlement provenance** — each applied cross-shard settlement
//!   resolved to the exact block (height + header digest) on the
//!   target shard's chain that sealed its records.

use std::collections::BTreeMap;
use std::time::Instant;

use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{DriveReport, WorkloadConfig, WorkloadEngine};

use crate::report::{ExperimentResult, Table};

/// Shard counts the workload is replayed at (same as E21/E22).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Distinct users in the workload (each registers first).
const USERS: usize = 512;
/// Mixed ops generated after the registers.
const OPS: usize = 120_000;
/// Submissions between epoch boundaries.
const OPS_PER_EPOCH: usize = 2048;
/// Router trace-ring capacity for traced runs: holds the full stream
/// (~5 events per admitted op) without eviction.
const TRACE_CAPACITY: usize = 1 << 20;

/// The stage labels tabulated per shard count, in column order.
const STAGES: [&str; 10] = [
    "admitted",
    "routed_to_shard",
    "executed",
    "committed_in_epoch",
    "rate_limited",
    "refused",
    "deferred",
    "requeued",
    "escrowed",
    "settled",
];

/// One replay at a fixed shard count, worker count, and trace setting.
struct Run {
    drive: DriveReport,
    ledger_debug: String,
    elapsed_ns: u128,
    stage_counts: BTreeMap<&'static str, u64>,
    drops: u64,
    recorded: u64,
    evicted: u64,
    provenance_total: usize,
    provenance_resolved: usize,
    settled_applied: u64,
}

#[allow(clippy::too_many_arguments)]
fn replay(
    seed: u64,
    shards: usize,
    workers: usize,
    users: usize,
    ops: usize,
    per_epoch: usize,
    depth: usize,
    trace_capacity: usize,
) -> (Run, String) {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users,
        ops,
        seed,
        ..WorkloadConfig::default()
    });
    let mut router = ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .workers(workers)
            .tracing(trace_capacity)
            // Generous admission, as in E21/E22: this measures the epoch
            // pipeline and the recorder, not the rate limiter.
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .mailbox_capacity(4096)
            .key_tree_depth(depth)
            .build(),
    );
    let started = Instant::now();
    let drive = engine.drive(&mut router, per_epoch);
    let elapsed_ns = started.elapsed().as_nanos();
    let (jsonl, stage_counts, drops, stats, provenance_total, provenance_resolved) =
        if trace_capacity > 0 {
            // One extra (empty) epoch so the last settlements' ledger
            // records seal and provenance can name their blocks.
            router.execute_epoch();
            let stats = router.trace_stats();
            let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
            let query = router.trace_query();
            for e in query.events() {
                *counts.entry(e.stage.label()).or_insert(0) += 1;
            }
            let drops = query.drops().len() as u64;
            let provenance = router.provenance_report();
            let resolved = provenance.iter().filter(|r| r.height.is_some()).count();
            (router.trace_jsonl(), counts, drops, stats, provenance.len(), resolved)
        } else {
            (String::new(), BTreeMap::new(), 0, router.trace_stats(), 0, 0)
        };
    let run = Run {
        drive,
        ledger_debug: format!("{:?}", router.settlement_ledger()),
        elapsed_ns,
        stage_counts,
        drops,
        recorded: stats.recorded,
        evicted: stats.dropped,
        provenance_total,
        provenance_resolved,
        settled_applied: router.settlement_ledger().applied,
    };
    (run, jsonl)
}

/// Runs `replay` twice and keeps the faster wall-clock (everything
/// else is seed-deterministic, so only `elapsed_ns` can differ).
/// Min-of-2 is the least-noise estimator this host affords: single
/// replays on a shared container swing ±30% run to run, which would
/// drown the overhead ratio the table reports.
#[allow(clippy::too_many_arguments)]
fn replay_timed(
    seed: u64,
    shards: usize,
    workers: usize,
    users: usize,
    ops: usize,
    per_epoch: usize,
    depth: usize,
    trace_capacity: usize,
) -> (Run, String) {
    let (mut run, jsonl) =
        replay(seed, shards, workers, users, ops, per_epoch, depth, trace_capacity);
    let (rerun, _) = replay(seed, shards, workers, users, ops, per_epoch, depth, trace_capacity);
    run.elapsed_ns = run.elapsed_ns.min(rerun.elapsed_ns);
    (run, jsonl)
}

/// Traced sequential + traced parallel + untraced parallel replays of
/// the same stream at one shard count.
struct Cell {
    shards: usize,
    untraced: Run,
    traced: Run,
    /// Traces byte-identical between 1 worker and N workers, and the
    /// traced ledgers byte-identical to the untraced one.
    identical: bool,
    trace_bytes: usize,
}

fn kops_per_sec(ops: u64, elapsed_ns: u128) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    (ops as f64) / (elapsed_ns as f64 / 1e9) / 1e3
}

/// Runs E23 at the full committed size (E21's stream). Key-tree depth
/// scales down with shard count exactly as in E21/E22.
///
/// E23 replays the stream five times per shard count (untraced ×2,
/// traced 1-worker, traced N-worker ×2), so a debug build — which only
/// the `experiment_smoke` suite exercises — runs a sized-down stream;
/// every recorded number comes from the release binary.
pub fn run(seed: u64) -> ExperimentResult {
    if cfg!(debug_assertions) {
        return run_sized(seed, 48, 4_000, 512, 6, 1 << 17);
    }
    run_with(seed, USERS, OPS, OPS_PER_EPOCH, TRACE_CAPACITY, |shards| {
        (10usize.saturating_sub(shards.trailing_zeros() as usize)).max(8)
    })
}

/// Runs E23 with explicit sizing (tests use a small stream, shallow
/// key trees, and a small ring).
pub fn run_sized(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    key_tree_depth: usize,
    trace_capacity: usize,
) -> ExperimentResult {
    run_with(seed, users, ops, per_epoch, trace_capacity, |_| key_tree_depth)
}

fn run_with(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    trace_capacity: usize,
    depth_for: impl Fn(usize) -> usize,
) -> ExperimentResult {
    let cells: Vec<Cell> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let depth = depth_for(shards);
            let (untraced, _) =
                replay_timed(seed, shards, shards, users, ops, per_epoch, depth, 0);
            let (traced_seq, seq_jsonl) =
                replay(seed, shards, 1, users, ops, per_epoch, depth, trace_capacity);
            let (traced, par_jsonl) =
                replay_timed(seed, shards, shards, users, ops, per_epoch, depth, trace_capacity);
            let identical = seq_jsonl == par_jsonl
                && !par_jsonl.is_empty()
                && traced_seq.ledger_debug == traced.ledger_debug
                && traced.ledger_debug == untraced.ledger_debug
                && traced_seq.drive == traced.drive
                && traced.drive == untraced.drive;
            Cell { shards, untraced, traced, identical, trace_bytes: par_jsonl.len() }
        })
        .collect();

    let mut overhead = Table::new(
        "the same seeded stream untraced (trace_capacity 0) vs traced (full-stream ring), \
         N workers; ms / kops/s / overhead are wall-clock, every other column is \
         seed-deterministic",
        &[
            "shards", "untraced ms", "traced ms", "overhead %", "traced kops/s", "events",
            "evicted", "trace MiB", "identical trace+audit",
        ],
    );
    for c in &cells {
        let pct = if c.untraced.elapsed_ns > 0 {
            (c.traced.elapsed_ns as f64 / c.untraced.elapsed_ns as f64 - 1.0) * 100.0
        } else {
            0.0
        };
        overhead.row(vec![
            c.shards.to_string(),
            format!("{:.0}", c.untraced.elapsed_ns as f64 / 1e6),
            format!("{:.0}", c.traced.elapsed_ns as f64 / 1e6),
            format!("{pct:+.1}"),
            format!("{:.1}", kops_per_sec(c.traced.drive.accepted, c.traced.elapsed_ns)),
            c.traced.recorded.to_string(),
            c.traced.evicted.to_string(),
            format!("{:.1}", c.trace_bytes as f64 / (1024.0 * 1024.0)),
            c.identical.to_string(),
        ]);
    }

    let mut stages = Table::new(
        "trace events per causal stage (seed-deterministic): the full per-op provenance of \
         the stream, from admission or typed refusal through execution, escrow, settlement, \
         and the sealing ledger commit",
        &{
            let mut cols = vec!["shards"];
            cols.extend(STAGES);
            cols.push("drops");
            cols
        },
    );
    for c in &cells {
        let mut row = vec![c.shards.to_string()];
        for stage in STAGES {
            row.push(c.traced.stage_counts.get(stage).copied().unwrap_or(0).to_string());
        }
        row.push(c.traced.drops.to_string());
        stages.row(row);
    }

    let mut provenance = Table::new(
        "cross-shard settlement provenance: applied settlements resolved to the ledger block \
         (on the target shard's chain) that sealed their records",
        &["shards", "settlements applied", "provenance rows", "resolved to a block", "unresolved"],
    );
    for c in &cells {
        provenance.row(vec![
            c.shards.to_string(),
            c.traced.settled_applied.to_string(),
            c.traced.provenance_total.to_string(),
            c.traced.provenance_resolved.to_string(),
            (c.traced.provenance_total - c.traced.provenance_resolved).to_string(),
        ]);
    }

    let all_identical = cells.iter().all(|c| c.identical);
    let all_resolved =
        cells.iter().all(|c| c.traced.provenance_resolved == c.traced.provenance_total);
    // Per-cell overhead ratios are noise-dominated on a shared host
    // (single-replay wall-clock swings ±30% here), so the headline
    // number pools all shard counts: total traced time vs total
    // untraced time over the whole sweep.
    let total_traced: u128 = cells.iter().map(|c| c.traced.elapsed_ns).sum();
    let total_untraced: u128 = cells.iter().map(|c| c.untraced.elapsed_ns).sum();
    let pooled = (total_traced as f64 / total_untraced.max(1) as f64 - 1.0) * 100.0;

    ExperimentResult {
        id: "E23".into(),
        title: "Causal tracing: per-op provenance with byte-identical traces and bounded \
                overhead"
            .into(),
        claim: "Every admitted op can be traced from admission (or typed refusal) through \
                routing, execution, escrow, and settlement to the ledger block that sealed \
                it; the trace is byte-identical whether an epoch ran on 1 worker or N; and \
                the audit trail costs little enough to leave on (§IV-C, §V)"
            .into(),
        tables: vec![overhead, stages, provenance],
        notes: vec![
            format!(
                "determinism gate: at every shard count the merged JSONL trace stream is {} \
                 between a 1-worker and an N-worker run, and the traced runs' settlement \
                 ledgers and drive reports are byte-identical to the untraced run's \
                 (tracing is observation only)",
                if all_identical { "BYTE-IDENTICAL" } else { "DIVERGENT" },
            ),
            format!(
                "tracing overhead pooled over the whole sweep (total traced ms vs total \
                 untraced ms, min-of-2 per cell): {pooled:+.1}% wall-clock against the \
                 < 10% acceptance target; per-cell ratios are noise-dominated on this \
                 host — the deterministic columns are what CI gates on; trace_capacity 0 \
                 skips every recording branch and allocates nothing on the hot path",
            ),
            format!(
                "settlement provenance {} applied cross-shard settlement to the exact \
                 committing block (height + header digest) on the target shard's chain",
                if all_resolved { "resolved every" } else { "left some without a" },
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_byte_identical_and_provenance_resolves() {
        let result = run_sized(7, 32, 1_500, 256, 6, 1 << 16);
        assert!(result.notes[0].contains("BYTE-IDENTICAL"), "{}", result.notes[0]);
        assert!(result.notes[2].contains("resolved every"), "{}", result.notes[2]);
        for row in &result.tables[0].rows {
            assert_eq!(row[8], "true", "trace/audit identity failed: {row:?}");
            assert_eq!(row[6], "0", "the test ring must hold the whole stream: {row:?}");
        }
        for row in &result.tables[2].rows {
            assert_eq!(row[4], "0", "unresolved settlement provenance: {row:?}");
        }
    }

    #[test]
    fn stage_counts_reproduce_for_a_seed() {
        let a = run_sized(11, 32, 1_500, 256, 6, 1 << 16);
        let b = run_sized(11, 32, 1_500, 256, 6, 1 << 16);
        // Stage and provenance tables carry no wall-clock columns.
        assert_eq!(a.tables[1].rows, b.tables[1].rows);
        assert_eq!(a.tables[2].rows, b.tables[2].rows);
    }
}
