//! E7 — flat vs. modular DAO governance under load.
//!
//! Claim (§III-B/C): flat DAOs suffer voting fatigue ("the number of
//! voting sessions can become cumbersome"); modular, scoped governance
//! relieves it. The experiment pushes the same proposal load through a
//! flat platform (everyone in every vote) and a modular one (members
//! split across scoped DAOs), with participation drawn from the
//! fatigue model. A voting-scheme ablation runs on the side.

use metaverse_dao::dao::{Dao, DaoConfig};
use metaverse_dao::quorum::QuorumRule;
use metaverse_dao::turnout::{sample_turnout, FatigueModel};
use metaverse_dao::voting::{Choice, VotingScheme};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

const MEMBERS: usize = 600;
const SCOPES: usize = 6;
const PROPOSALS_PER_SCOPE: usize = 4;

/// Simulates one governance epoch and returns
/// `(mean turnout, proposals passed, requests per member)`.
fn run_epoch(modular: bool, seed: u64) -> (f64, usize, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let fatigue = FatigueModel::default();
    let config = DaoConfig {
        scheme: VotingScheme::OnePersonOneVote,
        quorum: QuorumRule { min_turnout: 0.2, min_support: 0.5 },
        ..DaoConfig::default()
    };

    // Build one DAO per scope; in flat mode every member joins every
    // scope, in modular mode members are partitioned.
    let mut daos: Vec<Dao> = (0..SCOPES).map(|s| Dao::new(format!("scope-{s}"), config.clone())).collect();
    for m in 0..MEMBERS {
        let name = format!("member-{m}");
        if modular {
            daos[m % SCOPES].add_member(&name).unwrap();
        } else {
            for dao in &mut daos {
                dao.add_member(&name).unwrap();
            }
        }
    }

    // Requests per member this epoch.
    let requests_per_member: u64 = if modular {
        PROPOSALS_PER_SCOPE as u64
    } else {
        (SCOPES * PROPOSALS_PER_SCOPE) as u64
    };

    let mut turnouts = Vec::new();
    let mut passed = 0usize;
    for dao in &mut daos {
        let members: Vec<String> =
            dao.member_names().iter().map(|s| s.to_string()).collect();
        for p in 0..PROPOSALS_PER_SCOPE {
            let id = dao.propose(&members[0], &format!("proposal-{p}"), 0).unwrap();
            for member in &members {
                if fatigue.votes(requests_per_member, &mut rng) {
                    let choice = if rng.gen_bool(0.7) { Choice::Yes } else { Choice::No };
                    dao.vote(member, id, choice, 0).unwrap();
                }
            }
            let (status, tally) = dao.close(id, 101).unwrap();
            turnouts.push(tally.turnout());
            if status == metaverse_dao::proposal::ProposalStatus::Accepted {
                passed += 1;
            }
        }
    }

    let mean_turnout = turnouts.iter().sum::<f64>() / turnouts.len() as f64;
    (mean_turnout, passed, requests_per_member as f64)
}

/// Runs E7.
pub fn run(seed: u64) -> ExperimentResult {
    let mut table = Table::new(
        "flat vs modular governance (600 members, 6 scopes × 4 proposals)",
        &["design", "requests/member", "mean turnout", "proposals passed", "of"],
    );
    for (label, modular) in [("flat", false), ("modular", true)] {
        let (turnout, passed, requests) = run_epoch(modular, seed);
        table.row(vec![
            label.to_string(),
            format!("{requests:.0}"),
            f3(turnout),
            passed.to_string(),
            (SCOPES * PROPOSALS_PER_SCOPE).to_string(),
        ]);
    }

    // Pure fatigue curve (model, large sample).
    let mut fatigue_table =
        Table::new("fatigue model: participation vs requests/epoch", &["requests", "turnout"]);
    let model = FatigueModel::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for &r in &[1u64, 2, 4, 8, 16, 32, 64] {
        let s = sample_turnout(&model, 20_000, r, &mut rng);
        fatigue_table.row(vec![r.to_string(), f3(s.turnout)]);
    }

    // Voting-scheme ablation: whale influence under each scheme.
    let mut scheme_table = Table::new(
        "scheme ablation: can 1 whale (100x tokens/credits) beat 9 members?",
        &["scheme", "whale wins", "yes weight", "no weight"],
    );
    for scheme in VotingScheme::ALL {
        let mut dao = Dao::new(
            "ablate",
            DaoConfig {
                scheme,
                quorum: QuorumRule { min_turnout: 0.0, min_support: 0.5 },
                initial_tokens: 100,
                initial_voice_credits: 100,
                ..DaoConfig::default()
            },
        );
        dao.add_member("whale").unwrap();
        dao.grant_tokens("whale", 9_900).unwrap(); // 100x
        dao.refill_credits("whale", 9_900).unwrap();
        for i in 0..9 {
            dao.add_member(&format!("m{i}")).unwrap();
        }
        let id = dao.propose("whale", "self-serving", 0).unwrap();
        match scheme {
            VotingScheme::Quadratic => {
                dao.vote_quadratic("whale", id, Choice::Yes, 100, 0).unwrap(); // 10k credits
                for i in 0..9 {
                    dao.vote_quadratic(&format!("m{i}"), id, Choice::No, 10, 0).unwrap();
                }
            }
            VotingScheme::ExternalWeighted => {
                // External weight: everyone equal (e.g. reputation parity).
                dao.vote_weighted("whale", id, Choice::Yes, 50, 0).unwrap();
                for i in 0..9 {
                    dao.vote_weighted(&format!("m{i}"), id, Choice::No, 50, 0).unwrap();
                }
            }
            _ => {
                dao.vote("whale", id, Choice::Yes, 0).unwrap();
                for i in 0..9 {
                    dao.vote(&format!("m{i}"), id, Choice::No, 0).unwrap();
                }
            }
        }
        let (status, tally) = dao.close(id, 101).unwrap();
        scheme_table.row(vec![
            scheme.label().to_string(),
            (status == metaverse_dao::proposal::ProposalStatus::Accepted).to_string(),
            tally.yes.to_string(),
            tally.no.to_string(),
        ]);
    }

    ExperimentResult {
        id: "E7".into(),
        title: "DAO scalability: flat vs modular, scheme ablation".into(),
        claim: "Flat DAOs hinder involvement as voting sessions grow cumbersome; modular \
                governance adapts (§III-B, §III-C)"
            .into(),
        tables: vec![table, fatigue_table, scheme_table],
        notes: vec![
            "modular routing cuts ballot requests per member 6× and lifts realized turnout \
             accordingly — the scalability fix of Schneider et al. the paper adopts"
                .into(),
            "scheme ablation: token voting hands a 100× whale an 11× landslide; quadratic \
             shrinks the same capital to a 1.1× sliver (sqrt dampening); 1p1v and \
             parity-weighted external voting defeat it outright"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modular_beats_flat_turnout() {
        let result = run(7);
        let flat: f64 = result.tables[0].rows[0][2].parse().unwrap();
        let modular: f64 = result.tables[0].rows[1][2].parse().unwrap();
        assert!(modular > flat + 0.1, "modular {modular} vs flat {flat}");
    }

    #[test]
    fn fatigue_curve_decreasing() {
        let result = run(7);
        let turnouts: Vec<f64> =
            result.tables[1].rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in turnouts.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn scheme_ablation_whale_influence() {
        let result = run(7);
        let rows = &result.tables[2].rows;
        let margin = |row: &Vec<String>| {
            let yes: f64 = row[2].parse().unwrap();
            let no: f64 = row[3].parse().unwrap();
            yes / no.max(1.0)
        };
        let by_scheme = |name: &str| rows.iter().find(|r| r[0] == name).unwrap();
        // 1p1v and parity-weighted external voting defeat the whale.
        assert_eq!(by_scheme("1p1v")[1], "false");
        assert_eq!(by_scheme("external")[1], "false");
        // Token voting hands the whale a landslide; quadratic shrinks the
        // same capital advantage to a sliver (sqrt dampening).
        assert_eq!(by_scheme("token")[1], "true");
        assert!(margin(by_scheme("token")) > 5.0 * margin(by_scheme("quadratic")));
    }
}
