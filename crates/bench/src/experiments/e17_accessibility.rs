//! E17 — accessibility of virtual vs physical events.
//!
//! Claim (§IV-B, "Accessibility"/"Equality"): "The metaverse can enable
//! many social events that are not possible physically — for example,
//! concerts with millions of people worldwide", and acts as "an
//! equaliser" across geography and resources. The experiment holds the
//! same event physically (capacity + travel costs) and virtually, and
//! reports attendance, who gets excluded, and geographic diversity.

use metaverse_world::venues::{hold_event, sample_population, EventVenue};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

const POPULATION: usize = 20_000;
const REGIONS: usize = 12;
const INTEREST: f64 = 0.6;

/// Runs E17.
pub fn run(seed: u64) -> ExperimentResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let population = sample_population(POPULATION, REGIONS, &mut rng);

    let mut table = Table::new(
        "one event, 20k population over 12 regions, interest ≥ 0.6",
        &["venue", "interested", "attended", "rate", "region entropy", "turned away"],
    );

    let venues = [
        ("physical cap=500", EventVenue::Physical { region: 0, capacity: 500 }),
        ("physical cap=2000", EventVenue::Physical { region: 0, capacity: 2000 }),
        ("physical cap=∞", EventVenue::Physical { region: 0, capacity: usize::MAX }),
        ("virtual", EventVenue::Virtual),
    ];
    for (label, venue) in venues {
        let mut event_rng = ChaCha8Rng::seed_from_u64(seed + 1);
        let report = hold_event(&population, venue, REGIONS, INTEREST, &mut event_rng);
        table.row(vec![
            label.to_string(),
            report.interested.to_string(),
            report.attended.to_string(),
            f3(report.attendance_rate),
            f3(report.region_entropy),
            if matches!(venue, EventVenue::Physical { capacity, .. } if capacity == usize::MAX) {
                "0*".into()
            } else {
                report.turned_away.to_string()
            },
        ]);
    }

    ExperimentResult {
        id: "E17".into(),
        title: "Virtual events as accessibility equalisers".into(),
        claim: "The metaverse enables events impossible physically and equalises access \
                across geography and resources (§IV-B)"
            .into(),
        tables: vec![table],
        notes: vec![
            "even an *unlimited-capacity* physical event excludes most of the interested \
             population through travel costs alone; the virtual venue admits everyone — \
             capacity is not the only barrier the metaverse removes"
                .into(),
            "region entropy (geographic diversity) is maximal for the virtual event and \
             compressed toward the host region for physical ones — the 'equaliser' claim, \
             measured"
                .into(),
            "*∞-capacity physical event turns nobody away at the door; exclusion is all \
             travel-cost"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_dominates_every_physical_configuration() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        let rate = |i: usize| rows[i][3].parse::<f64>().unwrap();
        let entropy = |i: usize| rows[i][4].parse::<f64>().unwrap();
        // Virtual (row 3) attends everyone.
        assert_eq!(rate(3), 1.0);
        for i in 0..3 {
            assert!(rate(i) < rate(3), "physical {i} below virtual");
            assert!(entropy(i) < entropy(3) + 1e-9, "diversity {i} below virtual");
        }
        // Bigger venues help but can't fix travel.
        assert!(rate(0) < rate(1));
        assert!(rate(2) < 0.9, "even infinite capacity excludes by travel");
    }
}
