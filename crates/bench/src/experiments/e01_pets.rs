//! E1 — PET pipeline vs. inference attacks (≈ paper Figure 2).
//!
//! Claim (§II-A): PETs "obfuscate any sensible data from the sensors
//! before being shared with cloud services", defeating inference such as
//! gaze → preference. This experiment sweeps PET configurations and
//! reports attacker accuracy (preference inference and gait
//! re-identification) against retained utility.

use metaverse_privacy::attack::{GaitIdentificationAttack, PreferenceInferenceAttack};
use metaverse_privacy::metrics::{attack_advantage, stream_distortion, utility_from_distortion};
use metaverse_privacy::pets::PetPipeline;
use metaverse_privacy::sensor::UserProfile;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

const USERS: usize = 60;
const SAMPLES: usize = 60;
/// Gaze dwell values live in [0,1]; cap per-sample distortion at 0.25.
const GAZE_CAP: f64 = 0.25;

fn pipelines() -> Vec<(&'static str, PetPipeline)> {
    vec![
        ("none", PetPipeline::new()),
        ("noise(0.2)", PetPipeline::new().noise(0.2)),
        ("noise(1.0)", PetPipeline::new().noise(1.0)),
        ("quantize(0.5)", PetPipeline::new().quantize(0.5)),
        ("aggregate(25)", PetPipeline::new().aggregate(25)),
        ("subsample(4)", PetPipeline::new().subsample(4)),
        ("noise(0.5)+aggregate(25)", PetPipeline::new().noise(0.5).aggregate(25)),
        // Ablation: composition order (DESIGN.md §3).
        ("noise(0.5)+quantize(0.5)", PetPipeline::new().noise(0.5).quantize(0.5)),
        ("quantize(0.5)+noise(0.5)", PetPipeline::new().quantize(0.5).noise(0.5)),
    ]
}

/// Runs E1.
pub fn run(seed: u64) -> ExperimentResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let users: Vec<UserProfile> =
        (0..USERS).map(|i| UserProfile::random(format!("u{i}"), &mut rng)).collect();

    let mut gaze_table = Table::new(
        "gaze → preference inference vs PET (60 users, 60 samples each)",
        &["pet", "attack acc", "advantage", "utility"],
    );
    let mut gait_table = Table::new(
        "gait re-identification vs PET (60 enrolled users)",
        &["pet", "top-1 acc", "chance", "utility"],
    );

    let mut notes = Vec::new();
    let mut baseline_gaze_acc = 0.0;

    for (label, pipe) in pipelines() {
        // --- gaze ---
        let mut cases = Vec::new();
        let mut distortion = 0.0;
        for user in &users {
            let original = user.gaze_stream(SAMPLES, &mut rng);
            let mut transformed = original.clone();
            pipe.apply(&mut transformed, &mut rng).expect("valid PET parameters");
            distortion += stream_distortion(&original, &transformed, GAZE_CAP);
            cases.push((transformed, user.gaze.prefers_a));
        }
        distortion /= users.len() as f64;
        let utility = utility_from_distortion(distortion, GAZE_CAP);
        let acc = PreferenceInferenceAttack::default().accuracy(&cases);
        if label == "none" {
            baseline_gaze_acc = acc;
        }
        gaze_table.row(vec![
            label.to_string(),
            f3(acc),
            f3(attack_advantage(acc)),
            f3(utility),
        ]);

        // --- gait ---
        let mut attack = GaitIdentificationAttack::new();
        for user in &users {
            attack.enroll(user, &user.gait_stream(300, &mut rng));
        }
        let mut gait_cases = Vec::new();
        let mut gait_distortion = 0.0;
        for user in &users {
            let original = user.gait_stream(300, &mut rng);
            let mut transformed = original.clone();
            pipe.apply(&mut transformed, &mut rng).expect("valid PET parameters");
            gait_distortion += stream_distortion(&original, &transformed, 1.0);
            gait_cases.push((transformed, user.name.clone()));
        }
        gait_distortion /= users.len() as f64;
        gait_table.row(vec![
            label.to_string(),
            f3(attack.accuracy(&gait_cases)),
            f3(1.0 / USERS as f64),
            f3(utility_from_distortion(gait_distortion, 1.0)),
        ]);
    }

    notes.push(format!(
        "raw gaze is highly identifying (accuracy {:.2}); heavier PETs push it toward 0.5 at \
         decreasing utility — the privacy–utility trade-off of Fig. 2",
        baseline_gaze_acc
    ));
    notes.push(
        "composition-order ablation: noise-then-quantize re-discretises the noise and keeps \
         more utility than quantize-then-noise at similar attack accuracy"
            .into(),
    );

    ExperimentResult {
        id: "E1".into(),
        title: "PET pipeline vs inference attacks".into(),
        claim: "PETs can obfuscate sensible sensor data before cloud sharing (§II-A, Fig. 2)"
            .into(),
        tables: vec![gaze_table, gait_table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let result = run(7);
        let gaze = &result.tables[0];
        let acc = |row: usize| gaze.rows[row][1].parse::<f64>().unwrap();
        let utility = |row: usize| gaze.rows[row][3].parse::<f64>().unwrap();
        // Row 0 is "none": near-perfect attack, full utility.
        assert!(acc(0) > 0.9);
        assert!((utility(0) - 1.0).abs() < 1e-9);
        // Heavy noise (row 2) hurts the attack more than light (row 1).
        assert!(acc(2) < acc(1) + 0.05);
        assert!(utility(2) < utility(1));
    }
}
