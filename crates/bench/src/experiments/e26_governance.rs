//! E26 — governance at scale: DAO voting storms, PET-filtered
//! biometric streams under a global DP budget, and moderation floods,
//! all through the sharded gateway.
//!
//! Claim (§III–§V): the governance mechanisms the paper calls for —
//! liquid/quadratic voting, privacy-enhancing filtering with a metered
//! epsilon budget, and an appealable moderation ladder — survive
//! *scale*: each seeded scenario drives tens of thousands of ops into
//! the epoch core at 1, 2, 4, and 8 shards, and the audited global
//! quantities (token/asset conservation and the DP-budget ledger) are
//! byte-identical at every shard count. The DP budget is sized so the
//! biometric burst *exhausts* it mid-run: the ledger must fail closed —
//! refusals, not over-spend — and the refusal frontier must land on the
//! same admission everywhere.
//!
//! Measured per cell:
//!
//! * **throughput** — wall-clock kops/s of the full drive (admission,
//!   pre-route, fan-out, merge, settle), non-deterministic;
//! * **governance outcomes** — committed/failed ops, DP micro-epsilon
//!   spent and refused (seed-deterministic);
//! * **audit gate** — the `ConservationReport` and `DpBudgetReport`
//!   Debug strings, compared byte-for-byte across shard counts.

use std::time::Instant;

use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};

use crate::report::{ExperimentResult, Table};

/// Shard counts each scenario runs at.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Users per scenario (each registers once before the mixed stream).
const USERS: usize = 2_000;
/// Mixed ops per scenario — three scenarios make the 120k-op stream.
const OPS: usize = 40_000;
/// Admissions between epoch boundaries.
const OPS_PER_EPOCH: usize = 2_048;
/// Micro-epsilon charged per admitted sensor event.
const EPSILON_PER_EVENT_MICRO: u64 = 1_000;

/// One scenario at one shard count.
struct Run {
    scenario: &'static str,
    shards: usize,
    submitted: u64,
    committed: u64,
    failed: u64,
    elapsed_ns: u128,
    dp_spent_micro: u64,
    dp_refused: u64,
    conservation: String,
    dp_report: String,
    conserved: bool,
    within_budget: bool,
    reconciled: bool,
    /// The `gateway.dp.refused` instrument agrees with the ledger —
    /// fail-closed refusals are visible in telemetry, not just audits.
    telemetry_agrees: bool,
}

/// The DP budget for a given stream length: enough for a quarter of
/// the ops. The biometric burst generates sensor events at well over
/// that rate, so it always crosses the refusal frontier mid-run; the
/// other scenarios generate none and never touch the ledger.
fn dp_budget_micro(ops: usize) -> u64 {
    (ops as u64 / 4) * EPSILON_PER_EVENT_MICRO
}

fn router(shards: usize, ops: usize, depth: usize) -> ShardRouter {
    ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .mailbox_capacity(4096)
            .dp_budget_micro(dp_budget_micro(ops))
            .dp_epsilon_per_event_micro(EPSILON_PER_EVENT_MICRO)
            .pet_noise_seed(0x9e26)
            .key_tree_depth(depth)
            .build(),
    )
}

fn drive(scenario: &'static str, workload: WorkloadConfig, shards: usize, depth: usize) -> Run {
    let ops = workload.ops;
    let engine = WorkloadEngine::new(workload);
    let mut gateway = router(shards, ops, depth);
    let started = Instant::now();
    let report = engine.drive(&mut gateway, OPS_PER_EPOCH);
    let elapsed_ns = started.elapsed().as_nanos();
    let conservation = gateway.conservation_report();
    let dp = gateway.dp_budget_report();
    let telemetry = gateway.telemetry_snapshot();
    let refused_metric = telemetry.counters.get("gateway.dp.refused").copied().unwrap_or(0);
    let spent_metric = telemetry.counters.get("gateway.dp.spent_micro").copied().unwrap_or(0);
    Run {
        scenario,
        shards,
        submitted: report.submitted,
        committed: report.committed,
        failed: report.failed,
        elapsed_ns,
        dp_spent_micro: dp.spent_micro,
        dp_refused: dp.refused_events,
        conservation: format!("{conservation:?}"),
        dp_report: format!("{dp:?}"),
        conserved: conservation.conserved,
        within_budget: dp.within_budget,
        reconciled: dp.reconciled,
        telemetry_agrees: refused_metric == dp.refused_events
            && spent_metric == dp.reconciled_micro,
    }
}

fn kops_per_sec(ops: u64, elapsed_ns: u128) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    (ops as f64) / (elapsed_ns as f64 / 1e9) / 1e3
}

/// Runs E26 at the full committed size (three 40k-op scenarios — the
/// 120k-op stream — each at 1/2/4/8 shards). Key-tree depth scales
/// down with shard count exactly as in E21/E25; depth never affects
/// outcomes, only per-shard signing capacity.
pub fn run(seed: u64) -> ExperimentResult {
    run_with(seed, USERS, OPS, |shards| {
        (10usize.saturating_sub(shards.trailing_zeros() as usize)).max(8)
    })
}

/// Runs E26 with explicit sizing (tests use a small stream and shallow
/// key trees to keep shard setup cheap).
pub fn run_sized(seed: u64, users: usize, ops: usize, key_tree_depth: usize) -> ExperimentResult {
    run_with(seed, users, ops, |_| key_tree_depth)
}

/// A named scenario constructor (`users`, `ops`, `seed`).
type Scenario = (&'static str, fn(usize, usize, u64) -> WorkloadConfig);

fn run_with(
    seed: u64,
    users: usize,
    ops: usize,
    depth_for: impl Fn(usize) -> usize,
) -> ExperimentResult {
    let scenarios: [Scenario; 3] = [
        ("proposal-storm", WorkloadConfig::proposal_storm),
        ("biometric-burst", WorkloadConfig::biometric_burst),
        ("moderation-flood", WorkloadConfig::moderation_flood),
    ];
    let mut runs: Vec<Run> = Vec::with_capacity(scenarios.len() * SHARD_COUNTS.len());
    for &(name, make) in &scenarios {
        for &shards in &SHARD_COUNTS {
            runs.push(drive(name, make(users, ops, seed), shards, depth_for(shards)));
        }
    }

    let mut table = Table::new(
        "one seeded scenario per cell (kops/s is wall-clock; every other column is \
         seed-deterministic, and the audit verdict compares the conservation + DP \
         reports byte-for-byte against the scenario's 1-shard cell)",
        &[
            "scenario", "shards", "ops", "committed", "failed", "kops/s", "dp spent μe-6",
            "dp refused", "audit",
        ],
    );
    let baseline = |scenario: &str| {
        runs.iter()
            .find(|r| r.scenario == scenario && r.shards == 1)
            .map(|r| (r.conservation.clone(), r.dp_report.clone()))
            .expect("every scenario has a 1-shard cell")
    };
    for run in &runs {
        let (base_cons, base_dp) = baseline(run.scenario);
        let identical = run.conservation == base_cons && run.dp_report == base_dp;
        table.row(vec![
            run.scenario.to_string(),
            run.shards.to_string(),
            run.submitted.to_string(),
            run.committed.to_string(),
            run.failed.to_string(),
            format!("{:.1}", kops_per_sec(run.submitted, run.elapsed_ns)),
            run.dp_spent_micro.to_string(),
            run.dp_refused.to_string(),
            if identical { "identical".into() } else { "DIVERGED".into() },
        ]);
    }

    let all_identical = runs.iter().all(|r| {
        let (base_cons, base_dp) = baseline(r.scenario);
        r.conservation == base_cons && r.dp_report == base_dp
    });
    let all_conserved = runs.iter().all(|r| r.conserved);
    let all_within = runs.iter().all(|r| r.within_budget && r.reconciled);
    let telemetry_agrees = runs.iter().all(|r| r.telemetry_agrees);
    let burst_refused = runs
        .iter()
        .filter(|r| r.scenario == "biometric-burst")
        .map(|r| r.dp_refused)
        .max()
        .unwrap_or(0);

    ExperimentResult {
        id: "E26".into(),
        title: "Governance at scale: voting storms, DP-metered sensor streams, and \
                moderation floods through the sharded gateway"
            .into(),
        claim: "Liquid/quadratic voting, PET-filtered sensor ingestion under a global \
                epsilon budget, and an appealable moderation ladder keep their audited \
                invariants under sharded scale: conservation and DP-budget reports are \
                byte-identical at 1/2/4/8 shards, and an exhausted budget fails closed \
                as refusals, never as over-spend (§III–§V)"
            .into(),
        tables: vec![table],
        notes: vec![
            format!(
                "shard-count gate: {} — every cell's conservation + DP reports match \
                 the scenario's 1-shard baseline byte-for-byte",
                if all_identical && all_conserved { "HELD" } else { "FAILED" }
            ),
            format!(
                "DP fail-closed gate: {} — spent ≤ budget and spent = reconciled in \
                 every cell; the biometric burst crossed the refusal frontier \
                 ({burst_refused} events refused, identically at every shard count)",
                if all_within && burst_refused > 0 { "HELD" } else { "FAILED" }
            ),
            format!(
                "telemetry gate: {} — gateway.dp.refused and gateway.dp.spent_micro \
                 instruments agree with the audited ledger in every cell",
                if telemetry_agrees { "HELD" } else { "FAILED" }
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape gate: a small run renders every cell and holds every gate.
    #[test]
    fn small_scenarios_audit_identically_and_render() {
        let result = run_sized(7, 48, 1_200, 5);
        assert_eq!(result.id, "E26");
        assert_eq!(result.tables[0].rows.len(), 3 * SHARD_COUNTS.len());
        for note in &result.notes {
            assert!(note.contains("HELD"), "gate failed: {note}");
        }
    }
}
