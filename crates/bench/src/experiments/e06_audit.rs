//! E6 — the ledger as data-collection audit registry.
//!
//! Claim (§II-D): "A distributed ledger (Blockchain) can register any
//! party's data collection and processing activities in the metaverse.
//! Finally, the metaverse should guarantee no data monopoly from any
//! parties." The experiment registers synthetic collection activity on
//! the proof-of-authority chain, shows tamper detection, light-client
//! proofs, and tracks the HHI monopoly metric as one party grows greedy.

use metaverse_ledger::audit::{AuditRegistry, DataCollectionEvent, LawfulBasis, SensorClass};
use metaverse_ledger::chain::{Chain, ChainConfig};
use metaverse_ledger::tx::{Transaction, TxPayload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

/// Runs E6.
pub fn run(seed: u64) -> ExperimentResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut chain = Chain::poa(
        &["auditor-eu", "auditor-us"],
        ChainConfig { key_tree_depth: 8, max_txs_per_block: 64, ..ChainConfig::default() },
    );
    let mut audit = AuditRegistry::new();

    // Phase sweep: "greedy" collector takes a growing share of traffic.
    let mut monopoly_table = Table::new(
        "data-monopoly (HHI) as one collector's share grows (7 collectors)",
        &["greedy share", "HHI", "dominant", "monopoly@0.25"],
    );
    let mut tx_count = 0usize;
    for &greedy_share in &[0.1, 0.25, 0.4, 0.55, 0.7, 0.85] {
        let mut phase_audit = AuditRegistry::new();
        for i in 0..200 {
            let collector = if rng.gen_bool(greedy_share) {
                "megacorp".to_string()
            } else {
                format!("collector-{}", i % 6)
            };
            let event = DataCollectionEvent {
                collector,
                subject: format!("user-{}", rng.gen_range(0..50)),
                sensor: SensorClass::ALL[rng.gen_range(0..SensorClass::ALL.len())],
                purpose: "telemetry".into(),
                basis: LawfulBasis::Consent,
                tick: chain.tick(),
                bytes: rng.gen_range(64..4096),
            };
            phase_audit.record(event.clone());
            audit.record(event.clone());
            chain
                .submit(Transaction::new(event.collector.clone(), TxPayload::DataCollection(event)))
                .expect("submission succeeds");
            tx_count += 1;
        }
        chain.seal_all().expect("sealing succeeds");
        chain.advance(10);
        let (dominant, _) = phase_audit.dominant_collector().expect("events recorded");
        monopoly_table.row(vec![
            format!("{greedy_share:.2}"),
            f3(phase_audit.hhi()),
            dominant,
            phase_audit.has_monopoly(0.25).to_string(),
        ]);
    }

    // Integrity & proofs table.
    let mut ledger_table = Table::new("ledger properties", &["property", "value"]);
    ledger_table.row(vec!["events registered".into(), tx_count.to_string()]);
    ledger_table.row(vec!["blocks sealed".into(), chain.height().to_string()]);
    ledger_table.row(vec![
        "full-chain verification".into(),
        chain.verify_integrity().is_ok().to_string(),
    ]);

    // Light-client proof of a random registered event.
    let probe = chain.blocks()[1].transactions[0].id();
    let proof_ok = chain
        .prove_tx(&probe)
        .map(|(header, proof)| {
            let (h, i) = chain.find_tx(&probe).unwrap();
            let tx = &chain.block_at(h).unwrap().transactions[i];
            proof.verify(&header.tx_root, &tx.canonical_bytes())
        })
        .unwrap_or(false);
    ledger_table.row(vec!["light-client inclusion proof".into(), proof_ok.to_string()]);

    // Tamper detection: rewrite one registered event in storage.
    let mut tampered = false;
    chain.tamper(2, |block| {
        if let Some(tx) = block.transactions.first_mut() {
            if let TxPayload::DataCollection(ev) = &mut tx.payload {
                ev.collector = "innocent-corp".into();
                tampered = true;
            }
        }
    });
    ledger_table.row(vec![
        "tampered event detected".into(),
        (tampered && chain.verify_integrity().is_err()).to_string(),
    ]);
    ledger_table.row(vec![
        "violations (lawless/biometric)".into(),
        audit.violations().len().to_string(),
    ]);

    ExperimentResult {
        id: "E6".into(),
        title: "Ledger-backed data-collection audit and monopoly metric".into(),
        claim: "A distributed ledger can register all data-collection activity; the platform \
                should guarantee no data monopoly (§II-D)"
            .into(),
        tables: vec![monopoly_table, ledger_table],
        notes: vec![
            "HHI crosses the 0.25 'highly concentrated' line between greedy shares 0.40 and \
             0.55, giving governance a concrete trigger for the paper's no-monopoly guarantee"
                .into(),
            "rewriting a sealed collection record is caught by full-chain verification — \
             the integrity property the paper wants from Blockchain is real in this build"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monopoly_metric_monotone_and_tamper_detected() {
        let result = run(7);
        let hhi: Vec<f64> =
            result.tables[0].rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in hhi.windows(2) {
            assert!(w[1] > w[0] - 0.02, "HHI roughly monotone: {hhi:?}");
        }
        assert!(*hhi.last().unwrap() > 0.5);
        for row in &result.tables[1].rows {
            if row[0].contains("detected") || row[0].contains("verification") || row[0].contains("proof") {
                assert_eq!(row[1], "true", "{row:?}");
            }
        }
    }
}
