//! E16 — juries as a fatigue-free governance process.
//!
//! Claim (§III-C, after Schneider et al.): the governance layer should
//! include "a broad spectrum of processes (juries, formal debates)".
//! The experiment handles the same dispute load either by referendum
//! (every member asked, fatigue applies) or by sortition juries (seven
//! members asked per dispute), comparing decision completion and the
//! per-member ballot burden.

use metaverse_dao::sortition::{Jury, JuryConfig, Verdict};
use metaverse_dao::turnout::FatigueModel;
use metaverse_dao::voting::Choice;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

const MEMBERS: usize = 500;

/// Runs `disputes` disputes by full referendum under fatigue; returns
/// `(decided fraction, requests per member)`.
fn referendum_process(disputes: usize, seed: u64) -> (f64, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let fatigue = FatigueModel::default();
    let mut decided = 0usize;
    for _ in 0..disputes {
        let mut turnout = 0usize;
        for _ in 0..MEMBERS {
            if fatigue.votes(disputes as u64, &mut rng) {
                turnout += 1;
            }
        }
        // A referendum needs 20% turnout to be valid (E7's quorum).
        if turnout as f64 / MEMBERS as f64 >= 0.2 {
            decided += 1;
        }
    }
    (decided as f64 / disputes as f64, disputes as f64)
}

/// Runs the same disputes by sortition juries; returns
/// `(decided fraction, mean requests per member)`.
fn jury_process(disputes: usize, seed: u64) -> (f64, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let config = JuryConfig::default();
    let pool: Vec<(String, u64)> =
        (0..MEMBERS).map(|i| (format!("m{i}"), 50)).collect();
    let mut decided = 0usize;
    let mut total_requests = 0usize;
    for d in 0..disputes {
        let mut jury =
            Jury::empanel(format!("dispute-{d}"), &pool, &config, &mut rng).expect("pool large");
        total_requests += jury.jurors.len();
        let jurors = jury.jurors.clone();
        for juror in &jurors {
            // Jurors serve when called: participation near-certain for a
            // seven-person duty (single request per dispute).
            let choice = if rng.gen_bool(0.75) { Choice::Yes } else { Choice::No };
            jury.cast(juror, choice).expect("valid juror");
        }
        if jury.verdict(&config) != Verdict::Hung {
            decided += 1;
        }
    }
    (decided as f64 / disputes as f64, total_requests as f64 / MEMBERS as f64)
}

/// Runs E16.
pub fn run(seed: u64) -> ExperimentResult {
    let mut table = Table::new(
        "referendum vs jury over a dispute load (500 members)",
        &["disputes/epoch", "process", "decided", "requests/member"],
    );
    for &disputes in &[4usize, 16, 64] {
        let (ref_decided, ref_requests) = referendum_process(disputes, seed);
        let (jury_decided, jury_requests) = jury_process(disputes, seed);
        table.row(vec![
            disputes.to_string(),
            "referendum".into(),
            f3(ref_decided),
            f3(ref_requests),
        ]);
        table.row(vec![
            disputes.to_string(),
            "jury(7)".into(),
            f3(jury_decided),
            f3(jury_requests),
        ]);
    }

    ExperimentResult {
        id: "E16".into(),
        title: "Sortition juries vs referenda under dispute load".into(),
        claim: "Governance needs processes beyond voting — juries and debates — to stay \
                workable at scale (§III-C)"
            .into(),
        tables: vec![table],
        notes: vec![
            "at 64 disputes per epoch, referendum turnout collapses below quorum and nothing \
             gets decided, while juries decide a high fraction at a per-member burden under \
             one ballot — the 'portable governance tools' argument, quantified"
                .into(),
            "juries trade breadth of participation for liveness; constitutional questions \
             should stay with referenda (E7), routine disputes with juries"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn juries_scale_where_referenda_collapse() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        // Last pair = 64 disputes: referendum row then jury row.
        let ref_decided: f64 = rows[4][2].parse().unwrap();
        let jury_decided: f64 = rows[5][2].parse().unwrap();
        let ref_requests: f64 = rows[4][3].parse().unwrap();
        let jury_requests: f64 = rows[5][3].parse().unwrap();
        assert!(ref_decided < 0.2, "referenda collapse: {ref_decided}");
        assert!(jury_decided > 0.6, "juries keep deciding: {jury_decided}");
        assert!(jury_requests < ref_requests / 10.0);
    }

    #[test]
    fn low_load_both_work() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        let ref_decided: f64 = rows[0][2].parse().unwrap();
        assert!(ref_decided > 0.9, "light load referenda fine: {ref_decided}");
    }
}
