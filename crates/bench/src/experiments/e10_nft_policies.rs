//! E10 — NFT marketplace admission policies.
//!
//! Claim (§IV-A): invite-only policies reduce scams but "diminish the
//! advantages of NFTs as an open-access content creation tool"; a
//! reputation-based system is proposed as the balance. The experiment
//! runs the same creator/scammer/buyer economy under all three policies
//! and ablates the reputation gate threshold.

use metaverse_assets::economy::{EconomyConfig, NftEconomy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f3, ExperimentResult, Table};

/// Runs E10.
pub fn run(seed: u64) -> ExperimentResult {
    let economy = NftEconomy::new(EconomyConfig::default());
    let mut table = Table::new(
        "policy comparison (40 honest creators, 10 scammers, 100 buyers, 50 rounds)",
        &["policy", "honest openness", "scam rate", "late scam rate", "honest revenue", "scam revenue"],
    );
    for report in economy.compare(seed) {
        table.row(vec![
            report.policy.clone(),
            f3(report.honest_openness),
            f3(report.scam_sale_rate),
            f3(report.late_scam_rate),
            report.honest_revenue.to_string(),
            report.scam_revenue.to_string(),
        ]);
    }

    let mut gate_table = Table::new(
        "reputation-gate threshold ablation",
        &["gate (points)", "honest openness", "late scam rate"],
    );
    for &gate in &[20.0, 35.0, 45.0, 49.0] {
        let economy = NftEconomy::new(EconomyConfig { gate_points: gate, ..Default::default() });
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let _ = &mut rng;
        let report = &economy.compare(seed)[2];
        gate_table.row(vec![
            format!("{gate:.0}"),
            f3(report.honest_openness),
            f3(report.late_scam_rate),
        ]);
    }

    ExperimentResult {
        id: "E10".into(),
        title: "NFT admission policies: open vs invite-only vs reputation-gated".into(),
        claim: "Reputation-based gating keeps NFT markets open while reducing scams, unlike \
                invite-only lists (§IV-A)"
            .into(),
        tables: vec![table, gate_table],
        notes: vec![
            "the trade-off frontier the paper describes appears: open = max openness + max \
             scams; invite-only = zero scams but most honest creators locked out; \
             reputation-gated ≈ open-level openness with the scam rate collapsing as \
             reports accumulate"
                .into(),
            "gate threshold ablation: too low and scammers survive; too close to the \
             50-point prior and honest newcomers get locked out with the scammers"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_shape() {
        let result = run(7);
        let rows = &result.tables[0].rows;
        let openness = |i: usize| rows[i][1].parse::<f64>().unwrap();
        let late_scam = |i: usize| rows[i][3].parse::<f64>().unwrap();
        // open(0), invite-only(1), reputation-gated(2)
        assert!(openness(0) >= openness(2));
        assert!(openness(2) > openness(1) + 0.2, "gated far more open than invite-only");
        assert_eq!(late_scam(1), 0.0);
        assert!(late_scam(2) < late_scam(0), "gate squeezes scams late");
    }
}
