//! E28 — the ops plane under load: per-shard heat accounting,
//! stage-latency attribution, and SLO burn evaluation riding a 120k-op
//! governance storm, gated on byte-identical reports and bounded
//! overhead.
//!
//! Claim (§IV-C / §VI): governing a metaverse platform requires
//! *observing* it — load skew, stage latencies, and objective burn must
//! be visible without perturbing the audited run. This experiment
//! replays E26's proposal-storm shape (512 users, 120k governance ops)
//! at 1, 2, 4, and 8 shards:
//!
//! * **plane off** — the pipelined E27 configuration, tracing on, no
//!   ops plane: the wall-clock baseline;
//! * **plane on** — identical, plus the full ops plane (heat window,
//!   latency profiler, default SLO objectives) folding at every epoch
//!   barrier;
//! * **identity runs** — plane on, sequential (1 worker) vs pipelined:
//!   the rendered heat report, latency report, and SLO snapshot must be
//!   byte-identical, the CI-gated half.
//!
//! Wall-clock columns are host-dependent; the overhead note pools every
//! shard count (`sum(on) / sum(off) - 1`) against the ≤5% budget. A
//! second table starves the admission token bucket so the refusal-rate
//! objective actually trips, and counts the trip's three audit
//! artifacts: trace events, snapshot state, and on-ledger
//! `HealthTransition` records.

use std::time::Instant;

use metaverse_gateway::ops::OpsPlaneConfig;
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_ledger::tx::TxPayload;
use metaverse_telemetry::{SloKind, SloObjective};

use crate::report::{ExperimentResult, Table};

/// Shard counts the storm is replayed at (same sweep as E21/E27).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Distinct users in the storm (each registers first).
const USERS: usize = 512;
/// Governance ops generated after the registers.
const OPS: usize = 120_000;
/// Submissions between epoch boundaries.
const OPS_PER_EPOCH: usize = 2048;
/// Router trace-ring capacity (both modes trace; the plane is the only
/// delta the overhead columns see).
const TRACE_CAPACITY: usize = 1 << 20;
/// Pooled wall-clock overhead budget for the plane, in percent.
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// One replay of the storm.
struct Run {
    elapsed_ns: u128,
    admitted: u64,
    committed: u64,
    /// Heat + latency + SLO reports concatenated — the byte-identity
    /// witness (empty when the plane is off).
    ops_view: String,
    heat_epochs: u64,
    imbalance_milli: u64,
}

#[allow(clippy::too_many_arguments)]
fn replay(
    seed: u64,
    shards: usize,
    workers: usize,
    pipelined: bool,
    users: usize,
    ops: usize,
    per_epoch: usize,
    depth: usize,
    trace_capacity: usize,
    plane: Option<OpsPlaneConfig>,
) -> Run {
    let engine = WorkloadEngine::new(WorkloadConfig::proposal_storm(users, ops, seed));
    let mut builder = GatewayConfig::builder()
        .shards(shards)
        .workers(workers)
        .pipeline(pipelined)
        .seal_workers(if pipelined { 0 } else { 1 })
        .tracing(trace_capacity)
        .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
        .mailbox_capacity(4096)
        .key_tree_depth(depth);
    if let Some(config) = plane {
        builder = builder.ops_plane(config);
    }
    let mut router = ShardRouter::new(builder.build());
    let started = Instant::now();
    let drive = engine.drive(&mut router, per_epoch);
    let elapsed_ns = started.elapsed().as_nanos();
    let (ops_view, heat_epochs, imbalance_milli) = match router.heat_report() {
        Some(heat) => (
            format!(
                "{}\n{}\n{}",
                heat.to_json(),
                router.latency_report().expect("plane on").to_json(),
                router.slo_snapshot().expect("plane on").to_json(),
            ),
            heat.epochs,
            heat.imbalance_milli,
        ),
        None => (String::new(), 0, 0),
    };
    Run {
        elapsed_ns,
        admitted: drive.accepted,
        committed: drive.committed,
        ops_view,
        heat_epochs,
        imbalance_milli,
    }
}

/// FNV-1a over a rendered witness (equality is checked on full bytes).
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A starved-bucket run that trips the refusal-rate objective; returns
/// the three audit artifacts' counts plus mode-identity of the view.
struct TripDrill {
    trip_events: usize,
    recovery_events: usize,
    snapshot_tripped: bool,
    ledger_records: usize,
    mode_identical: bool,
}

fn trip_drill(seed: u64, users: usize, ops: usize, depth: usize) -> TripDrill {
    let config = OpsPlaneConfig {
        heat_window_ticks: 16,
        objectives: vec![SloObjective {
            name: "refusal_rate",
            kind: SloKind::RefusalRateMaxMilli,
            max: 100,
        }],
    };
    let build = |workers: usize| {
        let engine = WorkloadEngine::new(WorkloadConfig::proposal_storm(users, ops, seed));
        let mut router = ShardRouter::new(
            GatewayConfig::builder()
                .shards(4)
                .workers(workers)
                .tracing(1 << 16)
                .ops_plane(config.clone())
                .rate_limit(RateLimit { burst: 4, milli_per_tick: 2_000 })
                .key_tree_depth(depth)
                .build(),
        );
        engine.drive(&mut router, 256);
        router
    };
    let mut sequential = build(1);
    let parallel = build(4);
    let trace = sequential.trace_jsonl();
    let view = |r: &ShardRouter| {
        format!(
            "{}\n{}",
            r.heat_report().expect("plane on").to_json(),
            r.slo_snapshot().expect("plane on").to_json(),
        )
    };
    TripDrill {
        trip_events: trace.lines().filter(|l| l.contains("\"slo_tripped\"")).count(),
        recovery_events: trace.lines().filter(|l| l.contains("\"slo_recovered\"")).count(),
        snapshot_tripped: sequential
            .slo_snapshot()
            .expect("plane on")
            .to_json()
            .contains("\"tripped\":true"),
        ledger_records: sequential
            .shard_platform(0)
            .chain()
            .iter_txs()
            .filter(|t| {
                matches!(
                    &t.payload,
                    TxPayload::HealthTransition { module, .. } if module == "refusal_rate"
                )
            })
            .count(),
        mode_identical: view(&sequential) == view(&parallel),
    }
}

/// Runs E28 at the full committed size. Key-tree depth scales down with
/// shard count exactly as in E21/E27.
///
/// E28 replays the storm four times per shard count; a debug build —
/// which only the `experiment_smoke` suite exercises — runs a
/// sized-down stream; every recorded number comes from the release
/// binary.
pub fn run(seed: u64) -> ExperimentResult {
    if cfg!(debug_assertions) {
        return run_sized(seed, 48, 4_000, 256, 6, 1 << 17);
    }
    run_with(seed, USERS, OPS, OPS_PER_EPOCH, TRACE_CAPACITY, |shards| {
        (10usize.saturating_sub(shards.trailing_zeros() as usize)).max(8)
    })
}

/// Runs E28 with explicit sizing (tests use a small stream and shallow
/// key trees).
pub fn run_sized(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    key_tree_depth: usize,
    trace_capacity: usize,
) -> ExperimentResult {
    run_with(seed, users, ops, per_epoch, trace_capacity, |_| key_tree_depth)
}

fn run_with(
    seed: u64,
    users: usize,
    ops: usize,
    per_epoch: usize,
    trace_capacity: usize,
    depth_for: impl Fn(usize) -> usize,
) -> ExperimentResult {
    struct Cell {
        shards: usize,
        off: Run,
        on: Run,
        on_sequential: Run,
        identical: bool,
    }
    let cells: Vec<Cell> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let depth = depth_for(shards);
            let off = replay(
                seed,
                shards,
                shards,
                true,
                users,
                ops,
                per_epoch,
                depth,
                trace_capacity,
                None,
            );
            let on = replay(
                seed,
                shards,
                shards,
                true,
                users,
                ops,
                per_epoch,
                depth,
                trace_capacity,
                Some(OpsPlaneConfig::default()),
            );
            let on_sequential = replay(
                seed,
                shards,
                1,
                false,
                users,
                ops,
                per_epoch,
                depth,
                trace_capacity,
                Some(OpsPlaneConfig::default()),
            );
            let identical = !on.ops_view.is_empty() && on.ops_view == on_sequential.ops_view;
            Cell { shards, off, on, on_sequential, identical }
        })
        .collect();

    let mut overhead = Table::new(
        "the storm with the ops plane off vs on (both pipelined, both traced — the plane \
         is the only delta); ms and overhead are wall-clock, every other column is \
         seed-deterministic",
        &[
            "shards", "off ms", "on ms", "overhead %", "admitted", "committed",
            "heat epochs", "imbalance milli", "identical ops view",
        ],
    );
    for c in &cells {
        let pct = if c.off.elapsed_ns > 0 {
            (c.on.elapsed_ns as f64 / c.off.elapsed_ns as f64 - 1.0) * 100.0
        } else {
            0.0
        };
        overhead.row(vec![
            c.shards.to_string(),
            format!("{:.0}", c.off.elapsed_ns as f64 / 1e6),
            format!("{:.0}", c.on.elapsed_ns as f64 / 1e6),
            format!("{pct:+.1}"),
            c.on.admitted.to_string(),
            c.on.committed.to_string(),
            c.on.heat_epochs.to_string(),
            c.on.imbalance_milli.to_string(),
            c.identical.to_string(),
        ]);
    }

    let mut identity = Table::new(
        "the determinism gate: FNV-1a fingerprints over the concatenated heat report, \
         stage-latency report, and SLO snapshot, sequential (1 worker, batched) vs \
         pipelined (1 worker per shard, streaming) — equality is checked on full bytes",
        &["shards", "view fp sequential", "view fp pipelined", "identical"],
    );
    for c in &cells {
        identity.row(vec![
            c.shards.to_string(),
            format!("{:016x}", fingerprint(c.on_sequential.ops_view.as_bytes())),
            format!("{:016x}", fingerprint(c.on.ops_view.as_bytes())),
            c.identical.to_string(),
        ]);
    }

    let drill = trip_drill(seed, users.min(64), ops.min(3_000), 7);
    let mut trips = Table::new(
        "a starved token bucket (burst 4) trips the 10% refusal-rate objective at 4 \
         shards: the trip must land in the trace stream, the SLO snapshot, and as \
         on-ledger HealthTransition records on shard 0 — identically under sequential \
         and parallel schedules",
        &[
            "trip events", "recovery events", "snapshot tripped", "ledger records",
            "mode identical",
        ],
    );
    trips.row(vec![
        drill.trip_events.to_string(),
        drill.recovery_events.to_string(),
        drill.snapshot_tripped.to_string(),
        drill.ledger_records.to_string(),
        drill.mode_identical.to_string(),
    ]);

    let all_identical = cells.iter().all(|c| c.identical);
    let off_total: u128 = cells.iter().map(|c| c.off.elapsed_ns).sum();
    let on_total: u128 = cells.iter().map(|c| c.on.elapsed_ns).sum();
    let pooled_pct = if off_total > 0 {
        (on_total as f64 / off_total as f64 - 1.0) * 100.0
    } else {
        0.0
    };
    let audited = drill.trip_events > 0 && drill.snapshot_tripped && drill.ledger_records > 0;

    ExperimentResult {
        id: "E28".into(),
        title: "The ops plane: heat accounting, stage-latency attribution, and SLO burn \
                with byte-identical reports and bounded overhead"
            .into(),
        claim: "Folding per-shard heat, stage latencies, and SLO burn at the epoch \
                barrier observes the platform without perturbing it: the rendered ops \
                view is byte-identical across execution schedules at every shard count, \
                objective trips are triple-audited (trace, snapshot, ledger), and the \
                whole plane costs within a few percent of wall-clock (§IV-C, §VI)"
            .into(),
        tables: vec![overhead, identity, trips],
        notes: vec![
            format!(
                "determinism gate: the ops view (heat + latency + SLO reports) is {} \
                 between sequential and pipelined schedules at every shard count, and \
                 the tripped objective {} all three audit artifacts (trace event, \
                 snapshot state, on-ledger HealthTransition)",
                if all_identical { "BYTE-IDENTICAL" } else { "DIVERGENT" },
                if audited { "left" } else { "FAILED to leave" },
            ),
            format!(
                "pooled wall-clock overhead of the plane across the sweep: {pooled_pct:+.1}% \
                 ({} the {OVERHEAD_BUDGET_PCT}% budget); per-cell percentages are noisy on \
                 shared hosts — the pooled figure is the one the budget is judged on",
                if pooled_pct <= OVERHEAD_BUDGET_PCT { "within" } else { "OVER" },
            ),
            "imbalance_milli is the resharding signal ROADMAP item 3 needs: it is \
             placement-dependent by design, which is exactly why it lives outside the \
             shard-count-invariant global_json view"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_views_are_schedule_invariant_and_trips_are_audited() {
        let result = run_sized(7, 32, 1_500, 256, 6, 1 << 16);
        assert!(result.notes[0].contains("BYTE-IDENTICAL"), "{}", result.notes[0]);
        assert!(result.notes[0].contains("left"), "{}", result.notes[0]);
        for row in &result.tables[1].rows {
            assert_eq!(row[1], row[2], "view fingerprints diverged: {row:?}");
            assert_eq!(row[3], "true");
        }
    }

    #[test]
    fn deterministic_columns_reproduce_for_a_seed() {
        let a = run_sized(11, 32, 1_500, 256, 6, 1 << 16);
        let b = run_sized(11, 32, 1_500, 256, 6, 1 << 16);
        // The identity and trip tables carry no wall-clock columns.
        assert_eq!(a.tables[1].rows, b.tables[1].rows);
        assert_eq!(a.tables[2].rows, b.tables[2].rows);
    }
}
