//! Binary wrapper for experiment e21; see EXPERIMENTS.md.

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(metaverse_bench::DEFAULT_SEED);
    let result = metaverse_bench::experiments::e21_gateway::run(seed);
    println!("{}", result.render());
}
