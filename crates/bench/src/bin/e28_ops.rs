//! Binary wrapper for experiment e28; see EXPERIMENTS.md. Pass a seed
//! as the first argument, `--json <dir>` to also write `e28.json`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = metaverse_bench::DEFAULT_SEED;
    let mut json_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            json_dir = args.get(i + 1).cloned();
            i += 2;
        } else {
            if let Ok(s) = args[i].parse() {
                seed = s;
            }
            i += 1;
        }
    }
    let result = metaverse_bench::experiments::e28_ops::run(seed);
    println!("{}", result.render());
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{}.json", result.id.to_lowercase());
        std::fs::write(&path, result.to_json()).expect("write json");
    }
}
