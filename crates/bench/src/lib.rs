//! # metaverse-bench
//!
//! Experiment harnesses and Criterion benchmarks for `metaverse-kit`.
//!
//! The paper this workspace reproduces is a position paper with no
//! measured evaluation, so each experiment here reifies one of its
//! *qualitative claims* into a measurable run (see DESIGN.md §2 and
//! EXPERIMENTS.md for the full index). Every experiment is exposed as a
//! library function returning structured rows, wrapped by a binary in
//! `src/bin/` that prints the table, so integration tests can assert on
//! experiment *shape* without scraping stdout.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p metaverse-bench --bin run_all
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::{ExperimentResult, Table};

/// The fixed seed used by the committed experiment outputs. Change it
/// and every table reproduces with different noise but the same shape.
pub const DEFAULT_SEED: u64 = 20220701;
