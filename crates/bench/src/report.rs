//! Table rendering and structured result output for experiments.

/// A printable, machine-readable experiment outcome.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id ("E1" … "E14").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The paper claim being tested (quoted or paraphrased).
    pub claim: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form observations on whether the claim's shape held.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Renders the whole result for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("claim: {}\n\n", self.claim));
        for table in &self.tables {
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Serialises to pretty JSON (for EXPERIMENTS.md provenance).
    ///
    /// Hand-rolled rather than via serde so the output stays real JSON
    /// in the offline build (the in-tree serde stand-in cannot
    /// serialise; see `third_party/README.md`). Layout mirrors
    /// `serde_json::to_string_pretty`: two-space indent, struct fields
    /// in declaration order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        json_field(&mut out, 1, "id", &json_str(&self.id), false);
        json_field(&mut out, 1, "title", &json_str(&self.title), false);
        json_field(&mut out, 1, "claim", &json_str(&self.claim), false);
        let tables: Vec<String> = self.tables.iter().map(|t| t.to_json(2)).collect();
        json_field(&mut out, 1, "tables", &json_array(&tables, 1), false);
        let notes: Vec<String> = self.notes.iter().map(|n| json_str(n)).collect();
        json_field(&mut out, 1, "notes", &json_array(&notes, 1), true);
        out.push('}');
        out
    }
}

/// JSON string literal with the escapes JSON requires.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `[ … ]` over pre-rendered element strings, pretty-printed at `indent`.
fn json_array(elements: &[String], indent: usize) -> String {
    if elements.is_empty() {
        return "[]".to_string();
    }
    let pad = "  ".repeat(indent + 1);
    let inner = elements
        .iter()
        .map(|e| format!("{pad}{e}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{inner}\n{}]", "  ".repeat(indent))
}

/// One `"key": value` line at `indent`.
fn json_field(out: &mut String, indent: usize, key: &str, value: &str, last: bool) {
    out.push_str(&"  ".repeat(indent));
    out.push_str(&json_str(key));
    out.push_str(": ");
    out.push_str(value);
    if !last {
        out.push(',');
    }
    out.push('\n');
}

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from string-ish headers.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            caption: caption.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers in table {:?}",
            self.caption
        );
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("-- {} --\n", self.caption);
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// JSON object for this table, pretty-printed at `indent`.
    fn to_json(&self, indent: usize) -> String {
        let mut out = String::from("{\n");
        json_field(&mut out, indent + 1, "caption", &json_str(&self.caption), false);
        let headers: Vec<String> = self.headers.iter().map(|h| json_str(h)).collect();
        json_field(&mut out, indent + 1, "headers", &json_array(&headers, indent + 1), false);
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| json_str(c)).collect();
                json_array(&cells, indent + 2)
            })
            .collect();
        json_field(&mut out, indent + 1, "rows", &json_array(&rows, indent + 1), true);
        out.push_str(&"  ".repeat(indent));
        out.push('}');
        out
    }
}

/// Formats an f64 with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an f64 with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["much-longer-name".into(), "2".into()]);
        let rendered = t.render();
        assert!(rendered.contains("demo"));
        let lines: Vec<&str> = rendered.lines().collect();
        // Header and rows share alignment width.
        assert_eq!(lines[1].find("value"), lines[3].rfind('1'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn result_round_trips_json() {
        let r = ExperimentResult {
            id: "E0".into(),
            title: "t".into(),
            claim: "c".into(),
            tables: vec![Table::new("x", &["h"])],
            notes: vec!["n".into()],
        };
        let json = r.to_json();
        assert!(json.contains("\"E0\""));
        assert!(r.render().contains("E0"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.123456), "0.123");
        assert_eq!(f1(12.34), "12.3");
    }
}
