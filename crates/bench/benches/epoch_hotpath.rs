//! Criterion benchmarks for the epoch hot path rebuilt in E27: borrowed
//! wire decode ([`OpView`]) vs the owning decode, the seal barrier
//! sequential vs parallel, and a full seeded epoch stream batched vs
//! pipelined. Each pair shares its input exactly, so the ratio between
//! the paired measurements is the cost of the old path (allocation,
//! the seal barrier, the plan/fan-out barrier) on this host.
//!
//! [`OpView`]: metaverse_gateway::op::OpView

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metaverse_gateway::op::{Op, OpView};
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_ledger::chain::{Chain, ChainConfig};
use metaverse_ledger::tx::{Transaction, TxPayload};

/// Owning decode vs the zero-copy view over the same wire bytes. The
/// `Propose` op is the allocation-heaviest frame (three strings); the
/// view borrows all of them from the input buffer.
fn bench_decode(c: &mut Criterion) {
    let op = Op::Propose {
        user: "user-00042".into(),
        proposal: 42,
        scope: "economy".into(),
        title: "Quadratic funding for plaza upkeep".into(),
    };
    let bytes = op.encode();
    c.bench_function("epoch_hotpath/decode_propose_owned", |b| {
        b.iter(|| Op::decode(black_box(&bytes)).expect("round-trip"))
    });
    c.bench_function("epoch_hotpath/decode_propose_view", |b| {
        b.iter(|| OpView::decode(black_box(&bytes)).expect("round-trip"))
    });
}

/// The seal barrier in isolation: the same 256-tx mempool drained with
/// one seal worker and with host-sized workers. Chains are rebuilt per
/// iteration (sealing consumes one-time Lamport keys), so the numbers
/// include keygen; the seq/par pair shares that cost exactly.
fn bench_seal(c: &mut Criterion) {
    let drain = |seal_workers: usize| {
        let mut chain = Chain::poa(
            &["v0", "v1", "v2", "v3"],
            ChainConfig {
                max_txs_per_block: 16,
                key_tree_depth: 4,
                seal_workers,
                ..ChainConfig::default()
            },
        );
        for i in 0..256 {
            chain
                .submit(Transaction::new(
                    format!("user{}", i % 31),
                    TxPayload::Note { text: format!("bench tx {i}") },
                ))
                .expect("fresh notes never collide");
        }
        chain.seal_all_profiled().expect("mempool drains")
    };
    c.bench_function("epoch_hotpath/seal_256_txs_seq", |b| {
        b.iter(|| black_box(drain(1)))
    });
    c.bench_function("epoch_hotpath/seal_256_txs_par", |b| {
        b.iter(|| black_box(drain(0)))
    });
}

/// A full seeded stream through the gateway at 4 shards: batched plan
/// loop (plan everything, then fan out) vs the pipelined plan loop
/// (stream ops to workers while they execute) with host-sized sealing.
/// Outputs are byte-identical — the determinism gate asserts that —
/// so this pair measures pure wall-clock.
fn bench_epoch_modes(c: &mut Criterion) {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users: 64,
        ops: 2_000,
        seed: 7,
        ..WorkloadConfig::default()
    });
    for (mode, pipeline, seal_workers) in
        [("batched", false, 1usize), ("pipelined", true, 0usize)]
    {
        c.bench_function(&format!("epoch_hotpath/drive_2k_ops_4_shards_{mode}"), |b| {
            b.iter(|| {
                let mut router = ShardRouter::new(
                    GatewayConfig::builder()
                        .shards(4)
                        .workers(4)
                        .pipeline(pipeline)
                        .seal_workers(seal_workers)
                        .telemetry(false)
                        .key_tree_depth(6)
                        .build(),
                );
                black_box(engine.drive(&mut router, 256))
            })
        });
    }
}

criterion_group!(benches, bench_decode, bench_seal, bench_epoch_modes);
criterion_main!(benches);
