//! Criterion benchmarks for social-graph construction and rumour
//! propagation (experiment E11's engine) across graph families.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use metaverse_social::graph::SocialGraph;
use metaverse_social::propagation::{spread, PropagationConfig, Rumor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/generate");
    for &n in &[500usize, 5000] {
        group.bench_with_input(BenchmarkId::new("small_world", n), &n, |b, &n| {
            b.iter_batched(
                || ChaCha8Rng::seed_from_u64(6),
                |mut rng| black_box(SocialGraph::small_world(n, 6, 0.1, &mut rng)),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("scale_free", n), &n, |b, &n| {
            b.iter_batched(
                || ChaCha8Rng::seed_from_u64(6),
                |mut rng| black_box(SocialGraph::scale_free(n, 3, &mut rng)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_spread(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation/spread");
    for &n in &[500usize, 5000] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let graph = SocialGraph::small_world(n, 6, 0.1, &mut rng);
        let rumor = Rumor { veracity: false, virality: 0.9 };
        let config = PropagationConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter_batched(
                || ChaCha8Rng::seed_from_u64(8),
                |mut rng| {
                    black_box(spread(graph, rumor, &[0], &config, &mut rng, |_, _| true))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_generators, bench_spread
}
criterion_main!(benches);
