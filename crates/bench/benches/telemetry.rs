//! Criterion benchmarks for the telemetry layer: the raw instruments
//! (counter, histogram, span, snapshot), the no-op handles a disabled
//! hub deals out, and the end-to-end overhead telemetry adds to an
//! instrumented platform operation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metaverse_core::platform::MetaversePlatform;
use metaverse_ledger::chain::ChainConfig;
use metaverse_telemetry::TelemetryHub;

fn bench_instruments(c: &mut Criterion) {
    let hub = TelemetryHub::new();
    let counter = hub.counter("bench.counter");
    c.bench_function("telemetry/counter_incr", |b| b.iter(|| counter.incr()));

    let noop = TelemetryHub::disabled().counter("bench.counter");
    c.bench_function("telemetry/counter_incr_disabled", |b| b.iter(|| noop.incr()));

    let hist = hub.histogram("bench.hist");
    c.bench_function("telemetry/histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(997);
            hist.record(black_box(v));
        })
    });
    c.bench_function("telemetry/span_time_once", |b| b.iter(|| hist.start_span().finish()));

    // A hub populated like the platform's: ~60 instruments.
    for i in 0..20 {
        hub.counter(&format!("bench.c{i}"));
        hub.gauge(&format!("bench.g{i}"));
        hub.histogram(&format!("bench.h{i}")).record(i);
    }
    c.bench_function("telemetry/snapshot_60_instruments", |b| {
        b.iter(|| black_box(hub.snapshot()))
    });
    let snap = hub.snapshot();
    c.bench_function("telemetry/snapshot_to_json", |b| b.iter(|| black_box(snap.to_json())));
}

fn bench_platform_overhead(c: &mut Criterion) {
    for (name, enabled) in [("on", true), ("off", false)] {
        let mut p = MetaversePlatform::builder()
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .validators(["validator-0"])
            .telemetry(enabled)
            .build();
        p.register_user("alice").expect("register");
        p.register_user("bob").expect("register");
        c.bench_function(&format!("telemetry/guarded_endorse_telemetry_{name}"), |b| {
            b.iter(|| black_box(p.endorse("alice", "bob")))
        });
    }
}

criterion_group!(benches, bench_instruments, bench_platform_overhead);
criterion_main!(benches);
