//! Criterion benchmarks for DAO voting: cast/tally cost per scheme and
//! membership size (the throughput side of experiment E7).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use metaverse_dao::dao::{Dao, DaoConfig};
use metaverse_dao::voting::{Choice, VotingScheme};

fn dao_with_members(scheme: VotingScheme, members: usize) -> Dao {
    let mut dao = Dao::new("bench", DaoConfig { scheme, ..DaoConfig::default() });
    for m in 0..members {
        dao.add_member(&format!("member-{m}")).unwrap();
    }
    dao
}

fn bench_cast(c: &mut Criterion) {
    let mut group = c.benchmark_group("dao/cast_full_round");
    for &members in &[100usize, 1000] {
        for scheme in [VotingScheme::OnePersonOneVote, VotingScheme::TokenWeighted] {
            group.bench_with_input(
                BenchmarkId::new(scheme.label(), members),
                &members,
                |b, &members| {
                    b.iter_batched(
                        || dao_with_members(scheme, members),
                        |mut dao| {
                            let id = dao.propose("member-0", "bench", 0).unwrap();
                            for m in 0..members {
                                dao.vote(&format!("member-{m}"), id, Choice::Yes, 0).unwrap();
                            }
                            black_box(dao.tally(id).unwrap())
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_tally_with_delegation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dao/tally_with_delegation");
    for &members in &[100usize, 1000] {
        // Half the members delegate in a chain to member-0, who votes.
        let mut dao = dao_with_members(VotingScheme::OnePersonOneVote, members);
        for m in 1..members / 2 {
            dao.set_delegate(&format!("member-{m}"), Some(&format!("member-{}", m - 1)))
                .unwrap();
        }
        let id = dao.propose("member-0", "bench", 0).unwrap();
        dao.vote("member-0", id, Choice::Yes, 0).unwrap();
        for m in members / 2..members {
            dao.vote(&format!("member-{m}"), id, Choice::No, 0).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(members), &dao, |b, dao| {
            b.iter(|| black_box(dao.tally(id).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cast, bench_tally_with_delegation
}
criterion_main!(benches);
