//! Criterion benchmarks for the resilience fabric (experiment E19's
//! engine): fault-injector lookups, guarded operations under a fault
//! plan with degradation on and off, and epoch commits that wait out a
//! rogue validator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use metaverse_core::platform::MetaversePlatform;
use metaverse_core::resilience::ResilienceConfig;
use metaverse_ledger::chain::ChainConfig;
use metaverse_resilience::{FaultKind, FaultPlan};

fn platform(resilient: bool, plan: FaultPlan) -> MetaversePlatform {
    let mut p = MetaversePlatform::builder()
        .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
        .validators(["validator-0"])
        .resilience(ResilienceConfig { enabled: resilient, ..ResilienceConfig::default() })
        .build();
    for u in ["alice", "bob", "carol", "mallory"] {
        p.register_user(u).expect("register");
    }
    p.install_fault_plan(plan);
    p
}

fn fault_plan(intensity: usize) -> FaultPlan {
    FaultPlan::random(
        9,
        1000,
        intensity,
        &["moderation", "privacy", "reputation", "decision-making", "assets"],
        &[],
    )
}

fn bench_injector_lookup(c: &mut Criterion) {
    let injector = fault_plan(8).injector();
    c.bench_function("resilience/injector_lookup_1000_ticks", |b| {
        b.iter(|| {
            let mut down = 0u32;
            for t in 0..1000u64 {
                for m in ["moderation", "privacy", "assets"] {
                    if injector.module_down(t, m) {
                        down += 1;
                    }
                }
            }
            black_box(down)
        })
    });
}

fn bench_guarded_reports(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilience/guarded_reports_200_ops");
    for &(label, resilient) in &[("resilient", true), ("baseline", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &resilient, |b, &resilient| {
            b.iter_batched(
                || platform(resilient, fault_plan(8)),
                |mut p| {
                    let raters = ["alice", "bob", "carol"];
                    for i in 0..200usize {
                        let _ = p.report(raters[i % raters.len()], "mallory");
                        p.advance_ticks(5);
                    }
                    black_box(p.resilience_stats())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_commit_through_rogue_window(c: &mut Criterion) {
    c.bench_function("resilience/commit_waits_out_rogue_validator", |b| {
        b.iter_batched(
            || {
                let plan = FaultPlan::new().schedule(
                    0,
                    50,
                    FaultKind::RogueValidator { validator: "validator-0".into() },
                );
                let mut p = platform(true, plan);
                p.report("alice", "mallory").expect("report");
                p
            },
            |mut p| black_box(p.commit_epoch().expect("resilient commit survives")),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_injector_lookup, bench_guarded_reports, bench_commit_through_rogue_window
}
criterion_main!(benches);
