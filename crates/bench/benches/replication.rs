//! Criterion benchmarks for the quorum-commit replication layer: raw
//! cluster replicate throughput (healthy and under failover), and full
//! gateway epochs with replication off vs on — the overhead a pure
//! observational overlay is allowed to add to the commit path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metaverse_gateway::op::Op;
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::Ingress;
use metaverse_ledger::Digest;
use metaverse_replication::{ReplicationCluster, ReplicationConfig};
use metaverse_resilience::{FaultKind, FaultPlan};

fn digest(height: u64) -> Digest {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&height.to_le_bytes());
    Digest(bytes)
}

fn bench_cluster(c: &mut Criterion) {
    // Healthy quorum commit: leader proposes, two followers ack.
    let mut cluster = ReplicationCluster::new(0, ReplicationConfig::default());
    let mut height = 0u64;
    c.bench_function("replication/healthy_quorum_commit", |b| {
        b.iter(|| {
            height += 1;
            cluster.replicate(black_box(height), digest(height), height).expect("quorum")
        })
    });

    // Every commit lands during a leader crash window: election on the
    // first faulted commit, then steady-state under the elected leader.
    let mut faulted = ReplicationCluster::new(0, ReplicationConfig::default());
    faulted.install_fault_plan(FaultPlan::new().schedule(
        0,
        u64::MAX,
        FaultKind::ValidatorCrash { validator: "s0-v0".into() },
    ));
    let mut fh = 0u64;
    c.bench_function("replication/quorum_commit_with_dead_leader", |b| {
        b.iter(|| {
            fh += 1;
            faulted.replicate(black_box(fh), digest(fh), fh).expect("quorum of survivors")
        })
    });
}

/// The overhead replication adds to a whole gateway epoch: the same
/// 64-endorsement epoch with replication off and on (3 validators per
/// shard, no faults).
fn bench_epoch_overhead(c: &mut Criterion) {
    for (mode, replication) in
        [("off", None), ("on", Some(ReplicationConfig::default()))]
    {
        c.bench_function(&format!("replication/epoch_64_endorsements_4_shards_{mode}"), |b| {
            let mut builder = GatewayConfig::builder().shards(4).telemetry(false);
            if let Some(replication) = replication {
                builder = builder.replication(replication);
            }
            let mut router = ShardRouter::new(builder.build());
            let users: Vec<String> = (0..64).map(|i| format!("user-{i:05}")).collect();
            for u in &users {
                router.ingress(Op::Register { user: u.clone() }).expect("register");
            }
            router.drain(8);
            b.iter(|| {
                for (i, u) in users.iter().enumerate() {
                    let subject = users[(i + 1) % users.len()].clone();
                    let _ = router.ingress(Op::Endorse { user: u.clone(), subject });
                }
                black_box(router.execute_epoch())
            })
        });
    }
}

criterion_group!(benches, bench_cluster, bench_epoch_overhead);
criterion_main!(benches);
