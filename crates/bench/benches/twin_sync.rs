//! Criterion benchmarks for digital-twin synchronization (experiment
//! E13's engine): per-step cost and attestation generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::{DigitalTwin, TwinState};

fn bench_sync_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("twins/sync_1000_ticks");
    for &interval in &[0u64, 50, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(interval), &interval, |b, &interval| {
            b.iter_batched(
                || {
                    (
                        DigitalTwin::new(1, "bench", "acme", 8),
                        SyncChannel::new(SyncConfig {
                            loss_rate: 0.1,
                            reconcile_interval: interval,
                            seed: 9,
                            ..SyncConfig::default()
                        }),
                    )
                },
                |(mut twin, mut channel)| black_box(channel.run(&mut twin, 1000)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_state_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("twins/state_digest");
    for &properties in &[4usize, 64, 1024] {
        let mut state = TwinState::zeros(properties);
        for p in 0..properties {
            state.apply(p, p as f64 * 0.5);
        }
        group.bench_with_input(BenchmarkId::from_parameter(properties), &state, |b, state| {
            b.iter(|| black_box(state.digest()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sync_run, bench_state_digest
}
criterion_main!(benches);
