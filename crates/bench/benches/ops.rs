//! Criterion benchmarks for the ops plane: the raw heat-window fold and
//! report render, the stage-latency profiler folding a trace burst, SLO
//! evaluation, full gateway epochs with the plane off vs on (the E28
//! overhead budget in the small), and stats-endpoint body rendering.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metaverse_gateway::op::{Op, StatsKind};
use metaverse_gateway::ops::OpsPlaneConfig;
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::Ingress;
use metaverse_telemetry::heat::REFUSAL_CLASS_COUNT;
use metaverse_telemetry::{
    EpochHeatSample, HeatWindow, ShardHeatSample, SloEngine, SloInput, SloKind, SloObjective,
    StageLatencyProfiler, TraceEvent, TraceStage,
};

fn sample(epoch: u64) -> EpochHeatSample {
    let shard = ShardHeatSample { routed: 64, executed: 60, failed: 4, queue_depth: 2 };
    EpochHeatSample {
        epoch,
        tick: epoch + 1,
        ticks: 1,
        admitted: 256,
        refused_by_class: [3; REFUSAL_CLASS_COUNT],
        dp_spent_micro: 1_000,
        escrow_enqueued: 12,
        escrow_depth: 4,
        settled: 10,
        requeued: 2,
        shards: vec![shard; 4],
    }
}

fn bench_heat_window(c: &mut Criterion) {
    // Steady state: the window is full, every fold also expires.
    let mut window = HeatWindow::new(64);
    let mut epoch = 0u64;
    c.bench_function("ops/heat_window_fold", |b| {
        b.iter(|| {
            epoch += 1;
            window.fold(black_box(sample(epoch)));
        })
    });
    c.bench_function("ops/heat_window_report_4_shards", |b| {
        b.iter(|| black_box(window.report()))
    });
    c.bench_function("ops/heat_report_to_json", |b| {
        let report = window.report();
        b.iter(|| black_box(report.to_json()))
    });
}

fn bench_profiler_and_slo(c: &mut Criterion) {
    c.bench_function("ops/profiler_fold_1k_events", |b| {
        let events: Vec<TraceEvent> = (0..1_000u64)
            .flat_map(|seq| {
                let shard = (seq % 4) as u32;
                [
                    TraceEvent {
                        seq,
                        epoch: 0,
                        tick: seq,
                        stage: TraceStage::Admitted { op: "endorse", shard },
                    },
                    TraceEvent {
                        seq,
                        epoch: 0,
                        tick: seq + 1,
                        stage: TraceStage::RoutedToShard { shard, waited_ticks: 0 },
                    },
                    TraceEvent {
                        seq,
                        epoch: 0,
                        tick: seq + 1,
                        stage: TraceStage::Executed { shard, ok: true },
                    },
                ]
            })
            .collect();
        b.iter(|| {
            let mut profiler = StageLatencyProfiler::new();
            for e in &events {
                profiler.fold(e);
            }
            black_box(profiler.report())
        })
    });

    let mut engine = SloEngine::new(vec![
        SloObjective { name: "admission_p99", kind: SloKind::AdmissionP99MaxTicks, max: 8 },
        SloObjective { name: "refusal_rate", kind: SloKind::RefusalRateMaxMilli, max: 100 },
    ]);
    let mut flip = 0u64;
    c.bench_function("ops/slo_evaluate", |b| {
        b.iter(|| {
            flip += 1;
            black_box(engine.evaluate(&SloInput {
                admission_p99_ticks: flip % 16,
                refusal_rate_milli: (flip * 37) % 200,
                dp_burn_micro_per_epoch: 0,
            }))
        })
    });
}

/// The E28 overhead budget in the small: the same 64-endorsement epoch
/// with the plane off and on (tracing on in both, so the plane's fold
/// is the only delta).
fn bench_epoch_overhead(c: &mut Criterion) {
    for (mode, plane) in [("off", None), ("on", Some(OpsPlaneConfig::default()))] {
        c.bench_function(&format!("ops/epoch_64_endorsements_4_shards_plane_{mode}"), |b| {
            let mut builder =
                GatewayConfig::builder().shards(4).telemetry(false).tracing(1 << 16);
            if let Some(config) = plane.clone() {
                builder = builder.ops_plane(config);
            }
            let mut router = ShardRouter::new(builder.build());
            let users: Vec<String> = (0..64).map(|i| format!("user-{i:05}")).collect();
            for u in &users {
                router.ingress(Op::Register { user: u.clone() }).expect("register");
            }
            router.drain(8);
            b.iter(|| {
                for (i, u) in users.iter().enumerate() {
                    let subject = users[(i + 1) % users.len()].clone();
                    let _ = router.ingress(Op::Endorse { user: u.clone(), subject });
                }
                black_box(router.execute_epoch());
            })
        });
    }
}

fn bench_stats_bodies(c: &mut Criterion) {
    let mut router = ShardRouter::new(
        GatewayConfig::builder()
            .shards(4)
            .tracing(1 << 14)
            .ops_plane(OpsPlaneConfig::default())
            .build(),
    );
    let users: Vec<String> = (0..64).map(|i| format!("user-{i:05}")).collect();
    for u in &users {
        router.ingress(Op::Register { user: u.clone() }).expect("register");
    }
    router.drain(8);
    for kind in StatsKind::ALL {
        c.bench_function(&format!("ops/stats_reply_{}", kind.label()), |b| {
            b.iter(|| black_box(router.stats_reply(kind)))
        });
    }
}

criterion_group!(
    benches,
    bench_heat_window,
    bench_profiler_and_slo,
    bench_epoch_overhead,
    bench_stats_bodies
);
criterion_main!(benches);
