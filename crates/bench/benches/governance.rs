//! Criterion benchmarks for the governance-at-scale hot paths: the
//! per-event PET filtering cost a sensor stream pays at the shard
//! boundary, a credit-budgeted quadratic tally over a full voter set,
//! and a severity-prioritised moderation queue drained through the
//! escalation ladder.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use metaverse_dao::dao::{Dao, DaoConfig};
use metaverse_dao::voting::{Choice, VotingScheme};
use metaverse_ledger::audit::SensorClass;
use metaverse_moderation::actions::EscalationLadder;
use metaverse_moderation::queue::{Report, ReportQueue, Severity};
use metaverse_privacy::{PetPipeline, SensorSample};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-event PET cost: the noise + quantize pipeline the gateway's
/// shard workers run on every admitted sensor event, at the one-value
/// samples the wire op carries and at a wider 16-channel sample.
fn bench_pet_per_event(c: &mut Criterion) {
    let pipeline = PetPipeline::new().noise(0.05).quantize(0.01);
    for (name, channels) in [("1ch", 1usize), ("16ch", 16usize)] {
        let sample = SensorSample {
            sensor: SensorClass::HeartRate,
            values: (0..channels).map(|i| 60.0 + i as f64).collect(),
            tick: 7,
        };
        c.bench_function(&format!("governance/pet_filter_event_{name}"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(0x9e26);
            b.iter(|| {
                let mut samples = vec![sample.clone()];
                pipeline.apply(&mut samples, &mut rng).expect("pet pipeline");
                black_box(samples)
            })
        });
    }
}

/// A full quadratic tally: one proposal, 64 voters each buying 3 votes
/// for 9 voice credits, closed and tallied. Fresh DAO per batch so the
/// proposal map and ballot history never accumulate across iterations.
fn bench_quadratic_tally(c: &mut Criterion) {
    const VOTERS: usize = 64;
    let names: Vec<String> = (0..VOTERS).map(|i| format!("voter-{i:03}")).collect();
    c.bench_function("governance/quadratic_tally_64_voters", |b| {
        b.iter_batched(
            || {
                let mut dao = Dao::new(
                    "bench",
                    DaoConfig {
                        scheme: VotingScheme::Quadratic,
                        initial_voice_credits: 1 << 20,
                        ..DaoConfig::default()
                    },
                );
                for name in &names {
                    dao.add_member(name).expect("member");
                }
                dao
            },
            |mut dao| {
                let id = dao.propose(&names[0], "quadratic storm", 0).expect("propose");
                for (i, name) in names.iter().enumerate() {
                    let choice = if i % 3 == 0 { Choice::No } else { Choice::Yes };
                    dao.vote_quadratic(name, id, choice, 3, 1).expect("vote");
                }
                black_box(dao.close(id, 101).expect("close"))
            },
            BatchSize::SmallInput,
        )
    });
}

/// Draining a flooded report queue: 192 reports across the three
/// severity lanes popped in priority order, every violation walked up
/// the escalation ladder, every fifth offender appealing, and the
/// accumulated ledger records drained at the end — the moderation
/// flood's per-epoch hot loop.
fn bench_moderation_queue_drain(c: &mut Criterion) {
    const PER_LANE: usize = 64;
    c.bench_function("governance/moderation_drain_192_reports", |b| {
        b.iter_batched(
            || {
                let mut queue = ReportQueue::new();
                let mut id = 0u64;
                for severity in [Severity::Low, Severity::Medium, Severity::High] {
                    for i in 0..PER_LANE {
                        id += 1;
                        queue.push(Report {
                            id,
                            subject: format!("subject-{:02}", i % 16),
                            severity,
                            submitted_at: id,
                            violation: i % 2 == 0,
                        });
                    }
                }
                (queue, EscalationLadder::new())
            },
            |(mut queue, mut ladder)| {
                let mut handled = 0u64;
                while let Some(report) = queue.pop() {
                    handled += 1;
                    if report.violation {
                        let action = ladder.punish(&report.subject, "bench-authority");
                        if handled.is_multiple_of(5) {
                            black_box(ladder.appeal(&report.subject, "bench-authority", true));
                        }
                        black_box(action);
                    }
                }
                black_box((handled, ladder.drain_ledger_records()))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_pet_per_event,
    bench_quadratic_tally,
    bench_moderation_queue_drain
);
criterion_main!(benches);
