//! Criterion benchmarks for the safety simulator: steering cost per
//! step and full-walk simulation throughput (experiment E5's engine).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use metaverse_safety::redirect::{simulate_walk, steered_heading, RedirectionConfig};
use metaverse_safety::room::PhysicalRoom;
use metaverse_safety::walker::Walker;
use metaverse_world::geometry::Vec2;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_steering_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("safety/steered_heading");
    for &obstacles in &[0usize, 4, 16] {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let room = PhysicalRoom::furnished(8.0, 8.0, obstacles, &mut rng);
        let config = RedirectionConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(obstacles), &room, |b, room| {
            let mut walker = Walker::new(Vec2::new(1.0, 1.0));
            walker.goal = Vec2::new(100.0, 100.0);
            b.iter(|| black_box(steered_heading(&mut walker, room, &config)))
        });
    }
    group.finish();
}

fn bench_full_walk(c: &mut Criterion) {
    let room = PhysicalRoom::empty(5.0, 5.0);
    let config = RedirectionConfig::default();
    c.bench_function("safety/simulate_walk_100m", |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(5),
            |mut rng| black_box(simulate_walk(&room, &config, 100.0, &mut rng)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_steering_step, bench_full_walk
}
criterion_main!(benches);
