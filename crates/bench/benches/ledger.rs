//! Criterion benchmarks for the ledger substrate: hashing, Merkle
//! proofs, hash-based signatures, block sealing, and full-chain audit
//! verification (the cost side of experiment E6).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use metaverse_ledger::chain::{Chain, ChainConfig};
use metaverse_ledger::crypto::lamport::{KeyTree, TreeSignature};
use metaverse_ledger::crypto::sha256::sha256;
use metaverse_ledger::merkle::MerkleTree;
use metaverse_ledger::tx::{Transaction, TxPayload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)))
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for n in [16usize, 256, 4096] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &leaves, |b, leaves| {
            b.iter(|| MerkleTree::from_leaves(black_box(leaves.iter())))
        });
        let tree = MerkleTree::from_leaves(leaves.iter());
        group.bench_with_input(BenchmarkId::new("prove+verify", n), &tree, |b, tree| {
            b.iter(|| {
                let proof = tree.prove(black_box(n / 2)).unwrap();
                proof.verify(&tree.root(), format!("leaf-{}", n / 2).as_bytes())
            })
        });
    }
    group.finish();
}

fn bench_lamport(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let msg = sha256(b"benchmark message");

    // One-time keys are consumed by signing, so each iteration gets a
    // fresh small tree from the (untimed) setup closure.
    c.bench_function("lamport/tree_sign", |b| {
        b.iter_batched(
            || KeyTree::new(&mut rng.clone(), 1),
            |mut tree| tree.sign(black_box(&msg)).expect("capacity"),
            criterion::BatchSize::SmallInput,
        )
    });
    let mut tree2 = KeyTree::new(&mut rng, 4);
    let sig = tree2.sign(&msg).unwrap();
    let root2 = tree2.root();
    c.bench_function("lamport/tree_verify", |b| {
        b.iter(|| TreeSignature::verify(black_box(&root2), black_box(&msg), black_box(&sig)))
    });
}

fn bench_chain(c: &mut Criterion) {
    c.bench_function("chain/seal_block_64tx", |b| {
        b.iter_batched(
            || {
                let mut chain = Chain::poa_single(
                    "bench",
                    ChainConfig { key_tree_depth: 10, ..ChainConfig::default() },
                );
                for i in 0..64 {
                    chain
                        .submit(Transaction::new(
                            "bench",
                            TxPayload::Note { text: format!("tx-{i}") },
                        ))
                        .unwrap();
                }
                chain
            },
            |mut chain| chain.seal_block().unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });

    // Full-audit verification cost vs chain length.
    let mut group = c.benchmark_group("chain/verify_integrity");
    for blocks in [8u64, 32] {
        let mut chain = Chain::poa_single(
            "bench",
            ChainConfig { key_tree_depth: 8, ..ChainConfig::default() },
        );
        for bi in 0..blocks {
            for i in 0..16 {
                chain
                    .submit(Transaction::new(
                        "bench",
                        TxPayload::Note { text: format!("b{bi}-t{i}") },
                    ))
                    .unwrap();
            }
            chain.seal_block().unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &chain, |b, chain| {
            b.iter(|| chain.verify_integrity().unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_merkle, bench_lamport, bench_chain
}
criterion_main!(benches);
