//! Criterion benchmarks for the causal-tracing layer: raw flight
//! recorder record/evict throughput, the disabled recorder's no-op
//! path, full gateway epochs with tracing off vs on (the overhead the
//! E23 acceptance bound constrains), and exporter rendering.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metaverse_gateway::op::Op;
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::Ingress;
use metaverse_telemetry::{export, FlightRecorder, TraceEvent, TraceStage};

fn event(seq: u64) -> TraceEvent {
    TraceEvent {
        seq,
        epoch: seq >> 6,
        tick: seq,
        stage: TraceStage::Executed { shard: (seq % 4) as u32, ok: true },
    }
}

fn bench_recorder(c: &mut Criterion) {
    // Steady-state ring at capacity: every record also evicts.
    let mut recorder = FlightRecorder::new(4096);
    let mut seq = 0u64;
    c.bench_function("tracing/recorder_record_evict", |b| {
        b.iter(|| {
            seq += 1;
            recorder.record(black_box(event(seq)));
        })
    });

    // The disabled recorder must be a true no-op (no ring, no counts).
    let mut disabled = FlightRecorder::disabled();
    c.bench_function("tracing/recorder_disabled_record", |b| {
        b.iter(|| {
            seq += 1;
            disabled.record(black_box(event(seq)));
        })
    });
}

/// The number E23's acceptance bound constrains, measured in the
/// small: the same 64-endorsement epoch with the recorder off and on.
fn bench_epoch_overhead(c: &mut Criterion) {
    for (mode, capacity) in [("disabled", 0usize), ("enabled", 1 << 16)] {
        c.bench_function(&format!("tracing/epoch_64_endorsements_4_shards_{mode}"), |b| {
            let mut router = ShardRouter::new(
                GatewayConfig::builder().shards(4).telemetry(false).tracing(capacity).build(),
            );
            let users: Vec<String> = (0..64).map(|i| format!("user-{i:05}")).collect();
            for u in &users {
                router.ingress(Op::Register { user: u.clone() }).expect("register");
            }
            router.drain(8);
            b.iter(|| {
                for (i, u) in users.iter().enumerate() {
                    let subject = users[(i + 1) % users.len()].clone();
                    let _ = router.ingress(Op::Endorse { user: u.clone(), subject });
                }
                black_box(router.execute_epoch());
            })
        });
    }
}

fn bench_exporters(c: &mut Criterion) {
    let mut recorder = FlightRecorder::new(4096);
    for seq in 0..4096u64 {
        recorder.record(event(seq));
    }
    c.bench_function("tracing/export_jsonl_4096_events", |b| {
        b.iter(|| black_box(export::trace_jsonl(recorder.events())))
    });
}

criterion_group!(benches, bench_recorder, bench_epoch_overhead, bench_exporters);
criterion_main!(benches);
