//! Criterion benchmarks for the PET pipeline: per-stage and composed
//! costs over realistic stream sizes (the on-device budget side of
//! experiment E1 — PETs must be cheap enough to run on a headset).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use metaverse_privacy::pets::PetPipeline;
use metaverse_privacy::sensor::UserProfile;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_stages(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let user = UserProfile::random("bench", &mut rng);

    let mut group = c.benchmark_group("pets/stage");
    for &n in &[200usize, 2000, 20_000] {
        let stream = user.gaze_stream(n, &mut rng);
        for (label, pipe) in [
            ("noise", PetPipeline::new().noise(0.5)),
            ("quantize", PetPipeline::new().quantize(0.25)),
            ("subsample", PetPipeline::new().subsample(4)),
            ("aggregate", PetPipeline::new().aggregate(20)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &(&stream, &pipe),
                |b, (stream, pipe)| {
                    b.iter_batched(
                        || (*stream).clone(),
                        |mut s| {
                            pipe.apply(&mut s, &mut rng.clone()).unwrap();
                            black_box(s)
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let user = UserProfile::random("bench", &mut rng);
    let stream = user.gaze_stream(20_000, &mut rng);
    let pipe = PetPipeline::new().noise(0.5).quantize(0.25).subsample(2).aggregate(10);

    c.bench_function("pets/full_pipeline_20k", |b| {
        b.iter_batched(
            || stream.clone(),
            |mut s| {
                pipe.apply(&mut s, &mut rng.clone()).unwrap();
                black_box(s)
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stages, bench_full_pipeline
}
criterion_main!(benches);
