//! Criterion benchmarks for the network front door: streaming frame
//! decoding at adversarial chunk sizes, the full serve loop over a
//! simulated fleet, and the admission journal's binary codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_net::{frame, sim_clients, AdmissionJournal, FrameDecoder, NetServer, NetServerConfig, DEFAULT_MAX_FRAME};
use metaverse_resilience::FaultPlan;

fn router(shards: usize) -> ShardRouter {
    ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .telemetry(false)
            .rate_limit(RateLimit { burst: 256, milli_per_tick: 256_000 })
            .mailbox_capacity(4096)
            .key_tree_depth(5)
            .build(),
    )
}

fn engine(users: usize, ops: usize) -> WorkloadEngine {
    WorkloadEngine::new(WorkloadConfig { users, ops, seed: 7, ..WorkloadConfig::default() })
}

/// A framed byte stream of the seeded workload, for decoder benches.
fn framed_stream(ops: usize) -> Vec<u8> {
    let mut stream = Vec::new();
    for op in engine(16, ops).generate() {
        stream.extend_from_slice(&frame(&op.encode()));
    }
    stream
}

fn bench_frame_decoder(c: &mut Criterion) {
    let stream = framed_stream(1_000);
    for (label, chunk) in [("1b", 1usize), ("64b", 64), ("4k", 4096)] {
        c.bench_function(&format!("net/decode_1k_frames_chunk_{label}"), |b| {
            b.iter(|| {
                let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
                let mut out = Vec::new();
                for piece in stream.chunks(chunk) {
                    decoder.feed(black_box(piece), &mut out).expect("valid stream");
                }
                black_box(out.len())
            })
        });
    }
}

fn bench_serve_loop(c: &mut Criterion) {
    for conns in [64usize, 256] {
        c.bench_function(&format!("net/serve_fleet_{conns}_conns"), |b| {
            let engine = engine(conns, conns * 3);
            b.iter(|| {
                let mut server = NetServer::new(
                    router(2),
                    NetServerConfig { ops_per_epoch: 512, ..NetServerConfig::default() },
                );
                for stream in sim_clients(&engine, conns, 7, 512, &FaultPlan::new()) {
                    server.accept(stream);
                }
                black_box(server.run_to_completion())
            })
        });
    }
}

fn bench_journal_codec(c: &mut Criterion) {
    // One served fleet's journal, used as the codec corpus.
    let engine = engine(128, 512);
    let mut server = NetServer::new(
        router(2),
        NetServerConfig { ops_per_epoch: 256, ..NetServerConfig::default() },
    );
    for stream in sim_clients(&engine, 64, 7, 512, &FaultPlan::new()) {
        server.accept(stream);
    }
    server.run_to_completion();
    let (_, journal) = server.into_parts();
    let bytes = journal.to_bytes();
    c.bench_function("net/journal_encode", |b| b.iter(|| black_box(journal.to_bytes())));
    c.bench_function("net/journal_decode", |b| {
        b.iter(|| AdmissionJournal::from_bytes(black_box(&bytes)).expect("round-trip"))
    });
}

criterion_group!(benches, bench_frame_decoder, bench_serve_loop, bench_journal_codec);
criterion_main!(benches);
