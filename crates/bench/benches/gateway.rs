//! Criterion benchmarks for the sharded session gateway: wire codec
//! round-trips, admission (token bucket + mailbox), epoch execution at
//! several shard counts, and full seeded workload replays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metaverse_gateway::op::Op;
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::Ingress;
use metaverse_gateway::session::{RateLimit, Session, SessionConfig};
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};

fn bench_wire_codec(c: &mut Criterion) {
    let op = Op::Mint {
        user: "user-00042".into(),
        asset: 42,
        uri: "meta://gallery/42".into(),
        quality: 0.875,
    };
    let bytes = op.encode();
    c.bench_function("gateway/wire_encode_mint", |b| b.iter(|| black_box(op.encode())));
    c.bench_function("gateway/wire_decode_mint", |b| {
        b.iter(|| Op::decode(black_box(&bytes)).expect("round-trip"))
    });
}

fn bench_admission(c: &mut Criterion) {
    // An effectively unlimited bucket: measures the bookkeeping, not
    // the refusals.
    let config = SessionConfig {
        rate: RateLimit { burst: 1 << 20, milli_per_tick: 1 << 30 },
        mailbox_capacity: usize::MAX >> 1,
    };
    let mut session = Session::new("alice", 0, config);
    let op = Op::TwinSync { user: "alice".into(), property: 3, delta: 0.25 };
    let mut seq = 0u64;
    c.bench_function("gateway/session_offer_drain", |b| {
        b.iter(|| {
            seq += 1;
            session.offer(seq, op.clone(), seq).expect("admitted");
            if seq.is_multiple_of(64) {
                black_box(session.drain());
            }
        })
    });
}

fn bench_epoch_execution(c: &mut Criterion) {
    for shards in [1usize, 4, 8] {
        c.bench_function(&format!("gateway/epoch_64_endorsements_{shards}_shards"), |b| {
            let mut router =
                ShardRouter::new(GatewayConfig::builder().shards(shards).telemetry(false).build());
            let users: Vec<String> = (0..64).map(|i| format!("user-{i:05}")).collect();
            for u in &users {
                router.ingress(Op::Register { user: u.clone() }).expect("register");
            }
            router.drain(8);
            b.iter(|| {
                for (i, u) in users.iter().enumerate() {
                    let subject = users[(i + 1) % users.len()].clone();
                    let _ = router.ingress(Op::Endorse { user: u.clone(), subject });
                }
                black_box(router.execute_epoch());
            })
        });
    }
}

/// Pairwise sequential-vs-parallel epoch execution: the same per-epoch
/// op mix at 4 and 8 shards, with the per-shard phase pinned to one
/// worker and then fanned out one worker per shard. The ratio between
/// the paired measurements is the thread-level speedup on this host
/// (bounded by its core count); results are identical either way.
fn bench_parallel_epoch(c: &mut Criterion) {
    for shards in [4usize, 8] {
        for (mode, workers) in [("seq", 1usize), ("par", shards)] {
            c.bench_function(
                &format!("gateway/epoch_64_endorsements_{shards}_shards_{mode}"),
                |b| {
                    let mut router = ShardRouter::new(
                        GatewayConfig::builder()
                            .shards(shards)
                            .workers(workers)
                            .telemetry(false)
                            .build(),
                    );
                    let users: Vec<String> =
                        (0..64).map(|i| format!("user-{i:05}")).collect();
                    for u in &users {
                        router.ingress(Op::Register { user: u.clone() }).expect("register");
                    }
                    router.drain(8);
                    b.iter(|| {
                        for (i, u) in users.iter().enumerate() {
                            let subject = users[(i + 1) % users.len()].clone();
                            let _ = router.ingress(Op::Endorse { user: u.clone(), subject });
                        }
                        black_box(router.execute_epoch());
                    })
                },
            );
        }
    }
}

fn bench_workload_replay(c: &mut Criterion) {
    let config = WorkloadConfig { users: 64, ops: 2_000, seed: 7, ..WorkloadConfig::default() };
    let engine = WorkloadEngine::new(config.clone());
    c.bench_function("gateway/workload_generate_2k_ops", |b| {
        b.iter(|| black_box(engine.generate()))
    });
    for shards in [1usize, 8] {
        c.bench_function(&format!("gateway/workload_drive_2k_ops_{shards}_shards"), |b| {
            b.iter(|| {
                let mut router = ShardRouter::new(
                    GatewayConfig::builder().shards(shards).telemetry(false).build(),
                );
                black_box(engine.drive(&mut router, 256))
            })
        });
    }
}

criterion_group!(
    benches,
    bench_wire_codec,
    bench_admission,
    bench_epoch_execution,
    bench_parallel_epoch,
    bench_workload_replay
);
criterion_main!(benches);
