//! The metric-name hygiene gate: every instrument a *live* platform or
//! gateway hub registers must be canonical — either a fixed name from
//! `metaverse_telemetry::names` or a member of one of its documented
//! families (`ops.*`, `module.*`, `breaker.*`, `gateway.shard.*`).
//! A typo'd or ad-hoc name registered anywhere in core, gateway, or
//! telemetry fails here, before a dashboard ever queries it. The gate
//! also pins the exporter side: rendered Prometheus output must be
//! well-formed line-by-line (sanitized names, escaped label values),
//! whatever the hub contained.

use metaverse_core::platform::MetaversePlatform;
use metaverse_gateway::op::Op;
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::Ingress;
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_ledger::chain::ChainConfig;
use metaverse_resilience::RetryPolicy;
use metaverse_telemetry::{export, names, TelemetrySnapshot};
use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::DigitalTwin;

fn assert_canonical(snapshot: &TelemetrySnapshot, source: &str) {
    let all = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys());
    let mut checked = 0usize;
    for name in all {
        assert!(
            names::is_canonical(name),
            "{source} registered non-canonical metric name {name:?} — add it to \
             metaverse_telemetry::names (or fix the typo)"
        );
        checked += 1;
    }
    assert!(checked > 0, "{source} snapshot was empty — the gate checked nothing");
}

/// A telemetry-enabled platform driven through every instrumented
/// subsystem: governance, reputation, assets, privacy, twins sync, and
/// epoch commits.
fn driven_platform_snapshot() -> TelemetrySnapshot {
    let mut p = MetaversePlatform::builder()
        .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
        .validators(["validator-0"])
        .telemetry(true)
        .build();
    for u in ["alice", "bob", "carol"] {
        p.register_user(u).expect("fresh platform registers");
    }
    let id = p.propose("root", "alice", "hygiene").expect("propose");
    let _ = p.vote("root", "bob", id, true);
    let _ = p.endorse("alice", "bob");
    let _ = p.report("carol", "bob");
    if let Ok(asset) = p.mint_asset("alice", "meta://art/0", b"pixels", 0.8) {
        let _ = p.list_asset("alice", asset, 50);
        p.deposit("bob", 100);
        let _ = p.buy_asset("bob", asset);
    }
    // A lossy twins channel reporting into the same hub exercises the
    // twins.sync.* names.
    let mut twin = DigitalTwin::new(1, "statue", "museum", 4);
    let mut channel = SyncChannel::new(SyncConfig {
        loss_rate: 0.5,
        dup_rate: 0.2,
        reconcile_interval: 5,
        seed: 7,
        retry: Some(RetryPolicy::default()),
    });
    channel.attach_telemetry(p.telemetry());
    for i in 0..64 {
        channel.step(&mut twin, i % 4, 0.25);
        p.advance_ticks(1);
    }
    p.commit_epoch().expect("commit");
    p.telemetry_snapshot()
}

/// A traced gateway driven by a seeded workload, including at least one
/// admission refusal so the rejection counters register too.
fn driven_gateway_snapshot() -> TelemetrySnapshot {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users: 16,
        ops: 400,
        seed: 11,
        ..WorkloadConfig::default()
    });
    let mut router = ShardRouter::new(
        GatewayConfig::builder().shards(2).tracing(1 << 12).key_tree_depth(5).build(),
    );
    engine.drive(&mut router, 64);
    let _ = router.ingress(Op::Endorse { user: "nobody".into(), subject: "alice".into() });
    router.telemetry_snapshot()
}

#[test]
fn every_live_platform_metric_name_is_canonical() {
    assert_canonical(&driven_platform_snapshot(), "core platform");
}

#[test]
fn every_live_gateway_metric_name_is_canonical() {
    assert_canonical(&driven_gateway_snapshot(), "gateway");
}

/// Whatever the hub held, the rendered exposition must be well-formed:
/// `# HELP`/`# TYPE` headers, then `name{labels} value` samples whose
/// names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` and whose label
/// values have quotes/backslashes/newlines escaped (no raw newline can
/// survive inside a label, so line-by-line validation is sound).
#[test]
fn prometheus_rendering_of_live_hubs_is_well_formed() {
    for snapshot in [driven_platform_snapshot(), driven_gateway_snapshot()] {
        let text = export::prometheus_labeled(&snapshot, &[("source", "hygiene\"test\\")]);
        assert!(!text.is_empty());
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP line has text");
                assert_valid_name(name, line);
                assert!(!help.trim().is_empty(), "empty HELP text in {line:?}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE line has a kind");
                assert_valid_name(name, line);
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "unknown TYPE kind in {line:?}"
                );
                continue;
            }
            let name_end = line.find(['{', ' ']).expect("sample line has a name");
            assert_valid_name(&line[..name_end], line);
            let value = line.rsplit(' ').next().expect("sample line has a value");
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable sample value in {line:?}"
            );
        }
    }
}

fn assert_valid_name(name: &str, line: &str) {
    let mut chars = name.chars();
    let first = chars.next().expect("metric names are non-empty");
    assert!(
        (first.is_ascii_alphabetic() || first == '_' || first == ':')
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid exposition metric name {name:?} in {line:?}"
    );
}
