//! Property-based tests for moderation invariants.

use metaverse_moderation::actions::{EscalationLadder, ModAction};
use metaverse_moderation::pipeline::{ModerationPipeline, PipelineConfig};
use metaverse_moderation::queue::{Report, ReportQueue, Severity};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_severity() -> impl Strategy<Value = Severity> {
    prop_oneof![Just(Severity::Low), Just(Severity::Medium), Just(Severity::High)]
}

proptest! {
    /// Queue conservation: everything pushed comes out exactly once, in
    /// severity-then-FIFO order.
    #[test]
    fn queue_conserves_and_orders(
        reports in proptest::collection::vec(arb_severity(), 0..60),
    ) {
        let mut queue = ReportQueue::new();
        for (i, severity) in reports.iter().enumerate() {
            queue.push(Report {
                id: i as u64,
                subject: format!("s{i}"),
                severity: *severity,
                submitted_at: i as u64,
                violation: true,
            });
        }
        prop_assert_eq!(queue.len(), reports.len());
        let mut drained = Vec::new();
        while let Some(r) = queue.pop() {
            drained.push(r);
        }
        prop_assert_eq!(drained.len(), reports.len());
        // Order: non-increasing severity; FIFO (ascending id) within a
        // severity class.
        for w in drained.windows(2) {
            prop_assert!(w[0].severity >= w[1].severity);
            if w[0].severity == w[1].severity {
                prop_assert!(w[0].id < w[1].id);
            }
        }
    }

    /// Escalation is monotone per offender: the prescribed action never
    /// de-escalates as offenses accumulate.
    #[test]
    fn escalation_monotone(offenses in 1u32..50) {
        let mut ladder = EscalationLadder::new();
        let mut last = ModAction::Warn;
        for _ in 0..offenses {
            let action = ladder.punish("x", "m");
            prop_assert!(action >= last, "{action:?} after {last:?}");
            last = action;
        }
        prop_assert_eq!(ladder.offenses("x"), offenses);
        prop_assert_eq!(ladder.drain_ledger_records().len(), offenses as usize);
    }

    /// Pipeline accounting: resolved + backlog == arrivals (nothing is
    /// lost or duplicated), for any configuration.
    #[test]
    fn pipeline_conserves_reports(
        community in 100usize..3000,
        moderators in 1usize..10,
        coverage in 0.0f64..1.0,
        ticks in 10u64..80,
        seed in any::<u64>(),
    ) {
        let mut pipeline = ModerationPipeline::new(PipelineConfig {
            community_size: community,
            moderators,
            automation_coverage: coverage,
            ..PipelineConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let series = pipeline.run(ticks, &mut rng);
        let arrivals: u64 = series.iter().map(|s| s.arrivals as u64).sum();
        let resolved = pipeline.total_resolved();
        let backlog = pipeline.backlog() as u64;
        prop_assert_eq!(arrivals, resolved + backlog);
        // Errors only come from automation.
        if coverage == 0.0 {
            prop_assert_eq!(pipeline.auto_errors(), 0);
        }
        prop_assert!(pipeline.auto_errors() <= resolved);
    }
}
