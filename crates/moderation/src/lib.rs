//! # metaverse-moderation
//!
//! Content / behaviour moderation for `metaverse-kit`, implementing the
//! §III observations about platform governance:
//!
//! > "Online communities present several challenges when these grow in
//! > size and moderators (initially other members of the community)
//! > cannot keep up with the demand of comments and misbehaviour of the
//! > community members. In the case of social networks such as Facebook
//! > and Twitter, automation tools have been included to control
//! > misbehaviour (e.g., banning inappropriate posts). These platforms
//! > also rely on the report of other members."
//!
//! and the Minecraft study's distinction between punitive and preventive
//! tooling (§III-D).
//!
//! Components:
//!
//! * [`queue`] — severity-prioritised report queues with ground truth
//!   for measuring moderation errors.
//! * [`pipeline`] — the arrival/automation/human-capacity dynamics whose
//!   backlog behaviour experiment E8 sweeps.
//! * [`actions`] — the punitive escalation ladder and preventive
//!   rate-limits, with ledger-record export.
//! * [`crossmod`] — the cross-community moderation ensemble of the
//!   paper's reference [23] (Crossmod): borrowed norms with auditable
//!   agreement scores.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod crossmod;
pub mod pipeline;
pub mod queue;

pub use actions::{AppealVerdict, EscalationLadder, ModAction, PreventiveConfig};
pub use crossmod::{CommunityNorms, ContentFeatures, CrossModEnsemble, EnsembleDecision};
pub use pipeline::{ModerationPipeline, PipelineConfig, TickStats};
pub use queue::{Report, ReportQueue, Severity};
