//! Severity-prioritised report queues.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Report severity, highest handled first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Spam, minor nuisance.
    Low,
    /// Harassment, scam attempts.
    Medium,
    /// Safety-relevant: threats, doxxing, CSAM-adjacent.
    High,
}

/// A filed report about an account or content item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Unique id.
    pub id: u64,
    /// Reported account.
    pub subject: String,
    /// Claimed severity.
    pub severity: Severity,
    /// Tick the report was filed.
    pub submitted_at: u64,
    /// Ground truth: whether the report describes a real violation.
    /// Present only in simulation; real systems discover this by review.
    pub violation: bool,
}

/// A priority queue of reports: High before Medium before Low, FIFO
/// within a severity class.
#[derive(Debug, Default)]
pub struct ReportQueue {
    lanes: [VecDeque<Report>; 3],
}

impl ReportQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn lane(severity: Severity) -> usize {
        match severity {
            Severity::High => 0,
            Severity::Medium => 1,
            Severity::Low => 2,
        }
    }

    /// Enqueues a report.
    pub fn push(&mut self, report: Report) {
        self.lanes[Self::lane(report.severity)].push_back(report);
    }

    /// Dequeues the highest-priority, oldest report.
    pub fn pop(&mut self) -> Option<Report> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }

    /// Reports currently waiting.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// True when no reports wait.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Age (in ticks) of the oldest waiting report at `now`.
    pub fn oldest_age(&self, now: u64) -> Option<u64> {
        self.lanes
            .iter()
            .flat_map(|lane| lane.iter())
            .map(|r| now.saturating_sub(r.submitted_at))
            .max()
    }

    /// Waiting count per severity `(high, medium, low)`.
    pub fn lane_depths(&self) -> (usize, usize, usize) {
        (self.lanes[0].len(), self.lanes[1].len(), self.lanes[2].len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: u64, severity: Severity, at: u64) -> Report {
        Report { id, subject: format!("s{id}"), severity, submitted_at: at, violation: true }
    }

    #[test]
    fn priority_ordering() {
        let mut q = ReportQueue::new();
        q.push(report(1, Severity::Low, 0));
        q.push(report(2, Severity::High, 1));
        q.push(report(3, Severity::Medium, 2));
        q.push(report(4, Severity::High, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.id).collect();
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    fn fifo_within_severity() {
        let mut q = ReportQueue::new();
        q.push(report(1, Severity::Medium, 0));
        q.push(report(2, Severity::Medium, 1));
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ages_and_depths() {
        let mut q = ReportQueue::new();
        assert!(q.oldest_age(10).is_none());
        q.push(report(1, Severity::Low, 2));
        q.push(report(2, Severity::High, 8));
        assert_eq!(q.oldest_age(10), Some(8));
        assert_eq!(q.lane_depths(), (1, 0, 1));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
