//! Cross-community moderation ensemble, after Crossmod
//! (Chandrasekharan et al., CSCW 2019 — the paper's reference [23]).
//!
//! The idea the paper imports: a new or under-staffed community can
//! borrow moderation judgment from *other* communities — an ensemble of
//! per-community norm classifiers votes on each content item, and the
//! agreement level becomes a confidence score. High-confidence items are
//! auto-actioned; the grey zone goes to the human queue. This is the
//! "AI-based and cross-modality" moderation §IV-A asks for, with the
//! auditable confidence scores §IV-C demands.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A content item described by interpretable feature scores in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentFeatures {
    /// Toxicity of the language.
    pub toxicity: f64,
    /// Spamminess (repetition, link density).
    pub spam: f64,
    /// Sexual-content score.
    pub sexual: f64,
}

impl ContentFeatures {
    /// Samples features for a violating item: one dominant axis high.
    pub fn violating<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let axis = rng.gen_range(0..3);
        let hi = rng.gen_range(0.7..1.0);
        let mut lo = || rng.gen_range(0.0..0.4);
        match axis {
            0 => ContentFeatures { toxicity: hi, spam: lo(), sexual: lo() },
            1 => ContentFeatures { toxicity: lo(), spam: hi, sexual: lo() },
            _ => ContentFeatures { toxicity: lo(), spam: lo(), sexual: hi },
        }
    }

    /// Samples features for a benign item: all axes low.
    pub fn benign<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ContentFeatures {
            toxicity: rng.gen_range(0.0..0.45),
            spam: rng.gen_range(0.0..0.45),
            sexual: rng.gen_range(0.0..0.45),
        }
    }
}

/// One community's norms: per-axis removal thresholds.
///
/// A strict community removes at lower scores; a permissive one
/// tolerates more. `f64::INFINITY` disables an axis (e.g. an adult
/// community not policing sexual content).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityNorms {
    /// Community name.
    pub name: String,
    /// Toxicity removal threshold.
    pub toxicity_threshold: f64,
    /// Spam removal threshold.
    pub spam_threshold: f64,
    /// Sexual-content removal threshold.
    pub sexual_threshold: f64,
}

impl CommunityNorms {
    /// A middle-of-the-road community.
    pub fn standard(name: impl Into<String>) -> Self {
        CommunityNorms {
            name: name.into(),
            toxicity_threshold: 0.6,
            spam_threshold: 0.6,
            sexual_threshold: 0.6,
        }
    }

    /// Whether this community's norms would remove the item.
    pub fn would_remove(&self, item: &ContentFeatures) -> bool {
        item.toxicity >= self.toxicity_threshold
            || item.spam >= self.spam_threshold
            || item.sexual >= self.sexual_threshold
    }
}

/// What the ensemble recommends for an item.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnsembleDecision {
    /// Confident removal.
    Remove {
        /// Fraction of communities agreeing.
        agreement: f64,
    },
    /// Confident keep.
    Keep {
        /// Fraction of communities agreeing (on keeping).
        agreement: f64,
    },
    /// Grey zone: route to human moderators.
    Escalate {
        /// Fraction of communities voting remove.
        remove_votes: f64,
    },
}

/// The cross-community ensemble.
#[derive(Debug, Default)]
pub struct CrossModEnsemble {
    communities: Vec<CommunityNorms>,
    /// Agreement above this fraction auto-actions the item.
    pub confidence_threshold: f64,
}

impl CrossModEnsemble {
    /// Creates an ensemble with the given confidence bar (Crossmod used
    /// ≈0.85 agreement in production).
    pub fn new(confidence_threshold: f64) -> Self {
        CrossModEnsemble {
            communities: Vec::new(),
            confidence_threshold: confidence_threshold.clamp(0.5, 1.0),
        }
    }

    /// Adds a source community's norms.
    pub fn add_community(&mut self, norms: CommunityNorms) {
        self.communities.push(norms);
    }

    /// Number of source communities.
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// True when no communities are enrolled.
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Classifies one item.
    pub fn classify(&self, item: &ContentFeatures) -> EnsembleDecision {
        if self.communities.is_empty() {
            return EnsembleDecision::Escalate { remove_votes: 0.0 };
        }
        let removes = self
            .communities
            .iter()
            .filter(|c| c.would_remove(item))
            .count() as f64;
        let total = self.communities.len() as f64;
        let remove_fraction = removes / total;
        if remove_fraction >= self.confidence_threshold {
            EnsembleDecision::Remove { agreement: remove_fraction }
        } else if 1.0 - remove_fraction >= self.confidence_threshold {
            EnsembleDecision::Keep { agreement: 1.0 - remove_fraction }
        } else {
            EnsembleDecision::Escalate { remove_votes: remove_fraction }
        }
    }

    /// Classifies a batch and returns `(removed, kept, escalated)`
    /// counts — the triage statistics the E8 pipeline would consume.
    pub fn triage(&self, items: &[ContentFeatures]) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for item in items {
            match self.classify(item) {
                EnsembleDecision::Remove { .. } => counts.0 += 1,
                EnsembleDecision::Keep { .. } => counts.1 += 1,
                EnsembleDecision::Escalate { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

/// Builds a diverse ensemble: strict, standard, and permissive
/// communities plus one axis-blind outlier.
pub fn diverse_ensemble(confidence: f64) -> CrossModEnsemble {
    let mut ensemble = CrossModEnsemble::new(confidence);
    ensemble.add_community(CommunityNorms {
        name: "strict-family".into(),
        toxicity_threshold: 0.4,
        spam_threshold: 0.5,
        sexual_threshold: 0.3,
    });
    ensemble.add_community(CommunityNorms::standard("general-1"));
    ensemble.add_community(CommunityNorms::standard("general-2"));
    ensemble.add_community(CommunityNorms {
        name: "permissive-gaming".into(),
        toxicity_threshold: 0.85,
        spam_threshold: 0.6,
        sexual_threshold: 0.7,
    });
    ensemble.add_community(CommunityNorms {
        name: "adult-art".into(),
        toxicity_threshold: 0.6,
        spam_threshold: 0.6,
        sexual_threshold: f64::INFINITY, // does not police this axis
    });
    ensemble
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unanimous_violations_auto_removed() {
        let ensemble = diverse_ensemble(0.8);
        let nasty = ContentFeatures { toxicity: 0.95, spam: 0.9, sexual: 0.1 };
        match ensemble.classify(&nasty) {
            EnsembleDecision::Remove { agreement } => assert!(agreement >= 0.8),
            other => panic!("expected removal, got {other:?}"),
        }
    }

    #[test]
    fn clean_content_auto_kept() {
        let ensemble = diverse_ensemble(0.8);
        let clean = ContentFeatures { toxicity: 0.1, spam: 0.1, sexual: 0.05 };
        assert!(matches!(ensemble.classify(&clean), EnsembleDecision::Keep { .. }));
    }

    #[test]
    fn norm_disagreement_escalates() {
        let ensemble = diverse_ensemble(0.8);
        // Moderately toxic: strict removes (0.4), generals remove (0.6),
        // permissive keeps (0.85), adult-art removes (0.6) → 4/5 = 0.8…
        // pick a value where communities genuinely split.
        let contested = ContentFeatures { toxicity: 0.5, spam: 0.1, sexual: 0.1 };
        // strict removes; the rest keep → remove fraction 0.2 → Keep at 0.8.
        assert!(matches!(ensemble.classify(&contested), EnsembleDecision::Keep { .. }));
        let contested = ContentFeatures { toxicity: 0.7, spam: 0.1, sexual: 0.1 };
        // strict+generals+adult remove (4/5 = 0.8) → Remove at bar 0.8.
        assert!(matches!(ensemble.classify(&contested), EnsembleDecision::Remove { .. }));
        // Raise the bar: the same item escalates instead.
        let stricter = diverse_ensemble(0.9);
        assert!(matches!(
            stricter.classify(&contested),
            EnsembleDecision::Escalate { .. }
        ));
    }

    #[test]
    fn axis_blind_community_never_removes_on_that_axis() {
        let ensemble = diverse_ensemble(0.99);
        let racy = ContentFeatures { toxicity: 0.1, spam: 0.1, sexual: 0.95 };
        // adult-art keeps, so unanimity is impossible → never auto-remove.
        assert!(!matches!(ensemble.classify(&racy), EnsembleDecision::Remove { .. }));
    }

    #[test]
    fn triage_reduces_human_load_on_clear_cases() {
        let mut rng = StdRng::seed_from_u64(3);
        let ensemble = diverse_ensemble(0.8);
        let mut items = Vec::new();
        for _ in 0..200 {
            items.push(ContentFeatures::violating(&mut rng));
            items.push(ContentFeatures::benign(&mut rng));
        }
        // Sprinkle in genuinely contested items (sexual ≈ 0.65 splits
        // the ensemble 3/5).
        for _ in 0..40 {
            items.push(ContentFeatures {
                toxicity: rng.gen_range(0.0..0.2),
                spam: rng.gen_range(0.0..0.2),
                sexual: rng.gen_range(0.62..0.68),
            });
        }
        let (removed, kept, escalated) = ensemble.triage(&items);
        assert_eq!(removed + kept + escalated, items.len());
        let auto_fraction = (removed + kept) as f64 / items.len() as f64;
        assert!(auto_fraction > 0.6, "most clear cases auto-handled: {auto_fraction}");
        assert!(escalated >= 40, "contested items reach humans: {escalated}");
    }

    #[test]
    fn empty_ensemble_escalates_everything() {
        let ensemble = CrossModEnsemble::new(0.8);
        assert!(ensemble.is_empty());
        let item = ContentFeatures { toxicity: 1.0, spam: 1.0, sexual: 1.0 };
        assert!(matches!(ensemble.classify(&item), EnsembleDecision::Escalate { .. }));
    }

    #[test]
    fn confidence_threshold_clamped() {
        let e = CrossModEnsemble::new(0.1);
        assert_eq!(e.confidence_threshold, 0.5);
        let e = CrossModEnsemble::new(1.5);
        assert_eq!(e.confidence_threshold, 1.0);
    }
}
