//! Punitive escalation and preventive tools.
//!
//! The Minecraft governance study the paper draws on (§III-D)
//! distinguishes *punitive* tooling ("tools to deal with players'
//! misbehaviour") from *preventive* tooling ("tools for encouraging
//! positive behaviours"). [`EscalationLadder`] implements the punitive
//! ladder with per-offender memory; [`PreventiveConfig`] captures the
//! rate-limit style preventive controls. Every punitive action is
//! exported as a ledger record for transparency.

use std::collections::HashMap;

use metaverse_ledger::tx::TxPayload;
use serde::{Deserialize, Serialize};

/// A moderation action, in increasing severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModAction {
    /// Report accepted but adjudication postponed — the moderation
    /// module is unavailable and the platform is queueing reports until
    /// it recovers (graceful degradation, not a punishment; sorts below
    /// every punitive action).
    Deferred,
    /// Formal warning.
    Warn,
    /// Temporary mute (chat disabled).
    Mute,
    /// Temporary ban.
    TempBan,
    /// Permanent ban.
    PermBan,
}

impl ModAction {
    /// Stable label for ledger records.
    pub fn label(&self) -> &'static str {
        match self {
            ModAction::Deferred => "deferred",
            ModAction::Warn => "warn",
            ModAction::Mute => "mute",
            ModAction::TempBan => "temp-ban",
            ModAction::PermBan => "perm-ban",
        }
    }
}

/// Preventive controls applied before misbehaviour happens.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreventiveConfig {
    /// Max chat messages per tick for accounts younger than
    /// `probation_ticks`.
    pub newcomer_message_limit: u32,
    /// Ticks a new account stays on probation.
    pub probation_ticks: u64,
    /// Whether newcomer content requires pre-moderation.
    pub premoderate_newcomers: bool,
}

impl Default for PreventiveConfig {
    fn default() -> Self {
        PreventiveConfig {
            newcomer_message_limit: 5,
            probation_ticks: 500,
            premoderate_newcomers: false,
        }
    }
}

impl PreventiveConfig {
    /// Whether an account created at `created_at` is still on probation
    /// at `now`.
    pub fn on_probation(&self, created_at: u64, now: u64) -> bool {
        now.saturating_sub(created_at) < self.probation_ticks
    }
}

/// The outcome of appealing a standing moderation action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppealVerdict {
    /// The appeal succeeded: the offender's ladder history was cleared
    /// (amnesty) and the restoration was recorded on the ledger.
    Granted,
    /// The appeal failed: the named action stands.
    Upheld(ModAction),
}

impl AppealVerdict {
    /// Stable label for traces and ledger records.
    pub fn label(&self) -> &'static str {
        match self {
            AppealVerdict::Granted => "granted",
            AppealVerdict::Upheld(_) => "upheld",
        }
    }
}

/// The punitive escalation ladder with per-offender history.
#[derive(Debug, Default)]
pub struct EscalationLadder {
    offenses: HashMap<String, u32>,
    pending_records: Vec<TxPayload>,
}

impl EscalationLadder {
    /// Creates an empty ladder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The action the ladder prescribes for an offender's `n`-th offense
    /// (1-based).
    pub fn action_for(offense_count: u32) -> ModAction {
        match offense_count {
            0 | 1 => ModAction::Warn,
            2 => ModAction::Mute,
            3 | 4 => ModAction::TempBan,
            _ => ModAction::PermBan,
        }
    }

    /// Records an upheld offense and returns the prescribed action.
    pub fn punish(&mut self, subject: &str, authority: &str) -> ModAction {
        let count = self.offenses.entry(subject.to_string()).or_insert(0);
        *count += 1;
        let action = Self::action_for(*count);
        self.pending_records.push(TxPayload::ModerationAction {
            subject: subject.to_string(),
            action: action.label().to_string(),
            authority: authority.to_string(),
        });
        action
    }

    /// Offense count for an account.
    pub fn offenses(&self, subject: &str) -> u32 {
        self.offenses.get(subject).copied().unwrap_or(0)
    }

    /// Clears an account's history (successful appeal / amnesty),
    /// recording the restoration.
    pub fn amnesty(&mut self, subject: &str, authority: &str) {
        self.offenses.remove(subject);
        self.pending_records.push(TxPayload::ModerationAction {
            subject: subject.to_string(),
            action: "restore".to_string(),
            authority: authority.to_string(),
        });
    }

    /// Adjudicates an appeal of `subject`'s standing action. The caller
    /// supplies the merit decision (`deserving`, e.g. from reputation
    /// standing); the ladder supplies the history: a deserving subject
    /// with offenses on record gets amnesty ([`AppealVerdict::Granted`],
    /// recorded as a `restore` ledger action), everyone else has the
    /// prescribed action upheld. Appeals with no history to appeal are
    /// upheld at [`ModAction::Warn`] without touching the ledger.
    pub fn appeal(&mut self, subject: &str, authority: &str, deserving: bool) -> AppealVerdict {
        let offenses = self.offenses(subject);
        if offenses == 0 {
            return AppealVerdict::Upheld(ModAction::Warn);
        }
        if deserving {
            self.amnesty(subject, authority);
            AppealVerdict::Granted
        } else {
            AppealVerdict::Upheld(Self::action_for(offenses))
        }
    }

    /// Takes the ledger records accumulated since the last drain.
    pub fn drain_ledger_records(&mut self) -> Vec<TxPayload> {
        std::mem::take(&mut self.pending_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_escalates() {
        let mut l = EscalationLadder::new();
        assert_eq!(l.punish("griefer", "dao:moderation"), ModAction::Warn);
        assert_eq!(l.punish("griefer", "dao:moderation"), ModAction::Mute);
        assert_eq!(l.punish("griefer", "dao:moderation"), ModAction::TempBan);
        assert_eq!(l.punish("griefer", "dao:moderation"), ModAction::TempBan);
        assert_eq!(l.punish("griefer", "dao:moderation"), ModAction::PermBan);
        assert_eq!(l.punish("griefer", "dao:moderation"), ModAction::PermBan);
        assert_eq!(l.offenses("griefer"), 6);
    }

    #[test]
    fn ladders_are_per_offender() {
        let mut l = EscalationLadder::new();
        l.punish("a", "m");
        l.punish("a", "m");
        assert_eq!(l.punish("b", "m"), ModAction::Warn, "b starts fresh");
    }

    #[test]
    fn amnesty_resets() {
        let mut l = EscalationLadder::new();
        for _ in 0..5 {
            l.punish("x", "m");
        }
        l.amnesty("x", "dao:appeals");
        assert_eq!(l.offenses("x"), 0);
        assert_eq!(l.punish("x", "m"), ModAction::Warn);
    }

    #[test]
    fn ledger_records_for_actions_and_amnesty() {
        let mut l = EscalationLadder::new();
        l.punish("x", "m");
        l.amnesty("x", "appeals");
        let records = l.drain_ledger_records();
        assert_eq!(records.len(), 2);
        assert!(matches!(
            &records[1],
            TxPayload::ModerationAction { action, .. } if action == "restore"
        ));
        assert!(l.drain_ledger_records().is_empty());
    }

    #[test]
    fn action_ordering() {
        assert!(ModAction::Deferred < ModAction::Warn);
        assert!(ModAction::Warn < ModAction::Mute);
        assert!(ModAction::TempBan < ModAction::PermBan);
    }

    #[test]
    fn probation_windows() {
        let p = PreventiveConfig::default();
        assert!(p.on_probation(0, 100));
        assert!(!p.on_probation(0, 500));
        assert!(p.on_probation(1000, 1200));
    }
}
