//! The moderation pipeline: arrivals, automation, human capacity.
//!
//! The E8 dynamics: reports arrive at a rate proportional to community
//! size; an automated filter (the "automation tools" of §III) resolves a
//! fraction of them instantly but imperfectly; the rest queue for a
//! fixed pool of human moderators. When arrivals outpace total
//! throughput, the backlog — and with it time-to-action — grows without
//! bound, reproducing "moderators cannot keep up".

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::queue::{Report, ReportQueue, Severity};

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Community size (members).
    pub community_size: usize,
    /// Reports filed per member per tick (expected).
    pub report_rate: f64,
    /// Fraction of filed reports that describe real violations.
    pub violation_rate: f64,
    /// Number of human moderators.
    pub moderators: usize,
    /// Reports one human can resolve per tick.
    pub per_moderator_capacity: usize,
    /// Fraction of arrivals the automated filter resolves instantly.
    pub automation_coverage: f64,
    /// Probability the filter decides a covered report correctly.
    pub automation_accuracy: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            community_size: 1000,
            report_rate: 0.01,
            violation_rate: 0.6,
            moderators: 5,
            per_moderator_capacity: 2,
            automation_coverage: 0.0,
            automation_accuracy: 0.9,
        }
    }
}

/// Per-tick statistics — the E8 time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickStats {
    /// Tick index.
    pub tick: u64,
    /// Reports that arrived this tick.
    pub arrivals: usize,
    /// Resolved by automation this tick.
    pub auto_resolved: usize,
    /// Resolved by humans this tick.
    pub human_resolved: usize,
    /// Queue depth after processing.
    pub backlog: usize,
    /// Age of the oldest waiting report.
    pub oldest_age: u64,
    /// Automation mistakes this tick (wrong decision on covered items).
    pub auto_errors: usize,
}

/// The moderation pipeline simulator.
#[derive(Debug)]
pub struct ModerationPipeline {
    config: PipelineConfig,
    queue: ReportQueue,
    tick: u64,
    next_report_id: u64,
    /// Resolution latencies of human-handled reports (ticks waited).
    latencies: Vec<u64>,
    total_auto_errors: u64,
    total_resolved: u64,
}

impl ModerationPipeline {
    /// Creates a pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        ModerationPipeline {
            config,
            queue: ReportQueue::new(),
            tick: 0,
            next_report_id: 1,
            latencies: Vec::new(),
            total_auto_errors: 0,
            total_resolved: 0,
        }
    }

    /// Advances one tick: arrivals → automation → human processing.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TickStats {
        let cfg = &self.config;
        let expected = cfg.community_size as f64 * cfg.report_rate;
        // Poisson-ish arrivals via per-member Bernoulli thinning.
        let arrivals = {
            let base = expected.floor() as usize;
            let extra = usize::from(rng.gen_bool(expected.fract().clamp(0.0, 1.0)));
            base + extra
        };

        let mut auto_resolved = 0;
        let mut auto_errors = 0;
        for _ in 0..arrivals {
            let severity = match rng.gen_range(0..10) {
                0..=5 => Severity::Low,
                6..=8 => Severity::Medium,
                _ => Severity::High,
            };
            let report = Report {
                id: self.next_report_id,
                subject: format!("member-{}", rng.gen_range(0..cfg.community_size.max(1))),
                severity,
                submitted_at: self.tick,
                violation: rng.gen_bool(cfg.violation_rate.clamp(0.0, 1.0)),
            };
            self.next_report_id += 1;
            if rng.gen_bool(cfg.automation_coverage.clamp(0.0, 1.0)) {
                auto_resolved += 1;
                self.total_resolved += 1;
                if !rng.gen_bool(cfg.automation_accuracy.clamp(0.0, 1.0)) {
                    auto_errors += 1;
                    self.total_auto_errors += 1;
                }
            } else {
                self.queue.push(report);
            }
        }

        // Humans drain the queue up to their capacity. Humans are
        // assumed accurate (they set the ground-truth standard).
        let capacity = cfg.moderators * cfg.per_moderator_capacity;
        let mut human_resolved = 0;
        for _ in 0..capacity {
            match self.queue.pop() {
                Some(report) => {
                    human_resolved += 1;
                    self.total_resolved += 1;
                    self.latencies.push(self.tick - report.submitted_at);
                }
                None => break,
            }
        }

        let stats = TickStats {
            tick: self.tick,
            arrivals,
            auto_resolved,
            human_resolved,
            backlog: self.queue.len(),
            oldest_age: self.queue.oldest_age(self.tick).unwrap_or(0),
            auto_errors,
        };
        self.tick += 1;
        stats
    }

    /// Runs `ticks` ticks and returns the series.
    pub fn run<R: Rng + ?Sized>(&mut self, ticks: u64, rng: &mut R) -> Vec<TickStats> {
        (0..ticks).map(|_| self.step(rng)).collect()
    }

    /// Median human-resolution latency so far.
    pub fn median_latency(&self) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    /// Total automation errors committed.
    pub fn auto_errors(&self) -> u64 {
        self.total_auto_errors
    }

    /// Total reports resolved by any means.
    pub fn total_resolved(&self) -> u64 {
        self.total_resolved
    }

    /// Current backlog.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn undersized_pool_backlog_grows() {
        // 5000 members × 0.01 = 50 reports/tick vs 10 capacity.
        let mut p = ModerationPipeline::new(PipelineConfig {
            community_size: 5000,
            ..Default::default()
        });
        let mut r = rng(1);
        let series = p.run(100, &mut r);
        let early = series[10].backlog;
        let late = series[99].backlog;
        assert!(late > early * 3, "backlog explodes: {early} -> {late}");
        assert!(series[99].oldest_age > 20, "stale reports age out");
    }

    #[test]
    fn adequate_pool_backlog_bounded() {
        // 1000 × 0.01 = 10 reports/tick vs 5×2=10 capacity + slack from
        // automation.
        let mut p = ModerationPipeline::new(PipelineConfig {
            community_size: 800,
            ..Default::default()
        });
        let mut r = rng(2);
        let series = p.run(300, &mut r);
        let late_max = series[200..].iter().map(|s| s.backlog).max().unwrap();
        assert!(late_max < 60, "backlog stays bounded: {late_max}");
    }

    #[test]
    fn automation_rescues_overloaded_pool() {
        let base = PipelineConfig { community_size: 5000, ..Default::default() };
        let mut without = ModerationPipeline::new(base.clone());
        let mut with = ModerationPipeline::new(PipelineConfig {
            automation_coverage: 0.9,
            ..base
        });
        let mut r1 = rng(3);
        let mut r2 = rng(3);
        let s1 = without.run(150, &mut r1);
        let s2 = with.run(150, &mut r2);
        assert!(
            s2.last().unwrap().backlog < s1.last().unwrap().backlog / 4,
            "automation shrinks backlog: {} vs {}",
            s2.last().unwrap().backlog,
            s1.last().unwrap().backlog
        );
    }

    #[test]
    fn automation_accuracy_tradeoff() {
        let mut p = ModerationPipeline::new(PipelineConfig {
            community_size: 5000,
            automation_coverage: 1.0,
            automation_accuracy: 0.8,
            ..Default::default()
        });
        let mut r = rng(4);
        p.run(100, &mut r);
        let errors = p.auto_errors() as f64;
        let resolved = p.total_resolved() as f64;
        let rate = errors / resolved;
        assert!((rate - 0.2).abs() < 0.05, "error rate ≈ 1 − accuracy: {rate}");
    }

    #[test]
    fn overload_starves_low_severity_lane() {
        // Under overload the priority queue keeps serving fresh High
        // reports while Low reports pile up — so the *resolved* median
        // stays deceptively small while the waiting backlog ages. This
        // is the "moderators cannot keep up" failure mode in detail.
        let mut p = ModerationPipeline::new(PipelineConfig {
            community_size: 5000,
            ..Default::default()
        });
        let mut r = rng(5);
        p.run(200, &mut r);
        let (high, _medium, low) = p.queue.lane_depths();
        assert!(low > high * 2, "low lane starves: low={low} high={high}");
        // The resolved median stays small even though the system drowns.
        assert!(p.median_latency().unwrap() < 10);
        assert!(p.backlog() > 1000);
    }

    #[test]
    fn empty_pipeline_no_latency() {
        let p = ModerationPipeline::new(PipelineConfig::default());
        assert!(p.median_latency().is_none());
        assert_eq!(p.backlog(), 0);
    }
}
