//! # metaverse-social
//!
//! Social structure, misinformation propagation, and trust for
//! `metaverse-kit`, implementing §IV-B's "Trust" discussion:
//!
//! > "In the metaverse, testimonies and trust will play an even more
//! > critical role, as in many cases, we will not have a real person
//! > telling the testimony but her/his avatar. […] Incentive systems to
//! > share trust among avatars will be key functionality to reduce the
//! > sharing of misinformation."
//!
//! Components:
//!
//! * [`graph`] — social graph generators (small-world, scale-free,
//!   random) and queries.
//! * [`propagation`] — SIR-style rumour spreading with believer/
//!   fact-checked states.
//! * [`trust`] — the trust-incentive layer: sharing misinformation that
//!   is later fact-checked costs reputation, and agents adapt their
//!   sharing propensity — the mechanism experiment E11 switches on and
//!   off.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod propagation;
pub mod trust;

pub use graph::SocialGraph;
pub use propagation::{NodeState, OutbreakReport, PropagationConfig, Rumor};
pub use trust::{TrustConfig, TrustExperimentReport, TrustSystem};
