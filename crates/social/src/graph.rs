//! Social graph generators and queries.

use rand::seq::SliceRandom;
use rand::Rng;

/// An undirected social graph over node ids `0..n`.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    adjacency: Vec<Vec<usize>>,
}

impl SocialGraph {
    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        SocialGraph { adjacency: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds an undirected edge (idempotent, no self-loops).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b || a >= self.len() || b >= self.len() {
            return;
        }
        if !self.adjacency[a].contains(&b) {
            self.adjacency[a].push(b);
            self.adjacency[b].push(a);
        }
    }

    /// Neighbours of a node.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adjacency[node]
    }

    /// Degree of a node.
    pub fn degree(&self, node: usize) -> usize {
        self.adjacency[node].len()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.len() as f64
    }

    /// Watts–Strogatz small-world graph: ring lattice of degree `k`
    /// (even), each edge rewired with probability `beta`.
    pub fn small_world<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Self {
        let mut g = Self::empty(n);
        if n < 2 {
            return g;
        }
        let half = (k / 2).max(1);
        for i in 0..n {
            for j in 1..=half {
                let neighbor = (i + j) % n;
                if rng.gen_bool(beta.clamp(0.0, 1.0)) {
                    // Rewire to a random non-self target.
                    let mut target = rng.gen_range(0..n);
                    let mut guard = 0;
                    while (target == i || g.adjacency[i].contains(&target)) && guard < 20 {
                        target = rng.gen_range(0..n);
                        guard += 1;
                    }
                    g.add_edge(i, target);
                } else {
                    g.add_edge(i, neighbor);
                }
            }
        }
        g
    }

    /// Barabási–Albert scale-free graph: each new node attaches `m`
    /// edges preferentially to high-degree nodes.
    pub fn scale_free<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Self {
        let m = m.max(1);
        let mut g = Self::empty(n);
        if n == 0 {
            return g;
        }
        let seed = (m + 1).min(n);
        // Fully connect the seed clique.
        for i in 0..seed {
            for j in (i + 1)..seed {
                g.add_edge(i, j);
            }
        }
        // Preferential attachment via the repeated-endpoints trick.
        let mut endpoints: Vec<usize> = Vec::new();
        for (i, neigh) in g.adjacency.iter().enumerate() {
            for _ in 0..neigh.len() {
                endpoints.push(i);
            }
        }
        for new in seed..n {
            let mut targets = Vec::new();
            let mut guard = 0;
            while targets.len() < m.min(new) && guard < 200 {
                guard += 1;
                let t = *endpoints.choose(rng).expect("endpoints nonempty");
                if t != new && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for t in targets {
                g.add_edge(new, t);
                endpoints.push(new);
                endpoints.push(t);
            }
        }
        g
    }

    /// Erdős–Rényi random graph with edge probability `p`.
    pub fn random<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Self {
        let mut g = Self::empty(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Size of the connected component containing `start`.
    pub fn component_size(&self, start: usize) -> usize {
        if start >= self.len() {
            return 0;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut count = 0;
        while let Some(node) = stack.pop() {
            count += 1;
            for &next in &self.adjacency[node] {
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(61)
    }

    #[test]
    fn add_edge_idempotent_no_self_loops() {
        let mut g = SocialGraph::empty(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        g.add_edge(0, 99);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn small_world_degree_near_k() {
        let mut r = rng();
        let g = SocialGraph::small_world(200, 6, 0.1, &mut r);
        let mean = g.mean_degree();
        assert!((5.0..7.5).contains(&mean), "mean degree {mean}");
        assert!(g.component_size(0) > 190, "small-world stays connected");
    }

    #[test]
    fn scale_free_has_hubs() {
        let mut r = rng();
        let g = SocialGraph::scale_free(500, 2, &mut r);
        let max_degree = (0..g.len()).map(|i| g.degree(i)).max().unwrap();
        let mean = g.mean_degree();
        assert!(
            max_degree as f64 > mean * 5.0,
            "hub degree {max_degree} should dwarf mean {mean}"
        );
    }

    #[test]
    fn random_graph_edge_count_near_expectation() {
        let mut r = rng();
        let n = 100;
        let p = 0.1;
        let g = SocialGraph::random(n, p, &mut r);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!((got - expected).abs() < expected * 0.3, "edges {got} vs {expected}");
    }

    #[test]
    fn component_size_isolated() {
        let g = SocialGraph::empty(5);
        assert_eq!(g.component_size(0), 1);
        assert_eq!(g.component_size(99), 0);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let mut r = rng();
        assert!(SocialGraph::small_world(0, 4, 0.1, &mut r).is_empty());
        assert_eq!(SocialGraph::small_world(1, 4, 0.1, &mut r).edge_count(), 0);
        assert_eq!(SocialGraph::scale_free(0, 2, &mut r).len(), 0);
        assert_eq!(SocialGraph::scale_free(1, 2, &mut r).len(), 1);
        assert_eq!(SocialGraph::empty(0).mean_degree(), 0.0);
    }
}
