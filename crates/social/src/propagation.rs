//! SIR-style rumour propagation over a social graph.
//!
//! Nodes are Susceptible (haven't seen the rumour), Believers (accepted
//! and share it), or Fact-checked (saw it, verified it false, immune and
//! silent). A rumour carries a `veracity` flag; false rumours are the
//! misinformation whose spread the paper wants incentive systems to
//! curb.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::SocialGraph;

/// A message spreading through the graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rumor {
    /// Whether the content is actually true.
    pub veracity: bool,
    /// How convincing the content is (probability of belief on
    /// exposure), in `[0, 1]`.
    pub virality: f64,
}

/// Per-node propagation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Not yet exposed.
    Susceptible,
    /// Believes and shares.
    Believer,
    /// Fact-checked the rumour; immune, does not share.
    FactChecked,
}

/// Parameters of a propagation run.
#[derive(Debug, Clone)]
pub struct PropagationConfig {
    /// Probability a believer transmits to a given neighbour per round.
    pub transmission: f64,
    /// Probability an exposed node fact-checks instead of evaluating
    /// belief (immunising itself).
    pub fact_check: f64,
    /// Maximum rounds to simulate.
    pub max_rounds: usize,
    /// Rounds a new believer remains actively sharing before going
    /// quiet (still believing, no longer transmitting).
    pub infectious_rounds: usize,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            transmission: 0.4,
            fact_check: 0.1,
            max_rounds: 100,
            infectious_rounds: 2,
        }
    }
}

/// Outcome of one outbreak.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutbreakReport {
    /// Fraction of the population that ever believed.
    pub outbreak_size: f64,
    /// Rounds until no believer had anyone left to infect.
    pub rounds: usize,
    /// Believers at peak.
    pub peak_believers: usize,
}

/// Runs one outbreak from `seeds` with per-node share decisions supplied
/// by `share_decision(node) -> bool` (the hook the trust layer plugs
/// into; `|_| true` gives the uncontrolled baseline).
pub fn spread<R: Rng + ?Sized>(
    graph: &SocialGraph,
    rumor: Rumor,
    seeds: &[usize],
    config: &PropagationConfig,
    rng: &mut R,
    mut share_decision: impl FnMut(usize, &mut R) -> bool,
) -> (OutbreakReport, Vec<NodeState>) {
    let n = graph.len();
    let mut states = vec![NodeState::Susceptible; n];
    let mut ever_believed = vec![false; n];
    let mut infectivity = vec![0usize; n];
    for &s in seeds {
        if s < n {
            states[s] = NodeState::Believer;
            ever_believed[s] = true;
            infectivity[s] = config.infectious_rounds.max(1);
        }
    }

    let mut peak = seeds.len();
    let mut rounds = 0;
    for round in 0..config.max_rounds {
        let believers: Vec<usize> = (0..n)
            .filter(|&i| states[i] == NodeState::Believer && infectivity[i] > 0)
            .collect();
        if believers.is_empty() {
            break;
        }
        let mut any_transmission = false;
        let mut next = states.clone();
        let mut next_infectivity = infectivity.clone();
        for &b in &believers {
            next_infectivity[b] -= 1;
            // The trust layer may veto sharing entirely.
            if !share_decision(b, rng) {
                continue;
            }
            for &peer in graph.neighbors(b) {
                if states[peer] != NodeState::Susceptible {
                    continue;
                }
                if !rng.gen_bool(config.transmission.clamp(0.0, 1.0)) {
                    continue;
                }
                any_transmission = true;
                if rng.gen_bool(config.fact_check.clamp(0.0, 1.0)) {
                    next[peer] = NodeState::FactChecked;
                } else if rng.gen_bool(rumor.virality.clamp(0.0, 1.0)) {
                    next[peer] = NodeState::Believer;
                    next_infectivity[peer] = config.infectious_rounds.max(1);
                    ever_believed[peer] = true;
                } else {
                    next[peer] = NodeState::FactChecked;
                }
            }
        }
        states = next;
        infectivity = next_infectivity;
        rounds = round + 1;
        let current = states.iter().filter(|s| **s == NodeState::Believer).count();
        peak = peak.max(current);
        if !any_transmission {
            break;
        }
    }

    let total_believed = ever_believed.iter().filter(|b| **b).count();
    (
        OutbreakReport {
            outbreak_size: if n == 0 { 0.0 } else { total_believed as f64 / n as f64 },
            rounds,
            peak_believers: peak,
        },
        states,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(71)
    }

    fn graph(r: &mut StdRng) -> SocialGraph {
        SocialGraph::small_world(400, 6, 0.1, r)
    }

    fn viral() -> Rumor {
        Rumor { veracity: false, virality: 0.9 }
    }

    #[test]
    fn viral_rumor_reaches_large_fraction() {
        let mut r = rng();
        let g = graph(&mut r);
        let (report, _) =
            spread(&g, viral(), &[0], &PropagationConfig::default(), &mut r, |_, _| true);
        assert!(report.outbreak_size > 0.5, "outbreak {}", report.outbreak_size);
        assert!(report.peak_believers > 10);
    }

    #[test]
    fn zero_transmission_stays_at_seeds() {
        let mut r = rng();
        let g = graph(&mut r);
        let cfg = PropagationConfig { transmission: 0.0, ..Default::default() };
        let (report, _) = spread(&g, viral(), &[0, 1], &cfg, &mut r, |_, _| true);
        assert!((report.outbreak_size - 2.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn share_veto_stops_everything() {
        let mut r = rng();
        let g = graph(&mut r);
        let (report, _) =
            spread(&g, viral(), &[0], &PropagationConfig::default(), &mut r, |_, _| false);
        assert!((report.outbreak_size - 1.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn high_fact_check_suppresses_outbreak() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let g = graph(&mut r1);
        let g2 = g.clone();
        let low = PropagationConfig { fact_check: 0.02, ..Default::default() };
        let high = PropagationConfig { fact_check: 0.6, ..Default::default() };
        let (r_low, _) = spread(&g, viral(), &[0], &low, &mut r1, |_, _| true);
        let (r_high, _) = spread(&g2, viral(), &[0], &high, &mut r2, |_, _| true);
        assert!(
            r_high.outbreak_size < r_low.outbreak_size,
            "fact-checking curbs spread: {} vs {}",
            r_high.outbreak_size,
            r_low.outbreak_size
        );
    }

    #[test]
    fn low_virality_small_outbreak() {
        let mut r = rng();
        let g = graph(&mut r);
        let dull = Rumor { veracity: true, virality: 0.05 };
        let (report, _) =
            spread(&g, dull, &[0], &PropagationConfig::default(), &mut r, |_, _| true);
        assert!(report.outbreak_size < 0.2, "dull content fizzles: {}", report.outbreak_size);
    }

    #[test]
    fn terminal_states_consistent() {
        let mut r = rng();
        let g = graph(&mut r);
        let (_, states) =
            spread(&g, viral(), &[0], &PropagationConfig::default(), &mut r, |_, _| true);
        assert_eq!(states.len(), g.len());
        // Seeds stay believers (no recovery in this model).
        assert_eq!(states[0], NodeState::Believer);
    }

    #[test]
    fn empty_graph_no_outbreak() {
        let mut r = rng();
        let g = SocialGraph::empty(0);
        let (report, states) =
            spread(&g, viral(), &[0], &PropagationConfig::default(), &mut r, |_, _| true);
        assert_eq!(report.outbreak_size, 0.0);
        assert!(states.is_empty());
    }
}
