//! The trust-incentive layer over rumour propagation (experiment E11).
//!
//! §IV-B: "Incentive systems to share trust among avatars will be key
//! functionality to reduce the sharing of misinformation." The model:
//!
//! * every avatar has a reputation-backed *sharing propensity*;
//! * sharing content that is later fact-checked as false triggers (with
//!   some audit probability) a reputation penalty routed through
//!   [`metaverse_reputation::engine::ReputationEngine`];
//! * avatars adapt: penalised sharers become more cautious; accurate
//!   sharers are rewarded and keep sharing.
//!
//! Over successive rumour waves the population learns, and false-rumour
//! outbreaks shrink — while true-content reach is largely preserved
//! (the selectivity the paper hopes for). With the system disabled,
//! every wave spreads alike.

use metaverse_reputation::engine::{EngineConfig, ReputationEngine};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::SocialGraph;
use crate::propagation::{spread, PropagationConfig, Rumor};

/// Configuration of the trust-incentive system.
#[derive(Debug, Clone)]
pub struct TrustConfig {
    /// Whether incentives are active (the E11 switch).
    pub enabled: bool,
    /// Probability that a false share is audited and penalised.
    pub audit_probability: f64,
    /// Reputation penalty per audited false share (milli-points).
    pub penalty_millis: i64,
    /// Reputation reward per audited true share (milli-points).
    pub reward_millis: i64,
    /// How strongly an avatar's verification effort reacts to a penalty.
    pub caution_step: f64,
    /// Initial sharing propensity.
    pub initial_propensity: f64,
    /// Initial verification effort (probability of checking content
    /// before sharing it).
    pub initial_verification: f64,
}

impl Default for TrustConfig {
    fn default() -> Self {
        TrustConfig {
            enabled: true,
            audit_probability: 0.5,
            penalty_millis: 5000,
            reward_millis: 500,
            caution_step: 0.25,
            initial_propensity: 0.9,
            initial_verification: 0.05,
        }
    }
}

/// Result of the multi-wave experiment — the E11 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrustExperimentReport {
    /// Whether the incentive system was on.
    pub enabled: bool,
    /// Outbreak size of each false-rumour wave, in order.
    pub false_outbreaks: Vec<f64>,
    /// Outbreak size of each true-content wave, in order.
    pub true_outbreaks: Vec<f64>,
    /// Mean sharing propensity after the last wave.
    pub final_propensity: f64,
    /// Mean reputation after the last wave (points).
    pub final_reputation: f64,
}

impl TrustExperimentReport {
    /// Mean outbreak size over the last quarter of false waves.
    pub fn late_false_outbreak(&self) -> f64 {
        let n = self.false_outbreaks.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.false_outbreaks[n - (n / 4).max(1)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// The trust system state over a population.
#[derive(Debug)]
pub struct TrustSystem {
    config: TrustConfig,
    propensity: Vec<f64>,
    /// Per-avatar probability of verifying content before sharing. This
    /// is where incentives bite: audits teach avatars to check first,
    /// and verification selectively stops *false* content.
    verification: Vec<f64>,
    reputation: ReputationEngine,
}

impl TrustSystem {
    /// Creates the system for `n` avatars named `avatar-<i>`.
    pub fn new(n: usize, config: TrustConfig) -> Self {
        let mut reputation = ReputationEngine::new(EngineConfig {
            epoch_action_limit: u32::MAX,
            decay_half_life: 0,
            ..EngineConfig::default()
        });
        for i in 0..n {
            reputation.register(&format!("avatar-{i}"), 0).unwrap();
        }
        TrustSystem {
            propensity: vec![config.initial_propensity; n],
            verification: vec![config.initial_verification; n],
            config,
            reputation,
        }
    }

    /// Current verification effort of a node.
    pub fn verification(&self, node: usize) -> f64 {
        self.verification.get(node).copied().unwrap_or(0.0)
    }

    /// Mean verification effort across the population.
    pub fn mean_verification(&self) -> f64 {
        if self.verification.is_empty() {
            return 0.0;
        }
        self.verification.iter().sum::<f64>() / self.verification.len() as f64
    }

    /// Current sharing propensity of a node.
    pub fn propensity(&self, node: usize) -> f64 {
        self.propensity.get(node).copied().unwrap_or(0.0)
    }

    /// Mean propensity across the population.
    pub fn mean_propensity(&self) -> f64 {
        if self.propensity.is_empty() {
            return 0.0;
        }
        self.propensity.iter().sum::<f64>() / self.propensity.len() as f64
    }

    /// Mean reputation (points).
    pub fn mean_reputation(&self) -> f64 {
        let n = self.propensity.len().max(1);
        (0..self.propensity.len())
            .filter_map(|i| self.reputation.score(&format!("avatar-{i}")).ok())
            .map(|s| s.points())
            .sum::<f64>()
            / n as f64
    }

    /// Immutable access to the underlying reputation engine.
    pub fn reputation(&self) -> &ReputationEngine {
        &self.reputation
    }

    /// Runs one rumour wave: spreading is gated by per-node propensity;
    /// afterwards sharers are audited and adapt.
    pub fn run_wave<R: Rng + ?Sized>(
        &mut self,
        graph: &SocialGraph,
        rumor: Rumor,
        seeds: &[usize],
        prop_config: &PropagationConfig,
        rng: &mut R,
    ) -> f64 {
        // Each avatar decides *once* per content item whether to endorse
        // and forward it: first an optional verification check (which
        // unmasks false content), then a propensity roll.
        let decisions: Vec<bool> = (0..graph.len())
            .map(|node| {
                if !self.config.enabled {
                    return true;
                }
                if !rumor.veracity
                    && rng.gen_bool(self.verification[node].clamp(0.0, 1.0))
                {
                    return false;
                }
                rng.gen_bool(self.propensity[node].clamp(0.0, 1.0))
            })
            .collect();
        let mut sharers: Vec<usize> = Vec::new();
        let (report, states) = spread(graph, rumor, seeds, prop_config, rng, |node, _| {
            let shares = decisions[node];
            if shares {
                sharers.push(node);
            }
            shares
        });

        if self.config.enabled {
            sharers.sort_unstable();
            sharers.dedup();
            for &node in &sharers {
                if !rng.gen_bool(self.config.audit_probability.clamp(0.0, 1.0)) {
                    continue;
                }
                let name = format!("avatar-{node}");
                if rumor.veracity {
                    let _ = self.reputation.system_delta(
                        &name,
                        self.config.reward_millis,
                        "trust:accurate-share",
                        0,
                    );
                    self.propensity[node] =
                        (self.propensity[node] + self.config.caution_step * 0.1).min(0.99);
                } else {
                    let _ = self.reputation.system_delta(
                        &name,
                        -self.config.penalty_millis,
                        "trust:misinformation",
                        0,
                    );
                    // Burned sharers learn to verify before forwarding.
                    self.verification[node] =
                        (self.verification[node] + self.config.caution_step).min(0.95);
                    self.propensity[node] =
                        (self.propensity[node] - self.config.caution_step * 0.3).max(0.05);
                }
            }
        }
        let _ = states;
        report.outbreak_size
    }

    /// Runs the full E11 protocol: `waves` alternating false/true rumour
    /// waves from random seeds.
    pub fn run_experiment<R: Rng + ?Sized>(
        &mut self,
        graph: &SocialGraph,
        waves: usize,
        prop_config: &PropagationConfig,
        rng: &mut R,
    ) -> TrustExperimentReport {
        let mut false_outbreaks = Vec::new();
        let mut true_outbreaks = Vec::new();
        for wave in 0..waves {
            let veracity = wave % 2 == 1;
            let rumor = Rumor { veracity, virality: 0.85 };
            let seeds: Vec<usize> = (0..3).map(|_| rng.gen_range(0..graph.len())).collect();
            let size = self.run_wave(graph, rumor, &seeds, prop_config, rng);
            if veracity {
                true_outbreaks.push(size);
            } else {
                false_outbreaks.push(size);
            }
        }
        TrustExperimentReport {
            enabled: self.config.enabled,
            false_outbreaks,
            true_outbreaks,
            final_propensity: self.mean_propensity(),
            final_reputation: self.mean_reputation(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(enabled: bool, seed: u64) -> (SocialGraph, TrustSystem, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = SocialGraph::small_world(300, 6, 0.1, &mut rng);
        let system = TrustSystem::new(300, TrustConfig { enabled, ..Default::default() });
        (graph, system, rng)
    }

    #[test]
    fn incentives_shrink_false_outbreaks_over_waves() {
        let (g_on, mut sys_on, mut rng_on) = setup(true, 81);
        let (g_off, mut sys_off, mut rng_off) = setup(false, 81);
        let cfg = PropagationConfig::default();
        let on = sys_on.run_experiment(&g_on, 16, &cfg, &mut rng_on);
        let off = sys_off.run_experiment(&g_off, 16, &cfg, &mut rng_off);
        assert!(
            on.late_false_outbreak() < off.late_false_outbreak() * 0.7,
            "incentives: {} vs baseline {}",
            on.late_false_outbreak(),
            off.late_false_outbreak()
        );
    }

    #[test]
    fn population_learns_caution() {
        let (g, mut sys, mut rng) = setup(true, 82);
        let p_before = sys.mean_propensity();
        let v_before = sys.mean_verification();
        sys.run_experiment(&g, 10, &PropagationConfig::default(), &mut rng);
        assert!(sys.mean_propensity() < p_before, "propensity drops");
        assert!(sys.mean_verification() > v_before, "verification rises");
    }

    #[test]
    fn misinformation_costs_reputation() {
        let (g, mut sys, mut rng) = setup(true, 83);
        let before = sys.mean_reputation();
        // Run only false waves.
        for _ in 0..6 {
            let rumor = Rumor { veracity: false, virality: 0.9 };
            sys.run_wave(&g, rumor, &[0, 1, 2], &PropagationConfig::default(), &mut rng);
        }
        assert!(sys.mean_reputation() < before);
    }

    #[test]
    fn disabled_system_never_adapts() {
        let (g, mut sys, mut rng) = setup(false, 84);
        sys.run_experiment(&g, 8, &PropagationConfig::default(), &mut rng);
        assert!((sys.mean_propensity() - 0.9).abs() < 1e-12);
        assert!((sys.mean_verification() - 0.05).abs() < 1e-12);
        assert!((sys.mean_reputation() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn false_content_suppressed_more_than_true() {
        // Selectivity is relative: the incentive system should cost false
        // content a larger fraction of its baseline reach than it costs
        // true content. (It is not free for true content — an honest
        // trade-off E11 reports.)
        let late = |xs: &[f64]| {
            let n = xs.len();
            let tail = &xs[n - (n / 4).max(1)..];
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        let (g_on, mut sys_on, mut rng_on) = setup(true, 85);
        let (g_off, mut sys_off, mut rng_off) = setup(false, 85);
        let cfg = PropagationConfig::default();
        let on = sys_on.run_experiment(&g_on, 24, &cfg, &mut rng_on);
        let off = sys_off.run_experiment(&g_off, 24, &cfg, &mut rng_off);
        let false_retained = late(&on.false_outbreaks) / late(&off.false_outbreaks).max(1e-9);
        let true_retained = late(&on.true_outbreaks) / late(&off.true_outbreaks).max(1e-9);
        assert!(
            true_retained > false_retained,
            "true content retains more reach: true {true_retained:.3} vs false {false_retained:.3}"
        );
    }

    #[test]
    fn propensity_bounds_hold() {
        let (g, mut sys, mut rng) = setup(true, 86);
        sys.run_experiment(&g, 30, &PropagationConfig::default(), &mut rng);
        for i in 0..300 {
            let p = sys.propensity(i);
            assert!((0.0..=1.0).contains(&p), "propensity {p}");
        }
    }
}
