//! Property-based tests for graph and propagation invariants.

use metaverse_social::graph::SocialGraph;
use metaverse_social::propagation::{spread, NodeState, PropagationConfig, Rumor};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    /// Graph generators produce symmetric adjacency with no self-loops
    /// and consistent edge counts.
    #[test]
    fn generators_produce_valid_graphs(
        n in 2usize..120,
        k in 2usize..8,
        beta in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for graph in [
            SocialGraph::small_world(n, k, beta, &mut rng),
            SocialGraph::scale_free(n, k / 2 + 1, &mut rng),
            SocialGraph::random(n, 0.1, &mut rng),
        ] {
            let mut degree_sum = 0;
            for node in 0..graph.len() {
                for &peer in graph.neighbors(node) {
                    prop_assert!(peer != node, "self loop at {node}");
                    prop_assert!(peer < graph.len());
                    prop_assert!(
                        graph.neighbors(peer).contains(&node),
                        "asymmetric edge {node}->{peer}"
                    );
                }
                degree_sum += graph.degree(node);
            }
            prop_assert_eq!(degree_sum, graph.edge_count() * 2);
        }
    }

    /// Outbreak size is a valid fraction, at least the (deduplicated)
    /// seed share, and believers+fact-checked never exceed the
    /// population.
    #[test]
    fn outbreak_size_bounds(
        n in 5usize..150,
        seeds in proptest::collection::vec(0usize..150, 1..5),
        transmission in 0.0f64..1.0,
        virality in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = SocialGraph::small_world(n, 4, 0.1, &mut rng);
        let valid_seeds: Vec<usize> = seeds.iter().map(|s| s % n).collect();
        let distinct: std::collections::HashSet<usize> =
            valid_seeds.iter().copied().collect();
        let config = PropagationConfig { transmission, ..Default::default() };
        let rumor = Rumor { veracity: false, virality };
        let (report, states) = spread(&graph, rumor, &valid_seeds, &config, &mut rng, |_, _| true);
        prop_assert!((0.0..=1.0).contains(&report.outbreak_size));
        prop_assert!(report.outbreak_size >= distinct.len() as f64 / n as f64 - 1e-12);
        let touched = states
            .iter()
            .filter(|s| !matches!(s, NodeState::Susceptible))
            .count();
        prop_assert!(touched <= n);
        prop_assert!(report.peak_believers <= n);
    }

    /// Monotonicity in transmission: averaged over seeds, higher
    /// transmission never shrinks the outbreak (single-seed paired
    /// comparison with common random numbers).
    #[test]
    fn transmission_monotone_paired(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = SocialGraph::small_world(100, 6, 0.1, &mut rng);
        let run = |t: f64| {
            let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
            let config = PropagationConfig { transmission: t, fact_check: 0.0, ..Default::default() };
            let rumor = Rumor { veracity: false, virality: 1.0 };
            spread(&graph, rumor, &[0], &config, &mut r, |_, _| true).0.outbreak_size
        };
        // With virality 1 and no fact-checking, t=1 infects the whole
        // component; t=0 only the seed.
        prop_assert!(run(1.0) >= run(0.0));
        prop_assert!((run(0.0) - 0.01).abs() < 1e-9);
    }

    /// Component sizes partition the graph.
    #[test]
    fn component_size_sane(n in 1usize..100, p in 0.0f64..0.2, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = SocialGraph::random(n, p, &mut rng);
        for node in 0..n {
            let c = graph.component_size(node);
            prop_assert!((1..=n).contains(&c));
        }
    }
}
