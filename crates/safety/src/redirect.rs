//! Redirected walking with artificial potential fields, and resets.
//!
//! Follows the shape of Bachmann et al. ("Multi-user redirected walking
//! and resetting using artificial potential fields", TVCG 2019), which
//! the paper cites as the §II-C mitigation: the physical heading is
//! steered away from hazards by a repulsive potential field, subtly
//! enough that the virtual path is preserved; when steering fails and a
//! hazard is imminent, the user performs a *reset* (stop, turn in place
//! toward safety) — safe but immersion-breaking. The figure of merit is
//! therefore resets (and collisions) per 100 m walked.

use metaverse_world::geometry::Vec2;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::room::PhysicalRoom;
use crate::walker::Walker;

/// Redirection parameters.
#[derive(Debug, Clone, Copy)]
pub struct RedirectionConfig {
    /// Whether APF steering is applied at all (the E5 baseline switch).
    pub enabled: bool,
    /// Steering gain: max radians the physical heading may deviate from
    /// the virtual heading per metre walked. Perceptual studies put the
    /// unnoticeable range around 0.1–0.3 rad/m; the E5 ablation sweeps
    /// this.
    pub gain: f64,
    /// Influence radius of hazards for the potential field.
    pub influence: f64,
    /// Clearance below which a reset is triggered.
    pub reset_clearance: f64,
}

impl Default for RedirectionConfig {
    fn default() -> Self {
        RedirectionConfig { enabled: true, gain: 0.25, influence: 2.0, reset_clearance: 0.45 }
    }
}

/// Outcome of a simulated walk — a row in the E5 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalkOutcome {
    /// Whether redirection was enabled.
    pub redirected: bool,
    /// Steering gain used.
    pub gain: f64,
    /// Total virtual distance walked (metres).
    pub distance: f64,
    /// Immersion-breaking resets performed.
    pub resets: u64,
    /// Actual collisions (a reset failed to trigger in time).
    pub collisions: u64,
    /// Resets per 100 m.
    pub resets_per_100m: f64,
    /// Collisions per 100 m.
    pub collisions_per_100m: f64,
}

/// Signed smallest angle from direction `from` to direction `to`.
fn angle_between(from: Vec2, to: Vec2) -> f64 {
    let a = from.y.atan2(from.x);
    let b = to.y.atan2(to.x);
    let mut diff = b - a;
    while diff > std::f64::consts::PI {
        diff -= std::f64::consts::TAU;
    }
    while diff < -std::f64::consts::PI {
        diff += std::f64::consts::TAU;
    }
    diff
}

/// Rotates a unit vector by `angle` radians.
fn rotate(v: Vec2, angle: f64) -> Vec2 {
    let (s, c) = angle.sin_cos();
    Vec2::new(v.x * c - v.y * s, v.x * s + v.y * c)
}

/// Computes the physical heading for one step and updates the walker's
/// injected-rotation state.
///
/// Redirected walking works by *accumulating* an imperceptible rotation
/// between the virtual and physical worlds: each step inside a hazard's
/// influence zone, the injected offset drifts toward the potential-field
/// escape direction at no more than `gain` radians per metre walked
/// (the perceptual detection threshold the E5 ablation sweeps). Away
/// from hazards the offset decays back at the same bounded rate.
pub fn steered_heading(
    walker: &mut Walker,
    room: &PhysicalRoom,
    config: &RedirectionConfig,
) -> Vec2 {
    let virtual_heading = walker.virtual_heading();
    if !config.enabled {
        return virtual_heading;
    }
    let rate = (config.gain * walker.speed).max(1e-6);
    let force = room.repulsion(&walker.physical, config.influence);
    let current_physical = rotate(virtual_heading, walker.redirect_offset);

    let desired_offset = if force.length() < 1e-9 {
        // No hazard nearby: relax the injected rotation toward zero.
        0.0
    } else {
        // Steer the physical heading toward the blend of where the user
        // wants to go and where the field pushes.
        let desired =
            current_physical.add(&force.normalized().scale(force.length().min(4.0))).normalized();
        walker.redirect_offset + angle_between(current_physical, desired)
    };

    let delta = (desired_offset - walker.redirect_offset).clamp(-rate, rate);
    walker.redirect_offset = (walker.redirect_offset + delta)
        .clamp(-std::f64::consts::PI, std::f64::consts::PI);
    rotate(virtual_heading, walker.redirect_offset)
}

/// Simulates a walk of `target_distance` virtual metres and reports
/// resets/collisions.
///
/// Reset mechanics: when room clearance at the walker falls below
/// `reset_clearance`, the user stops and is turned to face the room
/// centre (one reset); a collision is counted instead when clearance
/// falls below the body radius before a reset fires (fast approach).
pub fn simulate_walk<R: Rng + ?Sized>(
    room: &PhysicalRoom,
    config: &RedirectionConfig,
    target_distance: f64,
    rng: &mut R,
) -> WalkOutcome {
    let mut walker = Walker::new(room.bounds.center());
    walker.sample_goal(rng);
    let (mut resets, mut collisions) = (0u64, 0u64);

    while walker.distance_walked < target_distance {
        if walker.goal_reached() {
            walker.sample_goal(rng);
        }
        let heading = steered_heading(&mut walker, room, config);
        walker.step(heading);

        let clearance = room.clearance(&walker.physical);
        if clearance < walker.radius {
            // Actual contact: count a collision and recover to a safe
            // spot near the centre.
            collisions += 1;
            walker.physical = room.bounds.center();
            walker.sample_goal(rng);
        } else if clearance < config.reset_clearance {
            // Reset: stop, rotate the *virtual* goal so the user now
            // walks away from the hazard (2:1 turn abstracted away).
            resets += 1;
            walker.redirect_offset = 0.0; // reorientation clears injected rotation
            let inward = room.bounds.center().sub(&walker.physical).normalized();
            let dist = walker.virtual_pos.distance(&walker.goal).max(1.0);
            walker.goal = walker.virtual_pos.add(&inward.scale(dist));
            // Physically back off one body radius.
            walker.physical = walker.physical.add(&inward.scale(walker.radius));
        }
    }

    let d = walker.distance_walked;
    WalkOutcome {
        redirected: config.enabled,
        gain: config.gain,
        distance: d,
        resets,
        collisions,
        resets_per_100m: resets as f64 * 100.0 / d,
        collisions_per_100m: collisions as f64 * 100.0 / d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn room() -> PhysicalRoom {
        PhysicalRoom::empty(5.0, 5.0)
    }

    #[test]
    fn angle_between_signed_and_wrapped() {
        let x = Vec2::new(1.0, 0.0);
        let y = Vec2::new(0.0, 1.0);
        assert!((angle_between(x, y) - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert!((angle_between(y, x) + std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        // Across the ±π seam the short way is taken.
        let a = Vec2::new(-1.0, 1e-3).normalized();
        let b = Vec2::new(-1.0, -1e-3).normalized();
        assert!(angle_between(a, b).abs() < 0.01);
    }

    #[test]
    fn rotate_unit_vectors() {
        let x = Vec2::new(1.0, 0.0);
        let r = rotate(x, std::f64::consts::FRAC_PI_2);
        assert!((r.x).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12);
        assert!((rotate(x, 0.0).x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offset_accumulates_near_wall_and_decays_away() {
        let r = room();
        let mut w = Walker::new(Vec2::new(0.8, 2.5)); // inside influence
        w.goal = Vec2::new(-10.0, 0.0);
        let cfg = RedirectionConfig::default();
        for _ in 0..20 {
            steered_heading(&mut w, &r, &cfg);
        }
        let built_up = w.redirect_offset.abs();
        assert!(built_up > 0.05, "offset accumulates: {built_up}");
        // Move to the centre: no force, offset relaxes.
        w.physical = r.bounds.center();
        for _ in 0..2000 {
            steered_heading(&mut w, &r, &cfg);
        }
        assert!(w.redirect_offset.abs() < 1e-6, "offset decays: {}", w.redirect_offset);
    }

    #[test]
    fn steering_disabled_returns_virtual_heading() {
        let mut w = Walker::new(Vec2::new(0.6, 2.5)); // near left wall
        w.goal = Vec2::new(-10.0, 0.0);
        let cfg = RedirectionConfig { enabled: false, ..Default::default() };
        let vh = w.virtual_heading();
        assert_eq!(steered_heading(&mut w, &room(), &cfg), vh);
    }

    #[test]
    fn steering_bends_away_from_wall() {
        let mut w = Walker::new(Vec2::new(0.6, 2.5));
        w.virtual_pos = Vec2::ZERO;
        w.goal = Vec2::new(-10.0, 0.0); // virtual path heads into the wall
        let cfg = RedirectionConfig::default();
        let vh = w.virtual_heading();
        // Walk several steps so the injected rotation accumulates.
        let mut h = vh;
        for _ in 0..30 {
            h = steered_heading(&mut w, &room(), &cfg);
        }
        // Physical heading must have been rotated away from straight-in.
        assert!(h.x > vh.x, "steered {h:?} vs virtual {vh:?}");
    }

    #[test]
    fn redirection_reduces_resets() {
        let mut rng_on = StdRng::seed_from_u64(5);
        let mut rng_off = StdRng::seed_from_u64(5);
        let r = room();
        let on = simulate_walk(&r, &RedirectionConfig::default(), 300.0, &mut rng_on);
        let off = simulate_walk(
            &r,
            &RedirectionConfig { enabled: false, ..Default::default() },
            300.0,
            &mut rng_off,
        );
        assert!(
            on.resets_per_100m < off.resets_per_100m,
            "redirected {} vs baseline {}",
            on.resets_per_100m,
            off.resets_per_100m
        );
    }

    #[test]
    fn no_collisions_with_sane_reset_clearance() {
        let mut rng = StdRng::seed_from_u64(6);
        let out = simulate_walk(&room(), &RedirectionConfig::default(), 200.0, &mut rng);
        assert_eq!(out.collisions, 0, "resets should always fire first: {out:?}");
        assert!(out.distance >= 200.0);
    }

    #[test]
    fn furnished_room_harder_than_empty() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let empty = simulate_walk(&room(), &RedirectionConfig::default(), 200.0, &mut rng1);
        let mut furnished = room();
        furnished.add_obstacle(Vec2::new(1.5, 1.5), 0.4);
        furnished.add_obstacle(Vec2::new(3.5, 3.5), 0.4);
        let hard = simulate_walk(&furnished, &RedirectionConfig::default(), 200.0, &mut rng2);
        assert!(hard.resets >= empty.resets);
    }

    #[test]
    fn outcome_rates_consistent() {
        let mut rng = StdRng::seed_from_u64(8);
        let out = simulate_walk(&room(), &RedirectionConfig::default(), 150.0, &mut rng);
        let expect = out.resets as f64 * 100.0 / out.distance;
        assert!((out.resets_per_100m - expect).abs() < 1e-9);
    }
}
