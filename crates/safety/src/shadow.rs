//! Shadow avatars for co-located multi-user VR (experiment E4).
//!
//! Implements the mitigation of Langbehn et al. that the paper cites:
//! physically co-located users are rendered *into* each other's virtual
//! worlds as shadow avatars, so users steer around each other even
//! though the HMD occludes the real person. With shadows off, users
//! walk their virtual paths blind to each other and collide.

use metaverse_world::geometry::Vec2;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::redirect::{steered_heading, RedirectionConfig};
use crate::room::PhysicalRoom;
use crate::walker::Walker;

/// Parameters of a co-located multi-user simulation.
#[derive(Debug, Clone)]
pub struct ShadowConfig {
    /// Number of users sharing the physical room.
    pub users: usize,
    /// Whether shadow avatars are rendered (the E4 switch).
    pub shadows_enabled: bool,
    /// Distance at which a user reacts to a shadow avatar.
    pub avoidance_radius: f64,
    /// Strength of the mutual-avoidance steering (radians per step).
    pub avoidance_gain: f64,
    /// Virtual distance each user walks.
    pub distance: f64,
    /// Whether wall redirection also runs (both mitigations compose).
    pub wall_redirection: bool,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        ShadowConfig {
            users: 3,
            shadows_enabled: true,
            avoidance_radius: 1.2,
            avoidance_gain: 0.5,
            distance: 150.0,
            wall_redirection: true,
        }
    }
}

/// Result of a co-located simulation — a row in the E4 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShadowReport {
    /// Whether shadows were rendered.
    pub shadows_enabled: bool,
    /// Number of users.
    pub users: usize,
    /// Total user–user collisions.
    pub person_collisions: u64,
    /// Collisions per user per 100 m.
    pub collisions_per_100m: f64,
    /// Total wall/obstacle resets across users.
    pub resets: u64,
}

/// Runs the co-located scenario.
pub fn run_shadow_sim<R: Rng + ?Sized>(
    room: &PhysicalRoom,
    config: &ShadowConfig,
    rng: &mut R,
) -> ShadowReport {
    let redirect = RedirectionConfig {
        enabled: config.wall_redirection,
        ..RedirectionConfig::default()
    };

    // Spread users across the room.
    let mut walkers: Vec<Walker> = (0..config.users)
        .map(|i| {
            let frac = (i as f64 + 1.0) / (config.users as f64 + 1.0);
            let mut w = Walker::new(Vec2::new(
                room.bounds.width * frac,
                room.bounds.height * frac,
            ));
            w.sample_goal(rng);
            w
        })
        .collect();

    let mut person_collisions = 0u64;
    let mut resets = 0u64;
    // Cooldown so one physical contact is not counted on every tick the
    // two bodies overlap.
    let mut contact_cooldown = vec![vec![0u32; config.users]; config.users];

    while walkers.iter().any(|w| w.distance_walked < config.distance) {
        let positions: Vec<Vec2> = walkers.iter().map(|w| w.physical).collect();
        for i in 0..walkers.len() {
            if walkers[i].distance_walked >= config.distance {
                continue;
            }
            if walkers[i].goal_reached() {
                walkers[i].sample_goal(rng);
            }
            let mut heading = steered_heading(&mut walkers[i], room, &redirect);

            if config.shadows_enabled {
                // Mutual avoidance: steer away from nearby shadow
                // avatars, weighted by proximity.
                let mut avoid = Vec2::ZERO;
                for (j, pos) in positions.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let away = walkers[i].physical.sub(pos);
                    let d = away.length();
                    if d < config.avoidance_radius && d > 1e-9 {
                        avoid = avoid.add(
                            &away.normalized().scale((config.avoidance_radius - d) / config.avoidance_radius),
                        );
                    }
                }
                if avoid.length() > 1e-9 {
                    heading = heading
                        .add(&avoid.normalized().scale(config.avoidance_gain))
                        .normalized();
                }
            }

            walkers[i].step(heading);

            // Wall/obstacle reset handling (same mechanics as E5).
            let clearance = room.clearance(&walkers[i].physical);
            if clearance < redirect.reset_clearance {
                resets += 1;
                walkers[i].redirect_offset = 0.0;
                let inward = room.bounds.center().sub(&walkers[i].physical).normalized();
                let dist = walkers[i].virtual_pos.distance(&walkers[i].goal).max(1.0);
                walkers[i].goal = walkers[i].virtual_pos.add(&inward.scale(dist));
                walkers[i].physical =
                    walkers[i].physical.add(&inward.scale(walkers[i].radius));
            }

            // Person-to-person collision check.
            for j in 0..walkers.len() {
                if i == j {
                    continue;
                }
                if contact_cooldown[i][j] > 0 {
                    contact_cooldown[i][j] -= 1;
                    continue;
                }
                if walkers[i].collides_with(&walkers[j]) {
                    person_collisions += 1;
                    contact_cooldown[i][j] = 40;
                    contact_cooldown[j][i] = 40;
                }
            }
        }
    }

    let total_distance: f64 = walkers.iter().map(|w| w.distance_walked).sum();
    ShadowReport {
        shadows_enabled: config.shadows_enabled,
        users: config.users,
        person_collisions,
        collisions_per_100m: person_collisions as f64 * 100.0 / total_distance.max(1e-9),
        resets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn room() -> PhysicalRoom {
        PhysicalRoom::empty(6.0, 6.0)
    }

    #[test]
    fn shadows_reduce_person_collisions() {
        let mut rng_on = StdRng::seed_from_u64(9);
        let mut rng_off = StdRng::seed_from_u64(9);
        let on = run_shadow_sim(&room(), &ShadowConfig::default(), &mut rng_on);
        let off = run_shadow_sim(
            &room(),
            &ShadowConfig { shadows_enabled: false, ..Default::default() },
            &mut rng_off,
        );
        assert!(
            on.collisions_per_100m < off.collisions_per_100m,
            "shadows on {} vs off {}",
            on.collisions_per_100m,
            off.collisions_per_100m
        );
        assert!(off.person_collisions > 0, "baseline must actually collide");
    }

    #[test]
    fn single_user_never_person_collides() {
        let mut rng = StdRng::seed_from_u64(10);
        let report = run_shadow_sim(
            &room(),
            &ShadowConfig { users: 1, distance: 60.0, ..Default::default() },
            &mut rng,
        );
        assert_eq!(report.person_collisions, 0);
    }

    #[test]
    fn more_users_more_collisions() {
        let run = |n: usize| {
            let mut rng = StdRng::seed_from_u64(11);
            run_shadow_sim(
                &room(),
                &ShadowConfig {
                    users: n,
                    shadows_enabled: false,
                    distance: 80.0,
                    ..Default::default()
                },
                &mut rng,
            )
            .collisions_per_100m
        };
        assert!(run(5) > run(2), "density raises collision rate");
    }

    #[test]
    fn report_totals_consistent() {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = ShadowConfig { distance: 50.0, ..Default::default() };
        let r = run_shadow_sim(&room(), &cfg, &mut rng);
        assert_eq!(r.users, cfg.users);
        assert!(r.collisions_per_100m >= 0.0);
    }
}
