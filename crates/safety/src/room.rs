//! Physical rooms and obstacles.

use metaverse_world::geometry::{Bounds, Vec2};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A circular physical obstacle (furniture, a pet, a wall fixture).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Centre position.
    pub position: Vec2,
    /// Radius.
    pub radius: f64,
}

/// A rectangular physical room with obstacles.
#[derive(Debug, Clone)]
pub struct PhysicalRoom {
    /// Walkable bounds.
    pub bounds: Bounds,
    /// Obstacles inside the room.
    pub obstacles: Vec<Obstacle>,
}

impl PhysicalRoom {
    /// An empty room of the given size.
    pub fn empty(width: f64, height: f64) -> Self {
        PhysicalRoom { bounds: Bounds::new(width, height), obstacles: Vec::new() }
    }

    /// A room with `n` randomly placed obstacles, kept away from the
    /// centre so a starting user is never spawned inside furniture.
    pub fn furnished<R: Rng + ?Sized>(width: f64, height: f64, n: usize, rng: &mut R) -> Self {
        let mut room = Self::empty(width, height);
        let centre = room.bounds.center();
        let mut attempts = 0;
        while room.obstacles.len() < n && attempts < n * 50 {
            attempts += 1;
            let candidate = Obstacle {
                position: Vec2::new(rng.gen_range(0.0..width), rng.gen_range(0.0..height)),
                radius: rng.gen_range(0.2..0.5),
            };
            if candidate.position.distance(&centre) > 1.5 {
                room.obstacles.push(candidate);
            }
        }
        room
    }

    /// Adds an obstacle.
    pub fn add_obstacle(&mut self, position: Vec2, radius: f64) {
        self.obstacles.push(Obstacle { position, radius });
    }

    /// Distance from `p` to the nearest hazard surface: the smaller of
    /// wall clearance and nearest-obstacle clearance. Negative inside an
    /// obstacle or outside the walls.
    pub fn clearance(&self, p: &Vec2) -> f64 {
        let wall = self.bounds.wall_distance(p);
        let obstacle = self
            .obstacles
            .iter()
            .map(|o| p.distance(&o.position) - o.radius)
            .fold(f64::INFINITY, f64::min);
        wall.min(obstacle)
    }

    /// Whether a body of `radius` at `p` collides with a wall or
    /// obstacle.
    pub fn collides(&self, p: &Vec2, radius: f64) -> bool {
        self.clearance(p) < radius
    }

    /// Net repulsive force at `p` from walls and obstacles, following the
    /// artificial-potential-field formulation: each hazard closer than
    /// `influence` contributes `(1/d − 1/influence)/d²` away from itself.
    pub fn repulsion(&self, p: &Vec2, influence: f64) -> Vec2 {
        let mut force = Vec2::ZERO;
        // Walls: four axis-aligned contributions.
        let contributions = [
            (p.x, Vec2::new(1.0, 0.0)),                       // left wall
            (self.bounds.width - p.x, Vec2::new(-1.0, 0.0)),  // right wall
            (p.y, Vec2::new(0.0, 1.0)),                       // bottom wall
            (self.bounds.height - p.y, Vec2::new(0.0, -1.0)), // top wall
        ];
        for (d, dir) in contributions {
            let d = d.max(1e-3);
            if d < influence {
                let magnitude = (1.0 / d - 1.0 / influence) / (d * d);
                force = force.add(&dir.scale(magnitude));
            }
        }
        for o in &self.obstacles {
            let away = p.sub(&o.position);
            let d = (away.length() - o.radius).max(1e-3);
            if d < influence {
                let magnitude = (1.0 / d - 1.0 / influence) / (d * d);
                force = force.add(&away.normalized().scale(magnitude));
            }
        }
        force
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clearance_in_empty_room() {
        let room = PhysicalRoom::empty(10.0, 10.0);
        assert_eq!(room.clearance(&Vec2::new(5.0, 5.0)), 5.0);
        assert_eq!(room.clearance(&Vec2::new(1.0, 5.0)), 1.0);
        assert!(!room.collides(&Vec2::new(5.0, 5.0), 0.3));
        assert!(room.collides(&Vec2::new(0.2, 5.0), 0.3));
    }

    #[test]
    fn obstacle_clearance() {
        let mut room = PhysicalRoom::empty(10.0, 10.0);
        room.add_obstacle(Vec2::new(5.0, 5.0), 1.0);
        assert!((room.clearance(&Vec2::new(7.0, 5.0)) - 1.0).abs() < 1e-12);
        assert!(room.clearance(&Vec2::new(5.5, 5.0)) < 0.0, "inside the obstacle");
        assert!(room.collides(&Vec2::new(6.2, 5.0), 0.3));
    }

    #[test]
    fn repulsion_points_away_from_near_wall() {
        let room = PhysicalRoom::empty(10.0, 10.0);
        let f = room.repulsion(&Vec2::new(0.5, 5.0), 2.0);
        assert!(f.x > 0.0, "pushed right, away from left wall: {f:?}");
        assert!(f.y.abs() < 1e-9);
    }

    #[test]
    fn repulsion_zero_far_from_everything() {
        let room = PhysicalRoom::empty(20.0, 20.0);
        let f = room.repulsion(&Vec2::new(10.0, 10.0), 2.0);
        assert!(f.length() < 1e-12);
    }

    #[test]
    fn repulsion_from_obstacle() {
        let mut room = PhysicalRoom::empty(20.0, 20.0);
        room.add_obstacle(Vec2::new(10.0, 10.0), 0.5);
        let f = room.repulsion(&Vec2::new(11.0, 10.0), 2.0);
        assert!(f.x > 0.0, "pushed away from obstacle: {f:?}");
    }

    #[test]
    fn furnished_keeps_centre_clear() {
        let mut rng = StdRng::seed_from_u64(8);
        let room = PhysicalRoom::furnished(6.0, 6.0, 5, &mut rng);
        assert!(!room.obstacles.is_empty());
        let centre = room.bounds.center();
        assert!(room.clearance(&centre) > 0.5, "centre must stay walkable");
    }

    #[test]
    fn repulsion_grows_closer_to_wall() {
        let room = PhysicalRoom::empty(10.0, 10.0);
        let near = room.repulsion(&Vec2::new(0.3, 5.0), 2.0).length();
        let far = room.repulsion(&Vec2::new(1.5, 5.0), 2.0).length();
        assert!(near > far);
    }
}
