//! A walking VR user: virtual goals, physical mapping, collisions.

use metaverse_world::geometry::Vec2;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::room::PhysicalRoom;

/// What a walker hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollisionKind {
    /// A wall of the physical room.
    Wall,
    /// A physical obstacle.
    Obstacle,
    /// Another co-located user.
    Person,
}

/// A VR user walking a virtual path mapped into a physical room.
///
/// The walker follows randomly sampled *virtual* waypoints. With no
/// intervention the physical heading equals the virtual heading (1:1
/// mapping) and, because the HMD occludes the physical world (§II-C),
/// the walker strides straight into walls. Redirection policies rotate
/// the physical heading; see [`crate::redirect`].
#[derive(Debug, Clone)]
pub struct Walker {
    /// Physical position in the room.
    pub physical: Vec2,
    /// Virtual position in the (unbounded) virtual world.
    pub virtual_pos: Vec2,
    /// Current virtual waypoint.
    pub goal: Vec2,
    /// Body radius for collision tests.
    pub radius: f64,
    /// Walking speed per tick (metres).
    pub speed: f64,
    /// Total virtual distance walked.
    pub distance_walked: f64,
    /// Accumulated redirection: the rotation (radians) currently injected
    /// between the virtual and physical headings. Maintained by
    /// [`crate::redirect::steered_heading`].
    pub redirect_offset: f64,
}

impl Walker {
    /// Creates a walker at a physical starting point.
    pub fn new(physical: Vec2) -> Self {
        Walker {
            physical,
            virtual_pos: Vec2::ZERO,
            goal: Vec2::ZERO,
            radius: 0.3,
            speed: 0.07, // ~1.4 m/s at 20 Hz
            distance_walked: 0.0,
            redirect_offset: 0.0,
        }
    }

    /// Samples a fresh virtual waypoint 3–10 m away in a random
    /// direction.
    pub fn sample_goal<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let dist = rng.gen_range(3.0..10.0);
        self.goal = self
            .virtual_pos
            .add(&Vec2::new(angle.cos() * dist, angle.sin() * dist));
    }

    /// The virtual heading toward the current goal (unit vector).
    pub fn virtual_heading(&self) -> Vec2 {
        self.goal.sub(&self.virtual_pos).normalized()
    }

    /// Whether the current goal has been reached.
    pub fn goal_reached(&self) -> bool {
        self.virtual_pos.distance(&self.goal) < 0.2
    }

    /// Advances one tick along `physical_heading` (unit vector): the
    /// virtual position advances along the virtual heading, the physical
    /// position along the (possibly redirected) physical heading.
    pub fn step(&mut self, physical_heading: Vec2) {
        let v = self.virtual_heading().scale(self.speed);
        self.virtual_pos = self.virtual_pos.add(&v);
        self.physical = self.physical.add(&physical_heading.normalized().scale(self.speed));
        self.distance_walked += self.speed;
    }

    /// Checks the walker's physical position against the room. Returns
    /// the collision kind, if any.
    pub fn check_collision(&self, room: &PhysicalRoom) -> Option<CollisionKind> {
        if room.bounds.wall_distance(&self.physical) < self.radius {
            return Some(CollisionKind::Wall);
        }
        for o in &room.obstacles {
            if self.physical.distance(&o.position) < self.radius + o.radius {
                return Some(CollisionKind::Obstacle);
            }
        }
        None
    }

    /// Collision test against another user.
    pub fn collides_with(&self, other: &Walker) -> bool {
        self.physical.distance(&other.physical) < self.radius + other.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn step_advances_both_spaces() {
        let mut w = Walker::new(Vec2::new(2.0, 2.0));
        w.goal = Vec2::new(10.0, 0.0);
        let before_v = w.virtual_pos;
        let before_p = w.physical;
        w.step(Vec2::new(0.0, 1.0));
        assert!(w.virtual_pos.x > before_v.x, "virtual moves toward goal");
        assert!(w.physical.y > before_p.y, "physical follows given heading");
        assert!((w.distance_walked - w.speed).abs() < 1e-12);
    }

    #[test]
    fn goal_reached_detection() {
        let mut w = Walker::new(Vec2::ZERO);
        w.goal = Vec2::new(0.1, 0.0);
        assert!(w.goal_reached());
        w.goal = Vec2::new(5.0, 0.0);
        assert!(!w.goal_reached());
    }

    #[test]
    fn sampled_goals_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = Walker::new(Vec2::ZERO);
        for _ in 0..100 {
            w.sample_goal(&mut rng);
            let d = w.virtual_pos.distance(&w.goal);
            assert!((3.0..=10.0).contains(&d), "goal distance {d}");
        }
    }

    #[test]
    fn wall_collision_detected() {
        let room = PhysicalRoom::empty(4.0, 4.0);
        let mut w = Walker::new(Vec2::new(2.0, 2.0));
        assert_eq!(w.check_collision(&room), None);
        w.physical = Vec2::new(0.1, 2.0);
        assert_eq!(w.check_collision(&room), Some(CollisionKind::Wall));
    }

    #[test]
    fn obstacle_collision_detected() {
        let mut room = PhysicalRoom::empty(6.0, 6.0);
        room.add_obstacle(Vec2::new(3.0, 3.0), 0.4);
        let mut w = Walker::new(Vec2::new(3.0, 3.6));
        assert_eq!(w.check_collision(&room), Some(CollisionKind::Obstacle));
        w.physical = Vec2::new(3.0, 4.5);
        assert_eq!(w.check_collision(&room), None);
    }

    #[test]
    fn person_collision() {
        let a = Walker::new(Vec2::new(1.0, 1.0));
        let mut b = Walker::new(Vec2::new(1.4, 1.0));
        assert!(a.collides_with(&b));
        b.physical = Vec2::new(2.0, 1.0);
        assert!(!a.collides_with(&b));
    }
}
