//! # metaverse-safety
//!
//! Physical-safety substrate for `metaverse-kit`, implementing §II-C of
//! the paper:
//!
//! > "The current HMDs that are used to display the metaverse can occlude
//! > the physical world and the ability of users to detect nearby
//! > objects, increasing the risk of falling."
//!
//! and the two mitigations it cites:
//!
//! > "the visualization of real users […] as virtual ('shadow') avatars
//! > to avoid collisions in multi-user VR experiences" (Langbehn et al.)
//!
//! > "Redirecting users' walking while disrupting their immersion in the
//! > virtual world reduces the collision with physical objects"
//! > (Bachmann et al., artificial potential fields)
//!
//! The VR lab the original studies used is hardware-gated, so this crate
//! simulates room-scale walking: a physical room with walls, obstacles,
//! and co-located users; virtual paths that users try to follow 1:1; and
//! the two mitigations as steering policies. Experiments E4/E5 measure
//! collision and reset rates with each mitigation on and off.
//!
//! Components:
//!
//! * [`room`] — physical rooms, obstacles.
//! * [`walker`] — a walking VR user: virtual goal following, physical
//!   mapping, collision detection.
//! * [`redirect`] — artificial-potential-field redirected walking and
//!   reset mechanics (E5).
//! * [`shadow`] — multi-user co-located simulation with shadow-avatar
//!   mutual avoidance (E4).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod redirect;
pub mod room;
pub mod shadow;
pub mod walker;

pub use redirect::{RedirectionConfig, WalkOutcome};
pub use room::{Obstacle, PhysicalRoom};
pub use shadow::{ShadowConfig, ShadowReport};
pub use walker::{CollisionKind, Walker};
