//! The module-health lattice.

use serde::{Deserialize, Serialize};

/// Health of one module slot, ordered as a lattice:
/// `Healthy < Degraded < Failed`.
///
/// * `Healthy` — the module serves requests normally.
/// * `Degraded` — the module is on probation (a circuit breaker is
///   half-open, or the module is catching up after a stall); requests
///   are served but the platform watches for relapse.
/// * `Failed` — the module is down; the platform applies its fail-closed
///   fallback (deny-by-default privacy, queue-and-hold moderation,
///   refused governance writes).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum HealthState {
    /// Fully operational.
    #[default]
    Healthy,
    /// Operational but on probation.
    Degraded,
    /// Down; fallbacks active.
    Failed,
}

impl HealthState {
    /// Stable label for ledger records.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Failed => "failed",
        }
    }

    /// Lattice join: the worse of two states.
    pub fn join(self, other: HealthState) -> HealthState {
        self.max(other)
    }

    /// Whether the module may serve requests at all (`Healthy` or
    /// `Degraded`).
    pub fn is_operational(&self) -> bool {
        !matches!(self, HealthState::Failed)
    }

    /// Maps an SLO burn rate (milli: `measured * 1000 / threshold`, so
    /// 1000 = exactly at threshold) onto the lattice: under 800 is
    /// `Healthy`, 800 up to the threshold is `Degraded` (probation —
    /// the objective is close to tripping), at or over the threshold
    /// is `Failed`. This is how the ops plane's SLO engine lands on
    /// the same vocabulary the ledger's `HealthTransition` records
    /// already use.
    pub fn from_burn_milli(burn_milli: u64) -> HealthState {
        match burn_milli {
            0..=799 => HealthState::Healthy,
            800..=999 => HealthState::Degraded,
            _ => HealthState::Failed,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order() {
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Failed);
        assert_eq!(HealthState::Healthy.join(HealthState::Failed), HealthState::Failed);
        assert_eq!(HealthState::Degraded.join(HealthState::Healthy), HealthState::Degraded);
    }

    #[test]
    fn operational_predicate() {
        assert!(HealthState::Healthy.is_operational());
        assert!(HealthState::Degraded.is_operational());
        assert!(!HealthState::Failed.is_operational());
    }

    #[test]
    fn burn_rate_maps_onto_the_lattice() {
        assert_eq!(HealthState::from_burn_milli(0), HealthState::Healthy);
        assert_eq!(HealthState::from_burn_milli(799), HealthState::Healthy);
        assert_eq!(HealthState::from_burn_milli(800), HealthState::Degraded);
        assert_eq!(HealthState::from_burn_milli(999), HealthState::Degraded);
        assert_eq!(HealthState::from_burn_milli(1000), HealthState::Failed);
        assert_eq!(HealthState::from_burn_milli(u64::MAX), HealthState::Failed);
    }

    #[test]
    fn default_is_healthy() {
        assert_eq!(HealthState::default(), HealthState::Healthy);
        assert_eq!(HealthState::Failed.to_string(), "failed");
    }
}
