//! The module-health lattice.

use serde::{Deserialize, Serialize};

/// Health of one module slot, ordered as a lattice:
/// `Healthy < Degraded < Failed`.
///
/// * `Healthy` — the module serves requests normally.
/// * `Degraded` — the module is on probation (a circuit breaker is
///   half-open, or the module is catching up after a stall); requests
///   are served but the platform watches for relapse.
/// * `Failed` — the module is down; the platform applies its fail-closed
///   fallback (deny-by-default privacy, queue-and-hold moderation,
///   refused governance writes).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum HealthState {
    /// Fully operational.
    #[default]
    Healthy,
    /// Operational but on probation.
    Degraded,
    /// Down; fallbacks active.
    Failed,
}

impl HealthState {
    /// Stable label for ledger records.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Failed => "failed",
        }
    }

    /// Lattice join: the worse of two states.
    pub fn join(self, other: HealthState) -> HealthState {
        self.max(other)
    }

    /// Whether the module may serve requests at all (`Healthy` or
    /// `Degraded`).
    pub fn is_operational(&self) -> bool {
        !matches!(self, HealthState::Failed)
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order() {
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Failed);
        assert_eq!(HealthState::Healthy.join(HealthState::Failed), HealthState::Failed);
        assert_eq!(HealthState::Degraded.join(HealthState::Healthy), HealthState::Degraded);
    }

    #[test]
    fn operational_predicate() {
        assert!(HealthState::Healthy.is_operational());
        assert!(HealthState::Degraded.is_operational());
        assert!(!HealthState::Failed.is_operational());
    }

    #[test]
    fn default_is_healthy() {
        assert_eq!(HealthState::default(), HealthState::Healthy);
        assert_eq!(HealthState::Failed.to_string(), "failed");
    }
}
