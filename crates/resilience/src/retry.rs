//! Bounded retries with exponential backoff, in logical tick time.
//!
//! Wall-clock retries make experiment runs irreproducible, so every
//! retry in the workspace is expressed in the platform's logical `Tick`:
//! "try again `backoff(attempt)` ticks from now, at most `max_retries`
//! times, giving up entirely `timeout` ticks after the first attempt."
//! The twin sync channel uses it to schedule retransmissions; the
//! platform uses it to wait out a misbehaving validator before an epoch
//! commit.

use metaverse_ledger::Tick;
use serde::{Deserialize, Serialize};

/// A reusable retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of retries after the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in ticks.
    pub base_backoff: Tick,
    /// Multiplier applied per further retry (exponential backoff).
    pub backoff_factor: u32,
    /// Upper bound on any single backoff.
    pub max_backoff: Tick,
    /// Overall deadline: give up this many ticks after the first
    /// attempt, even with retries left (0 = no deadline).
    pub timeout: Tick,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_backoff: 2,
            backoff_factor: 2,
            max_backoff: 64,
            timeout: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based). `None` once
    /// retries are exhausted.
    pub fn backoff(&self, retry: u32) -> Option<Tick> {
        if retry == 0 || retry > self.max_retries {
            return None;
        }
        let factor = (self.backoff_factor as u64).saturating_pow(retry - 1);
        Some(self.base_backoff.saturating_mul(factor).min(self.max_backoff))
    }

    /// Total ticks spent if every retry is exhausted (ignores timeout).
    /// Saturates at `u64::MAX` instead of overflowing when the policy's
    /// bounds are themselves near the `Tick` ceiling.
    pub fn total_backoff(&self) -> Tick {
        (1..=self.max_retries)
            .filter_map(|r| self.backoff(r))
            .fold(0u64, |acc, b| acc.saturating_add(b))
    }

    /// Starts tracking one retried operation whose first attempt happens
    /// at `now`.
    pub fn begin(&self, now: Tick) -> RetryState {
        RetryState { policy: *self, first_attempt: now, retries_used: 0, next_due: now }
    }
}

/// Why a retried operation gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiveUpCause {
    /// The retry budget (`max_retries`) is spent.
    RetriesExhausted,
    /// The next retry would land past the policy's overall deadline.
    DeadlineExceeded,
}

impl GiveUpCause {
    /// Stable lowercase label for reports and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            GiveUpCause::RetriesExhausted => "retries_exhausted",
            GiveUpCause::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// What to do after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutcome {
    /// Retry at the given tick.
    RetryAt(Tick),
    /// Give up, for the stated reason.
    GiveUp(GiveUpCause),
}

impl RetryOutcome {
    /// Whether this outcome abandons the operation.
    pub fn gave_up(&self) -> bool {
        matches!(self, RetryOutcome::GiveUp(_))
    }
}

/// Book-keeping for one retried operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryState {
    policy: RetryPolicy,
    first_attempt: Tick,
    retries_used: u32,
    next_due: Tick,
}

impl RetryState {
    /// Whether an attempt is due at `now`.
    pub fn due(&self, now: Tick) -> bool {
        now >= self.next_due
    }

    /// Tick of the next scheduled attempt.
    pub fn next_due(&self) -> Tick {
        self.next_due
    }

    /// Retries consumed so far.
    pub fn retries_used(&self) -> u32 {
        self.retries_used
    }

    /// Registers a failed attempt at `now`; schedules the next retry or
    /// gives up.
    pub fn record_failure(&mut self, now: Tick) -> RetryOutcome {
        self.retries_used = self.retries_used.saturating_add(1);
        match self.policy.backoff(self.retries_used) {
            Some(delay) => {
                let due = now.saturating_add(delay);
                if self.policy.timeout > 0
                    && due.saturating_sub(self.first_attempt) > self.policy.timeout
                {
                    RetryOutcome::GiveUp(GiveUpCause::DeadlineExceeded)
                } else {
                    self.next_due = due;
                    RetryOutcome::RetryAt(due)
                }
            }
            None => RetryOutcome::GiveUp(GiveUpCause::RetriesExhausted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 6,
            base_backoff: 2,
            backoff_factor: 2,
            max_backoff: 20,
            timeout: 0,
        };
        assert_eq!(p.backoff(0), None, "attempt 0 is the initial try");
        assert_eq!(p.backoff(1), Some(2));
        assert_eq!(p.backoff(2), Some(4));
        assert_eq!(p.backoff(3), Some(8));
        assert_eq!(p.backoff(4), Some(16));
        assert_eq!(p.backoff(5), Some(20), "capped");
        assert_eq!(p.backoff(6), Some(20));
        assert_eq!(p.backoff(7), None, "exhausted");
        assert_eq!(p.total_backoff(), 2 + 4 + 8 + 16 + 20 + 20);
    }

    #[test]
    fn state_schedules_then_gives_up() {
        let p = RetryPolicy {
            max_retries: 2,
            base_backoff: 3,
            backoff_factor: 2,
            max_backoff: 100,
            timeout: 0,
        };
        let mut s = p.begin(10);
        assert!(s.due(10));
        assert_eq!(s.record_failure(10), RetryOutcome::RetryAt(13));
        assert!(!s.due(12));
        assert!(s.due(13));
        assert_eq!(s.record_failure(13), RetryOutcome::RetryAt(19));
        assert_eq!(s.record_failure(19), RetryOutcome::GiveUp(GiveUpCause::RetriesExhausted));
        assert_eq!(s.retries_used(), 3);
    }

    #[test]
    fn timeout_cuts_retries_short() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: 10,
            backoff_factor: 2,
            max_backoff: 1000,
            timeout: 25,
        };
        let mut s = p.begin(0);
        assert_eq!(s.record_failure(0), RetryOutcome::RetryAt(10));
        // Next retry would land at 10 + 20 = 30 > timeout 25: give up.
        assert_eq!(s.record_failure(10), RetryOutcome::GiveUp(GiveUpCause::DeadlineExceeded));
    }

    #[test]
    fn backoff_saturates_at_u64_bounds() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff: u64::MAX,
            backoff_factor: u32::MAX,
            max_backoff: u64::MAX,
            timeout: 0,
        };
        // Every per-retry backoff pins to the cap without overflowing…
        assert_eq!(p.backoff(1), Some(u64::MAX));
        assert_eq!(p.backoff(1000), Some(u64::MAX));
        // …and the sum saturates instead of wrapping.
        let capped = RetryPolicy { max_retries: 3, ..p };
        assert_eq!(capped.total_backoff(), u64::MAX);
        // Scheduling from near the end of tick time stays in range.
        let mut s = capped.begin(u64::MAX - 1);
        assert_eq!(s.record_failure(u64::MAX - 1), RetryOutcome::RetryAt(u64::MAX));
    }

    #[test]
    fn zero_retry_budget_gives_up_immediately() {
        let p = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        assert_eq!(p.backoff(1), None);
        assert_eq!(p.total_backoff(), 0);
        let mut s = p.begin(5);
        assert!(s.due(5), "the initial attempt itself is always due");
        assert_eq!(s.record_failure(5), RetryOutcome::GiveUp(GiveUpCause::RetriesExhausted));
        assert!(s.record_failure(6).gave_up(), "stays exhausted on repeat failures");
    }

    #[test]
    fn default_policy_is_sane() {
        let p = RetryPolicy::default();
        assert!(p.max_retries > 0);
        assert!(p.backoff(1).unwrap() >= 1);
    }
}
