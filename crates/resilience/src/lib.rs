//! # metaverse-resilience
//!
//! Deterministic fault injection and graceful-degradation primitives for
//! the metaverse platform.
//!
//! The paper's Figure-3 architecture is *modular* — interchangeable
//! decision-making, privacy, reputation, and moderation modules wired to
//! a shared ledger. Modularity only pays off if the platform keeps
//! governing correctly when a module is *not* healthy: a crashed DAO
//! scope, a stalled moderation queue, a lossy twin channel, a
//! misbehaving validator. This crate supplies the vocabulary the rest of
//! the workspace uses to model and survive those failures:
//!
//! * [`health`] — the `Healthy ≤ Degraded ≤ Failed` module-health
//!   lattice.
//! * [`fault`] — seeded, fully deterministic [`fault::FaultPlan`]s and
//!   the [`fault::FaultInjector`] that replays them in logical `Tick`
//!   time.
//! * [`breaker`] — a tick-time [`breaker::CircuitBreaker`]
//!   (closed → open → half-open) that converts repeated operation
//!   failures into explicit health transitions.
//! * [`retry`] — a bounded, exponential-backoff [`retry::RetryPolicy`]
//!   expressed in logical ticks, shared by the twin sync channel and the
//!   ledger epoch-commit path.
//!
//! Everything here is deterministic by construction: no wall-clock, no
//! global RNG. The same seed always produces the same fault schedule,
//! which is what lets experiment E19 compare "resilience on" vs
//! "resilience off" runs fault-for-fault.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod fault;
pub mod health;
pub mod retry;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use fault::{FaultInjector, FaultKind, FaultPlan, ScheduledFault};
pub use health::HealthState;
pub use retry::{GiveUpCause, RetryOutcome, RetryPolicy, RetryState};
