//! A circuit breaker in logical tick time.
//!
//! The platform does not get told when a module fails — it *observes*
//! operations against the module failing, and the breaker converts that
//! observation into an explicit state machine:
//!
//! ```text
//!            failures ≥ threshold within window
//!   Closed ──────────────────────────────────────▶ Open
//!     ▲                                             │ cooldown elapses
//!     │  probation_successes successes              ▼
//!     └───────────────────────────────────────── HalfOpen
//!                       (any failure reopens)
//! ```
//!
//! Every transition is returned to the caller so it can be mirrored into
//! the module registry's health state and recorded on the ledger — the
//! invariant tested by the workspace proptests is that a breaker never
//! opens without a ledger record of the transition.

use std::collections::VecDeque;

use metaverse_ledger::Tick;
use serde::{Deserialize, Serialize};

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive-window failure count that opens the breaker.
    pub failure_threshold: u32,
    /// Sliding window (in ticks) over which failures are counted.
    pub failure_window: Tick,
    /// Ticks the breaker stays open before probing (half-open).
    pub cooldown: Tick,
    /// Successes required in half-open state to close again.
    pub probation_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            failure_window: 50,
            cooldown: 25,
            probation_successes: 2,
        }
    }
}

/// Breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Tripped: requests are failed fast / fallbacks engaged until the
    /// given tick.
    Open {
        /// Tick at which the breaker transitions to half-open.
        until: Tick,
    },
    /// Probing: a limited number of requests are allowed through.
    HalfOpen {
        /// Successes observed so far during probation.
        successes: u32,
    },
}

impl BreakerState {
    /// Stable label for ledger records and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half-open",
        }
    }
}

/// A state transition the caller must mirror (ledger, health map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Tick the transition happened.
    pub at: Tick,
}

/// The breaker itself.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    failures: VecDeque<Tick>,
    opened_total: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            failures: VecDeque::new(),
            opened_total: 0,
        }
    }

    /// Current state (does not advance the clock; see [`Self::poll`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened over its lifetime.
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }

    /// Whether a request should be attempted at `now` (closed or
    /// half-open probing). An open breaker fails fast.
    pub fn allows_request(&self, now: Tick) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen { .. } => true,
            BreakerState::Open { until } => now >= until,
        }
    }

    /// Advances time-driven transitions: an open breaker whose cooldown
    /// elapsed becomes half-open. Returns the transition if one fired.
    pub fn poll(&mut self, now: Tick) -> Option<BreakerTransition> {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                return Some(self.transition(BreakerState::HalfOpen { successes: 0 }, now));
            }
        }
        None
    }

    /// Records a failed operation. May open (or re-open) the breaker.
    pub fn record_failure(&mut self, now: Tick) -> Option<BreakerTransition> {
        self.poll(now);
        match self.state {
            BreakerState::Closed => {
                self.failures.push_back(now);
                let horizon = now.saturating_sub(self.config.failure_window);
                while self.failures.front().is_some_and(|&t| t < horizon) {
                    self.failures.pop_front();
                }
                if self.failures.len() as u32 >= self.config.failure_threshold {
                    self.failures.clear();
                    self.opened_total += 1;
                    Some(self.transition(
                        BreakerState::Open { until: now + self.config.cooldown },
                        now,
                    ))
                } else {
                    None
                }
            }
            BreakerState::HalfOpen { .. } => {
                // A failure during probation re-opens immediately.
                self.opened_total += 1;
                Some(self.transition(BreakerState::Open { until: now + self.config.cooldown }, now))
            }
            BreakerState::Open { .. } => None,
        }
    }

    /// Records a successful operation. May close a half-open breaker.
    pub fn record_success(&mut self, now: Tick) -> Option<BreakerTransition> {
        self.poll(now);
        match self.state {
            BreakerState::HalfOpen { successes } => {
                let successes = successes + 1;
                if successes >= self.config.probation_successes {
                    self.failures.clear();
                    Some(self.transition(BreakerState::Closed, now))
                } else {
                    self.state = BreakerState::HalfOpen { successes };
                    None
                }
            }
            _ => None,
        }
    }

    fn transition(&mut self, to: BreakerState, at: Tick) -> BreakerTransition {
        let from = self.state;
        self.state = to;
        BreakerTransition { from, to, at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            failure_window: 10,
            cooldown: 5,
            probation_successes: 2,
        })
    }

    #[test]
    fn opens_after_threshold_within_window() {
        let mut b = breaker();
        assert!(b.record_failure(0).is_none());
        assert!(b.record_failure(1).is_none());
        let t = b.record_failure(2).expect("third failure opens");
        assert_eq!(t.to, BreakerState::Open { until: 7 });
        assert_eq!(b.opened_total(), 1);
        assert!(!b.allows_request(3));
    }

    #[test]
    fn old_failures_age_out() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        // Window is 10; by tick 20 the old failures no longer count.
        assert!(b.record_failure(20).is_none());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_then_halfopen_then_close() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        // Cooldown ends at tick 7.
        assert!(b.poll(6).is_none());
        let t = b.poll(7).expect("cooldown elapsed");
        assert_eq!(t.to, BreakerState::HalfOpen { successes: 0 });
        assert!(b.allows_request(7));
        assert!(b.record_success(8).is_none(), "one success is not enough");
        let t = b.record_success(9).expect("probation complete");
        assert_eq!(t.to, BreakerState::Closed);
    }

    #[test]
    fn halfopen_failure_reopens() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        b.poll(7);
        let t = b.record_failure(8).expect("probe failure reopens");
        assert_eq!(t.to, BreakerState::Open { until: 13 });
        assert_eq!(b.opened_total(), 2);
    }

    #[test]
    fn success_in_closed_state_is_noop() {
        let mut b = breaker();
        assert!(b.record_success(0).is_none());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn poll_inside_record_failure_bridges_open_to_halfopen() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t);
        }
        // Well past cooldown, a failure lands in half-open and reopens.
        let t = b.record_failure(50).expect("reopens");
        assert_eq!(t.from, BreakerState::HalfOpen { successes: 0 });
        assert_eq!(t.to, BreakerState::Open { until: 55 });
    }
}
