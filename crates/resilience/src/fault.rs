//! Seeded fault plans and their injector.
//!
//! A [`FaultPlan`] is a *schedule*: faults with explicit start ticks and
//! durations, either hand-written (tests) or generated deterministically
//! from a seed and an intensity (experiment sweeps). The
//! [`FaultInjector`] answers point-in-time queries ("is the moderation
//! module down at tick 1730?", "what loss rate does the twin channel
//! suffer right now?") so subsystems never need to know the plan's
//! shape, only the current weather.

use metaverse_ledger::Tick;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What kind of failure is injected. Module targets are referenced by
/// their slot label (e.g. `"privacy"`, `"moderation"`,
/// `"decision-making"`) so this crate stays below `metaverse-core` in
/// the dependency DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The module stops serving: every operation against it fails for
    /// the duration of the window.
    Crash {
        /// Slot label of the crashed module.
        module: String,
    },
    /// The module is alive but unresponsive; modelled identically to a
    /// crash for callers, but recorded distinctly for diagnosis.
    Stall {
        /// Slot label of the stalled module.
        module: String,
    },
    /// The physical→virtual twin channel drops updates at this rate for
    /// the duration of the window.
    LossyChannel {
        /// Probability an update is lost while the fault is active.
        loss_rate: f64,
    },
    /// The twin channel duplicates delivered updates at this rate.
    DuplicatingChannel {
        /// Probability a delivered update arrives twice.
        dup_rate: f64,
    },
    /// A PoA validator misbehaves: blocks cannot be sealed while the
    /// fault is active (the honest validators refuse its out-of-turn or
    /// malformed seals).
    RogueValidator {
        /// Identity of the misbehaving validator.
        validator: String,
    },
    /// A replication validator node crashes: it neither proposes nor
    /// acks while the window is open. The window's end models a
    /// *restart with its log intact* — the node comes back holding
    /// everything it had replicated before the crash and catches up on
    /// the suffix it missed.
    ValidatorCrash {
        /// Identity of the crashed validator node.
        validator: String,
    },
    /// A replication validator node is partitioned from the rest of the
    /// cluster: the node is alive (its log survives) but no proposal
    /// reaches it and no ack it sends is delivered while the window is
    /// open.
    ValidatorPartition {
        /// Identity of the partitioned validator node.
        validator: String,
    },
    /// A replication validator's acks still arrive, but late: each ack
    /// sent while the window is open is delayed by `delay` extra ticks.
    AckDelay {
        /// Identity of the slow validator node.
        validator: String,
        /// Extra ticks added to every ack sent during the window.
        delay: Tick,
    },
    /// A replication validator's acks are silently dropped: it receives
    /// and appends proposals (its log stays current) but its acks never
    /// reach the leader while the window is open.
    AckDrop {
        /// Identity of the validator whose acks are lost.
        validator: String,
    },
    /// A serving-layer client turns slowloris: while the window is open
    /// it delivers one byte per read, dragging frames out across many
    /// sweeps. Tick domain: the net server's sweep index.
    ConnSlowloris {
        /// Target connection id.
        conn: u64,
    },
    /// A serving-layer client vanishes mid-frame: when the window
    /// opens, the connection delivers bytes up to a point strictly
    /// inside its current frame and then resets. Tick domain: the net
    /// server's sweep index.
    ConnMidFrameDisconnect {
        /// Target connection id.
        conn: u64,
    },
    /// A serving-layer client stops draining acks while the window is
    /// open: every server write is refused, backing the server's write
    /// buffer up until it pauses reads (backpressure to the socket).
    /// Tick domain: the net server's sweep index.
    ConnAckStall {
        /// Target connection id.
        conn: u64,
    },
}

impl FaultKind {
    /// The module label a crash/stall targets, if any.
    pub fn module(&self) -> Option<&str> {
        match self {
            FaultKind::Crash { module } | FaultKind::Stall { module } => Some(module),
            _ => None,
        }
    }

    /// The validator identity a validator-scoped fault targets, if any.
    pub fn validator(&self) -> Option<&str> {
        match self {
            FaultKind::RogueValidator { validator }
            | FaultKind::ValidatorCrash { validator }
            | FaultKind::ValidatorPartition { validator }
            | FaultKind::AckDelay { validator, .. }
            | FaultKind::AckDrop { validator } => Some(validator),
            _ => None,
        }
    }

    /// The connection id a serving-layer fault targets, if any.
    pub fn conn(&self) -> Option<u64> {
        match self {
            FaultKind::ConnSlowloris { conn }
            | FaultKind::ConnMidFrameDisconnect { conn }
            | FaultKind::ConnAckStall { conn } => Some(*conn),
            _ => None,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Stall { .. } => "stall",
            FaultKind::LossyChannel { .. } => "lossy-channel",
            FaultKind::DuplicatingChannel { .. } => "dup-channel",
            FaultKind::RogueValidator { .. } => "rogue-validator",
            FaultKind::ValidatorCrash { .. } => "validator-crash",
            FaultKind::ValidatorPartition { .. } => "validator-partition",
            FaultKind::AckDelay { .. } => "ack-delay",
            FaultKind::AckDrop { .. } => "ack-drop",
            FaultKind::ConnSlowloris { .. } => "conn-slowloris",
            FaultKind::ConnMidFrameDisconnect { .. } => "conn-mid-frame-disconnect",
            FaultKind::ConnAckStall { .. } => "conn-ack-stall",
        }
    }
}

/// One fault with its activity window `[start, start + duration)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// First tick the fault is active.
    pub start: Tick,
    /// Number of ticks the fault stays active.
    pub duration: Tick,
    /// What fails.
    pub kind: FaultKind,
}

impl ScheduledFault {
    /// Whether the fault is active at `tick`.
    pub fn active_at(&self, tick: Tick) -> bool {
        tick >= self.start && tick < self.start.saturating_add(self.duration)
    }

    /// First tick after the window closes.
    pub fn end(&self) -> Tick {
        self.start.saturating_add(self.duration)
    }
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (nothing ever fails).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault window; builder-style.
    pub fn schedule(mut self, start: Tick, duration: Tick, kind: FaultKind) -> Self {
        self.faults.push(ScheduledFault { start, duration, kind });
        self.faults.sort_by_key(|f| f.start);
        self
    }

    /// Generates a plan deterministically from a seed: `count`
    /// single-module crash/stall faults spread over `[0, horizon)`, each
    /// lasting between `horizon/40` and `horizon/10` ticks, drawing
    /// targets uniformly from `modules`. When `validators` is non-empty,
    /// roughly every fourth fault is a rogue-validator window instead.
    ///
    /// The same `(seed, horizon, count, modules, validators)` always
    /// yields the same plan — that is the whole point.
    pub fn random(
        seed: u64,
        horizon: Tick,
        count: usize,
        modules: &[&str],
        validators: &[&str],
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        if modules.is_empty() || horizon < 40 {
            return plan;
        }
        for i in 0..count {
            let min_dur = (horizon / 40).max(1);
            let max_dur = (horizon / 10).max(min_dur + 1);
            let duration = rng.gen_range(min_dur..max_dur);
            let start = rng.gen_range(0..horizon.saturating_sub(duration).max(1));
            let kind = if !validators.is_empty() && i % 4 == 3 {
                let v = validators[rng.gen_range(0..validators.len())];
                FaultKind::RogueValidator { validator: v.to_string() }
            } else {
                let m = modules[rng.gen_range(0..modules.len())];
                if rng.gen_bool(0.5) {
                    FaultKind::Crash { module: m.to_string() }
                } else {
                    FaultKind::Stall { module: m.to_string() }
                }
            };
            plan = plan.schedule(start, duration, kind);
        }
        plan
    }

    /// All scheduled faults, in start order.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Builds the injector for this plan.
    pub fn injector(self) -> FaultInjector {
        FaultInjector { plan: self }
    }
}

/// Point-in-time oracle over a [`FaultPlan`].
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Injector over an explicit plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults active at `tick`.
    pub fn active_at(&self, tick: Tick) -> impl Iterator<Item = &ScheduledFault> {
        self.plan.faults.iter().filter(move |f| f.active_at(tick))
    }

    /// Whether a crash/stall fault on `module` is active at `tick`.
    pub fn module_down(&self, tick: Tick, module: &str) -> bool {
        self.active_at(tick).any(|f| f.kind.module() == Some(module))
    }

    /// When the currently-active fault window on `module` closes (first
    /// tick the module is back), if one is active at `tick`.
    pub fn module_recovery_tick(&self, tick: Tick, module: &str) -> Option<Tick> {
        self.active_at(tick)
            .filter(|f| f.kind.module() == Some(module))
            .map(ScheduledFault::end)
            .max()
    }

    /// Extra twin-channel loss rate injected at `tick` (the worst active
    /// lossy-channel fault), if any.
    pub fn channel_loss(&self, tick: Tick) -> Option<f64> {
        self.active_at(tick)
            .filter_map(|f| match f.kind {
                FaultKind::LossyChannel { loss_rate } => Some(loss_rate),
                _ => None,
            })
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// Twin-channel duplication rate injected at `tick`, if any.
    pub fn channel_dup(&self, tick: Tick) -> Option<f64> {
        self.active_at(tick)
            .filter_map(|f| match f.kind {
                FaultKind::DuplicatingChannel { dup_rate } => Some(dup_rate),
                _ => None,
            })
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// The misbehaving validator at `tick`, if a rogue-validator fault is
    /// active.
    pub fn rogue_validator(&self, tick: Tick) -> Option<&str> {
        self.active_at(tick).find_map(|f| match &f.kind {
            FaultKind::RogueValidator { validator } => Some(validator.as_str()),
            _ => None,
        })
    }

    /// When the currently-active rogue-validator window closes, if any.
    pub fn rogue_validator_recovery_tick(&self, tick: Tick) -> Option<Tick> {
        self.active_at(tick)
            .filter(|f| matches!(f.kind, FaultKind::RogueValidator { .. }))
            .map(ScheduledFault::end)
            .max()
    }

    /// Whether a [`FaultKind::ValidatorCrash`] on `validator` is active
    /// at `tick`.
    pub fn validator_crashed(&self, tick: Tick, validator: &str) -> bool {
        self.active_at(tick).any(|f| {
            matches!(&f.kind, FaultKind::ValidatorCrash { validator: v } if v == validator)
        })
    }

    /// Whether a [`FaultKind::ValidatorPartition`] on `validator` is
    /// active at `tick`.
    pub fn validator_partitioned(&self, tick: Tick, validator: &str) -> bool {
        self.active_at(tick).any(|f| {
            matches!(&f.kind, FaultKind::ValidatorPartition { validator: v } if v == validator)
        })
    }

    /// Whether `validator` is unreachable for replication at `tick`:
    /// crashed or partitioned. An unreachable node cannot lead, cannot
    /// receive proposals, and cannot deliver acks.
    pub fn validator_unreachable(&self, tick: Tick, validator: &str) -> bool {
        self.validator_crashed(tick, validator) || self.validator_partitioned(tick, validator)
    }

    /// Extra ack latency injected on `validator` at `tick` (the worst
    /// active [`FaultKind::AckDelay`]), if any.
    pub fn ack_delay(&self, tick: Tick, validator: &str) -> Option<Tick> {
        self.active_at(tick)
            .filter_map(|f| match &f.kind {
                FaultKind::AckDelay { validator: v, delay } if v == validator => Some(*delay),
                _ => None,
            })
            .max()
    }

    /// Whether acks from `validator` are dropped at `tick`.
    pub fn ack_dropped(&self, tick: Tick, validator: &str) -> bool {
        self.active_at(tick)
            .any(|f| matches!(&f.kind, FaultKind::AckDrop { validator: v } if v == validator))
    }

    /// Whether a [`FaultKind::ConnSlowloris`] on `conn` is active at
    /// `tick` (tick domain: net-server sweep index).
    pub fn conn_slowloris(&self, tick: Tick, conn: u64) -> bool {
        self.active_at(tick)
            .any(|f| matches!(f.kind, FaultKind::ConnSlowloris { conn: c } if c == conn))
    }

    /// Whether a [`FaultKind::ConnMidFrameDisconnect`] on `conn` is
    /// active at `tick` (tick domain: net-server sweep index).
    pub fn conn_disconnect(&self, tick: Tick, conn: u64) -> bool {
        self.active_at(tick)
            .any(|f| matches!(f.kind, FaultKind::ConnMidFrameDisconnect { conn: c } if c == conn))
    }

    /// Whether a [`FaultKind::ConnAckStall`] on `conn` is active at
    /// `tick` (tick domain: net-server sweep index).
    pub fn conn_ack_stall(&self, tick: Tick, conn: u64) -> bool {
        self.active_at(tick)
            .any(|f| matches!(f.kind, FaultKind::ConnAckStall { conn: c } if c == conn))
    }

    /// First tick `validator` is reachable again (the latest active
    /// crash/partition window on it closes), if one is active at `tick`.
    pub fn validator_recovery_tick(&self, tick: Tick, validator: &str) -> Option<Tick> {
        self.active_at(tick)
            .filter(|f| {
                matches!(
                    &f.kind,
                    FaultKind::ValidatorCrash { validator: v }
                    | FaultKind::ValidatorPartition { validator: v }
                    if v == validator
                )
            })
            .map(ScheduledFault::end)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let f = ScheduledFault {
            start: 10,
            duration: 5,
            kind: FaultKind::Crash { module: "privacy".into() },
        };
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(14));
        assert!(!f.active_at(15));
        assert_eq!(f.end(), 15);
    }

    #[test]
    fn injector_queries() {
        let plan = FaultPlan::new()
            .schedule(10, 5, FaultKind::Crash { module: "privacy".into() })
            .schedule(12, 10, FaultKind::LossyChannel { loss_rate: 0.4 })
            .schedule(12, 4, FaultKind::LossyChannel { loss_rate: 0.9 })
            .schedule(30, 5, FaultKind::RogueValidator { validator: "v1".into() });
        let inj = plan.injector();
        assert!(inj.module_down(11, "privacy"));
        assert!(!inj.module_down(11, "moderation"));
        assert_eq!(inj.module_recovery_tick(11, "privacy"), Some(15));
        assert_eq!(inj.channel_loss(13), Some(0.9), "worst active loss wins");
        assert_eq!(inj.channel_loss(20), Some(0.4));
        assert_eq!(inj.channel_loss(25), None);
        assert_eq!(inj.rogue_validator(32), Some("v1"));
        assert_eq!(inj.rogue_validator_recovery_tick(32), Some(35));
        assert_eq!(inj.rogue_validator(36), None);
    }

    #[test]
    fn random_plans_are_deterministic() {
        let mods = ["privacy", "moderation"];
        let vals = ["v0"];
        let a = FaultPlan::random(7, 2000, 10, &mods, &vals);
        let b = FaultPlan::random(7, 2000, 10, &mods, &vals);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 2000, 10, &mods, &vals);
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.len(), 10);
        assert!(a.faults().iter().all(|f| f.end() <= 2000 + 200));
    }

    #[test]
    fn random_plan_mixes_validator_faults() {
        let plan = FaultPlan::random(1, 4000, 8, &["privacy"], &["v0"]);
        let rogue =
            plan.faults().iter().filter(|f| matches!(f.kind, FaultKind::RogueValidator { .. }));
        assert_eq!(rogue.count(), 2, "every fourth fault targets the validator");
    }

    #[test]
    fn validator_scoped_queries() {
        let plan = FaultPlan::new()
            .schedule(10, 5, FaultKind::ValidatorCrash { validator: "s0-v1".into() })
            .schedule(12, 10, FaultKind::ValidatorPartition { validator: "s0-v2".into() })
            .schedule(20, 4, FaultKind::AckDelay { validator: "s0-v1".into(), delay: 3 })
            .schedule(21, 2, FaultKind::AckDelay { validator: "s0-v1".into(), delay: 7 })
            .schedule(30, 5, FaultKind::AckDrop { validator: "s0-v2".into() });
        let inj = plan.injector();
        assert!(inj.validator_crashed(11, "s0-v1"));
        assert!(!inj.validator_crashed(11, "s0-v2"));
        assert!(!inj.validator_crashed(15, "s0-v1"), "restart at window end");
        assert!(inj.validator_partitioned(13, "s0-v2"));
        assert!(inj.validator_unreachable(13, "s0-v2"));
        assert!(inj.validator_unreachable(13, "s0-v1"));
        assert!(!inj.validator_unreachable(25, "s0-v1"), "ack delay is not unreachability");
        assert_eq!(inj.validator_recovery_tick(11, "s0-v1"), Some(15));
        assert_eq!(inj.validator_recovery_tick(13, "s0-v2"), Some(22));
        assert_eq!(inj.validator_recovery_tick(25, "s0-v1"), None);
        assert_eq!(inj.ack_delay(20, "s0-v1"), Some(3));
        assert_eq!(inj.ack_delay(21, "s0-v1"), Some(7), "worst active delay wins");
        assert_eq!(inj.ack_delay(21, "s0-v2"), None);
        assert!(inj.ack_dropped(32, "s0-v2"));
        assert!(!inj.ack_dropped(35, "s0-v2"));
        assert_eq!(
            FaultKind::ValidatorCrash { validator: "x".into() }.validator(),
            Some("x")
        );
        assert_eq!(FaultKind::Crash { module: "m".into() }.validator(), None);
        assert_eq!(
            FaultKind::ValidatorPartition { validator: "x".into() }.label(),
            "validator-partition"
        );
    }

    #[test]
    fn conn_scoped_queries() {
        let plan = FaultPlan::new()
            .schedule(5, 10, FaultKind::ConnSlowloris { conn: 3 })
            .schedule(8, 4, FaultKind::ConnMidFrameDisconnect { conn: 7 })
            .schedule(20, 5, FaultKind::ConnAckStall { conn: 3 });
        let inj = plan.injector();
        assert!(inj.conn_slowloris(5, 3));
        assert!(!inj.conn_slowloris(5, 7), "conn-scoped, not global");
        assert!(!inj.conn_slowloris(15, 3), "window closed");
        assert!(inj.conn_disconnect(9, 7));
        assert!(!inj.conn_disconnect(9, 3));
        assert!(inj.conn_ack_stall(22, 3));
        assert!(!inj.conn_ack_stall(19, 3));
        assert_eq!(FaultKind::ConnSlowloris { conn: 3 }.conn(), Some(3));
        assert_eq!(FaultKind::ConnSlowloris { conn: 3 }.validator(), None);
        assert_eq!(FaultKind::Crash { module: "m".into() }.conn(), None);
        assert_eq!(FaultKind::ConnAckStall { conn: 0 }.label(), "conn-ack-stall");
        assert_eq!(
            FaultKind::ConnMidFrameDisconnect { conn: 0 }.label(),
            "conn-mid-frame-disconnect"
        );
    }

    #[test]
    fn empty_inputs_yield_empty_plan() {
        assert!(FaultPlan::random(1, 2000, 5, &[], &["v0"]).is_empty());
        assert!(FaultPlan::random(1, 10, 5, &["m"], &[]).is_empty());
    }
}
