//! Property-based tests for governance invariants.

use metaverse_dao::dao::{Dao, DaoConfig};
use metaverse_dao::quorum::QuorumRule;
use metaverse_dao::turnout::FatigueModel;
use metaverse_dao::voting::{max_quadratic_votes, quadratic_cost, Choice, Tally, VotingScheme};
use proptest::prelude::*;

fn arb_choice() -> impl Strategy<Value = Choice> {
    prop_oneof![Just(Choice::Yes), Just(Choice::No), Just(Choice::Abstain)]
}

proptest! {
    /// Vote conservation: total tallied weight equals the sum of cast
    /// weights, voters equals ballots, and no vote is double counted.
    #[test]
    fn tally_conserves_weight(
        votes in proptest::collection::vec((arb_choice(), 1u64..100), 1..50),
    ) {
        let mut dao = Dao::new("prop", DaoConfig {
            scheme: VotingScheme::ExternalWeighted,
            ..DaoConfig::default()
        });
        for i in 0..votes.len() {
            dao.add_member(&format!("m{i}")).unwrap();
        }
        let id = dao.propose("m0", "t", 0).unwrap();
        let mut expected = Tally::empty(votes.len() as u64);
        for (i, (choice, weight)) in votes.iter().enumerate() {
            dao.vote_weighted(&format!("m{i}"), id, *choice, *weight, 0).unwrap();
            expected.add(&metaverse_dao::voting::Ballot {
                voter: format!("m{i}"),
                choice: *choice,
                weight: *weight,
                cast_at: 0,
            });
        }
        let tally = dao.tally(id).unwrap();
        prop_assert_eq!(tally.yes, expected.yes);
        prop_assert_eq!(tally.no, expected.no);
        prop_assert_eq!(tally.abstain, expected.abstain);
        prop_assert_eq!(tally.voters, votes.len() as u64);
    }

    /// A closed proposal's outcome agrees with the quorum rule applied
    /// to its tally, for any rule parameters.
    #[test]
    fn close_agrees_with_quorum(
        yes in 0u64..30,
        no in 0u64..30,
        absent in 0u64..30,
        min_turnout in 0.0f64..1.0,
        min_support in 0.0f64..1.0,
    ) {
        let members = yes + no + absent;
        prop_assume!(members > 0);
        let rule = QuorumRule { min_turnout, min_support };
        let mut dao = Dao::new("prop", DaoConfig {
            scheme: VotingScheme::OnePersonOneVote,
            quorum: rule,
            ..DaoConfig::default()
        });
        for i in 0..members {
            dao.add_member(&format!("m{i}")).unwrap();
        }
        let id = dao.propose("m0", "t", 0).unwrap();
        for i in 0..yes {
            dao.vote(&format!("m{i}"), id, Choice::Yes, 0).unwrap();
        }
        for i in yes..yes + no {
            dao.vote(&format!("m{i}"), id, Choice::No, 0).unwrap();
        }
        let tally_before = dao.tally(id).unwrap();
        let (status, tally) = dao.close(id, 101).unwrap();
        prop_assert_eq!(tally.yes, tally_before.yes);
        let expected = rule.passes(&tally);
        prop_assert_eq!(
            status == metaverse_dao::proposal::ProposalStatus::Accepted,
            expected
        );
    }

    /// Quadratic arithmetic: max_quadratic_votes is the exact integer
    /// square root floor, and cost round-trips.
    #[test]
    fn quadratic_cost_inverse(credits in 0u64..1_000_000) {
        let v = max_quadratic_votes(credits);
        prop_assert!(quadratic_cost(v) <= credits);
        prop_assert!(quadratic_cost(v + 1) > credits);
    }

    /// Delegation never loses or duplicates base weight: tallied total
    /// weight ≤ member count (1p1v) and equals voters + resolved
    /// delegators.
    #[test]
    fn delegation_weight_bounded(
        n in 2usize..20,
        delegation_pairs in proptest::collection::vec((0usize..20, 0usize..20), 0..15),
        voters in proptest::collection::vec(0usize..20, 1..10),
    ) {
        let mut dao = Dao::new("prop", DaoConfig::default());
        for i in 0..n {
            dao.add_member(&format!("m{i}")).unwrap();
        }
        for (from, to) in delegation_pairs {
            let (from, to) = (from % n, to % n);
            if from != to {
                // Cycles are rejected; ignore those errors.
                let _ = dao.set_delegate(&format!("m{from}"), Some(&format!("m{to}")));
            }
        }
        let id = dao.propose("m0", "t", 0).unwrap();
        let mut distinct = std::collections::HashSet::new();
        for v in voters {
            let v = v % n;
            if distinct.insert(v) {
                dao.vote(&format!("m{v}"), id, Choice::Yes, 0).unwrap();
            }
        }
        let tally = dao.tally(id).unwrap();
        // Total weight can never exceed the member count under 1p1v.
        prop_assert!(tally.yes <= n as u64, "yes {} > members {}", tally.yes, n);
        prop_assert!(tally.yes >= distinct.len() as u64);
    }

    /// Fatigue participation is always a probability and monotone
    /// non-increasing in the request count.
    #[test]
    fn fatigue_probability_valid(
        base in 0.0f64..1.0,
        half in 0.5f64..50.0,
        requests in 1u64..200,
    ) {
        let m = FatigueModel { base, half_point: half };
        let p = m.participation(requests);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(m.participation(requests + 1) <= p + 1e-12);
    }
}
