//! Jury sortition — the non-voting governance process of §III-C.
//!
//! Schneider et al.'s modular-politics framing (which the paper adopts)
//! asks the governance layer to support "a broad spectrum of processes
//! (juries, formal debates)", not just referenda. Sortition selects a
//! random jury from the membership, optionally weighted by reputation
//! standing, and decides a single question by juror supermajority — a
//! cheap process for the long tail of disputes that would otherwise
//! contribute to voting fatigue (E7).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::DaoError;
use crate::voting::Choice;

/// Configuration of a jury process.
#[derive(Debug, Clone)]
pub struct JuryConfig {
    /// Number of jurors to empanel.
    pub size: usize,
    /// Fraction of juror agreement required to convict/approve.
    pub supermajority: f64,
    /// Minimum external weight (e.g. reputation points) to be eligible.
    /// 0 disables the eligibility screen.
    pub min_eligibility_weight: u64,
}

impl Default for JuryConfig {
    fn default() -> Self {
        JuryConfig { size: 7, supermajority: 2.0 / 3.0, min_eligibility_weight: 10 }
    }
}

/// A selected jury over a question.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Jury {
    /// The question under deliberation.
    pub question: String,
    /// Empanelled juror names.
    pub jurors: Vec<String>,
    /// Votes received so far (juror, choice).
    pub votes: Vec<(String, Choice)>,
}

/// A jury's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Supermajority approved.
    Approved,
    /// Supermajority rejected.
    Rejected,
    /// Neither side reached the bar (hung jury).
    Hung,
}

impl Jury {
    /// Empanels a jury by uniform random sortition from `pool`, where
    /// each entry is `(member, eligibility_weight)`. Members below the
    /// eligibility screen are excluded before drawing.
    ///
    /// Errors when the eligible pool is smaller than the jury size.
    pub fn empanel<R: Rng + ?Sized>(
        question: impl Into<String>,
        pool: &[(String, u64)],
        config: &JuryConfig,
        rng: &mut R,
    ) -> Result<Jury, DaoError> {
        let mut eligible: Vec<&String> = pool
            .iter()
            .filter(|(_, w)| *w >= config.min_eligibility_weight)
            .map(|(name, _)| name)
            .collect();
        if eligible.len() < config.size {
            return Err(DaoError::UnknownScope {
                scope: format!(
                    "jury pool too small: {} eligible of {} needed",
                    eligible.len(),
                    config.size
                ),
            });
        }
        eligible.shuffle(rng);
        Ok(Jury {
            question: question.into(),
            jurors: eligible[..config.size].iter().map(|s| s.to_string()).collect(),
            votes: Vec::new(),
        })
    }

    /// Records a juror's vote. Non-jurors and double votes are rejected.
    pub fn cast(&mut self, juror: &str, choice: Choice) -> Result<(), DaoError> {
        if !self.jurors.iter().any(|j| j == juror) {
            return Err(DaoError::NotAMember { account: juror.into() });
        }
        if self.votes.iter().any(|(j, _)| j == juror) {
            return Err(DaoError::AlreadyVoted { account: juror.into(), id: 0 });
        }
        self.votes.push((juror.to_string(), choice));
        Ok(())
    }

    /// Whether every juror has voted.
    pub fn complete(&self) -> bool {
        self.votes.len() == self.jurors.len()
    }

    /// The verdict under `config`'s supermajority bar (abstentions count
    /// against both sides).
    pub fn verdict(&self, config: &JuryConfig) -> Verdict {
        let total = self.jurors.len() as f64;
        let yes = self.votes.iter().filter(|(_, c)| *c == Choice::Yes).count() as f64;
        let no = self.votes.iter().filter(|(_, c)| *c == Choice::No).count() as f64;
        if yes / total >= config.supermajority {
            Verdict::Approved
        } else if no / total >= config.supermajority {
            Verdict::Rejected
        } else {
            Verdict::Hung
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool(n: usize, weight: u64) -> Vec<(String, u64)> {
        (0..n).map(|i| (format!("m{i}"), weight)).collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(13)
    }

    #[test]
    fn empanel_draws_distinct_eligible_jurors() {
        let mut r = rng();
        let jury =
            Jury::empanel("q", &pool(30, 50), &JuryConfig::default(), &mut r).unwrap();
        assert_eq!(jury.jurors.len(), 7);
        let distinct: std::collections::HashSet<&String> = jury.jurors.iter().collect();
        assert_eq!(distinct.len(), 7, "no duplicate jurors");
    }

    #[test]
    fn eligibility_screen_excludes() {
        let mut r = rng();
        let mut members = pool(10, 50);
        members.extend(pool(0, 0)); // nothing extra
        // Only 5 above the bar: too few for a 7-person jury.
        let mut mixed: Vec<(String, u64)> =
            (0..5).map(|i| (format!("rich{i}"), 50)).collect();
        mixed.extend((0..20).map(|i| (format!("poor{i}"), 1)));
        let err = Jury::empanel("q", &mixed, &JuryConfig::default(), &mut r).unwrap_err();
        assert!(err.to_string().contains("too small"));
    }

    #[test]
    fn verdict_supermajority() {
        let mut r = rng();
        let mut jury =
            Jury::empanel("ban?", &pool(20, 50), &JuryConfig::default(), &mut r).unwrap();
        let jurors = jury.jurors.clone();
        for j in &jurors[..5] {
            jury.cast(j, Choice::Yes).unwrap();
        }
        for j in &jurors[5..] {
            jury.cast(j, Choice::No).unwrap();
        }
        assert!(jury.complete());
        assert_eq!(jury.verdict(&JuryConfig::default()), Verdict::Approved); // 5/7 > 2/3
    }

    #[test]
    fn hung_jury() {
        let mut r = rng();
        let mut jury =
            Jury::empanel("q", &pool(20, 50), &JuryConfig::default(), &mut r).unwrap();
        let jurors = jury.jurors.clone();
        for j in &jurors[..4] {
            jury.cast(j, Choice::Yes).unwrap(); // 4/7 < 2/3
        }
        for j in &jurors[4..] {
            jury.cast(j, Choice::No).unwrap(); // 3/7 < 2/3
        }
        assert_eq!(jury.verdict(&JuryConfig::default()), Verdict::Hung);
    }

    #[test]
    fn non_juror_and_double_votes_rejected() {
        let mut r = rng();
        let mut jury =
            Jury::empanel("q", &pool(20, 50), &JuryConfig::default(), &mut r).unwrap();
        assert!(jury.cast("outsider", Choice::Yes).is_err());
        let juror = jury.jurors[0].clone();
        jury.cast(&juror, Choice::Yes).unwrap();
        assert!(matches!(
            jury.cast(&juror, Choice::No),
            Err(DaoError::AlreadyVoted { .. })
        ));
    }

    #[test]
    fn abstentions_count_against_both() {
        let mut r = rng();
        let mut jury =
            Jury::empanel("q", &pool(20, 50), &JuryConfig::default(), &mut r).unwrap();
        let jurors = jury.jurors.clone();
        for j in &jurors[..4] {
            jury.cast(j, Choice::Yes).unwrap();
        }
        for j in &jurors[4..] {
            jury.cast(j, Choice::Abstain).unwrap();
        }
        assert_eq!(jury.verdict(&JuryConfig::default()), Verdict::Hung);
    }
}
