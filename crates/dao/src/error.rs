//! Error types for the DAO crate.

use crate::proposal::ProposalId;

/// Errors returned by DAO operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DaoError {
    /// The account is not a member of this DAO.
    NotAMember {
        /// The non-member account.
        account: String,
    },
    /// The account is already a member.
    AlreadyMember {
        /// The duplicated account.
        account: String,
    },
    /// The proposal does not exist.
    UnknownProposal {
        /// The missing proposal id.
        id: ProposalId,
    },
    /// The proposal is no longer open for voting.
    VotingClosed {
        /// The closed proposal id.
        id: ProposalId,
    },
    /// The member has already voted on this proposal.
    AlreadyVoted {
        /// The voter.
        account: String,
        /// The proposal.
        id: ProposalId,
    },
    /// Quadratic voting: the member's voice-credit budget is exhausted.
    InsufficientCredits {
        /// The voter.
        account: String,
        /// Credits needed.
        needed: u64,
        /// Credits available.
        available: u64,
    },
    /// Delegation would create a cycle.
    DelegationCycle {
        /// The account whose delegation was rejected.
        account: String,
    },
    /// Tried to close a proposal before its deadline with votes missing.
    DeadlineNotReached {
        /// The proposal id.
        id: ProposalId,
        /// Current tick.
        now: u64,
        /// The proposal's deadline.
        deadline: u64,
    },
    /// The requested scope has no DAO registered (modular governance).
    UnknownScope {
        /// The missing scope name.
        scope: String,
    },
}

impl std::fmt::Display for DaoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaoError::NotAMember { account } => write!(f, "{account:?} is not a member"),
            DaoError::AlreadyMember { account } => write!(f, "{account:?} is already a member"),
            DaoError::UnknownProposal { id } => write!(f, "unknown proposal {id}"),
            DaoError::VotingClosed { id } => write!(f, "proposal {id} is closed"),
            DaoError::AlreadyVoted { account, id } => {
                write!(f, "{account:?} already voted on proposal {id}")
            }
            DaoError::InsufficientCredits { account, needed, available } => write!(
                f,
                "{account:?} needs {needed} voice credits but has {available}"
            ),
            DaoError::DelegationCycle { account } => {
                write!(f, "delegation by {account:?} would create a cycle")
            }
            DaoError::DeadlineNotReached { id, now, deadline } => write!(
                f,
                "proposal {id} deadline {deadline} not reached at tick {now}"
            ),
            DaoError::UnknownScope { scope } => write!(f, "no DAO registered for scope {scope:?}"),
        }
    }
}

impl std::error::Error for DaoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        let e = DaoError::InsufficientCredits {
            account: "a".into(),
            needed: 9,
            available: 4,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
    }
}
