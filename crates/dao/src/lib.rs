//! # metaverse-dao
//!
//! Decentralized autonomous organizations for `metaverse-kit`,
//! implementing §III of the paper:
//!
//! > "Generally, DAOs are usually flat and fully democratized, where each
//! > member can participate in the voting system to implement any changes
//! > in the platform. […] However, DAOs can face several scalability
//! > issues […] The flat-based design of several DAOs can hinder the
//! > members' involvement in the decision-making process as the number of
//! > voting sessions can become cumbersome." — §III-B
//!
//! and the modular remedy the paper adopts from Schneider et al.:
//!
//! > "This modularity can enable the development of portable tools that
//! > can be adapted to different platforms and use cases." — §III-C
//!
//! Components:
//!
//! * [`proposal`] — proposals and their lifecycle.
//! * [`voting`] — ballots and voting schemes (one-person-one-vote,
//!   token-weighted, quadratic, delegated/liquid, external-weighted).
//! * [`quorum`] — turnout and supermajority rules.
//! * [`dao`] — a single DAO: membership, vote casting, tallying, and
//!   ledger-record export.
//! * [`federation`] — modular governance: scoped DAOs composed into a
//!   platform, with proposal routing and per-member load accounting.
//! * [`turnout`] — the voting-fatigue participation model used by
//!   experiment E7.
//! * [`sortition`] — jury selection and verdicts, the non-referendum
//!   governance process of §III-C ("juries, formal debates").

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod dao;
pub mod error;
pub mod federation;
pub mod proposal;
pub mod quorum;
pub mod sortition;
pub mod turnout;
pub mod voting;

pub use dao::{Dao, DaoConfig, Member};
pub use error::DaoError;
pub use federation::{ModularGovernance, RoutingReport};
pub use proposal::{Proposal, ProposalId, ProposalStatus};
pub use quorum::QuorumRule;
pub use sortition::{Jury, JuryConfig, Verdict};
pub use turnout::{FatigueModel, TurnoutSample};
pub use voting::{Ballot, Choice, Tally, VotingScheme};
