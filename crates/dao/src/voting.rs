//! Ballots, voting schemes, and tallying.
//!
//! The paper observes that DAOs are "usually flat and fully democratized"
//! and that algorithmic governance choices "can strongly impact the
//! overall metaverse" (§III-B). The [`VotingScheme`] enum makes that
//! design choice explicit and swappable — the scheme is one of the
//! interchangeable modules of the Figure-3 architecture, and the E7
//! ablation sweeps it.

use serde::{Deserialize, Serialize};

/// A voter's stance on a proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Choice {
    /// Support.
    Yes,
    /// Opposition.
    No,
    /// Counted for turnout but not for either side.
    Abstain,
}

/// How member input is converted into voting weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VotingScheme {
    /// Flat democracy: every member's ballot weighs 1.
    OnePersonOneVote,
    /// Weight equals the member's token balance (plutocratic).
    TokenWeighted,
    /// Quadratic voting: casting `v` votes costs `v²` voice credits from
    /// a per-proposal budget; weight is `v`.
    Quadratic,
    /// Weight supplied externally (e.g. from the reputation engine),
    /// normalized to integer units.
    ExternalWeighted,
}

impl VotingScheme {
    /// All schemes, for ablation sweeps.
    pub const ALL: [VotingScheme; 4] = [
        VotingScheme::OnePersonOneVote,
        VotingScheme::TokenWeighted,
        VotingScheme::Quadratic,
        VotingScheme::ExternalWeighted,
    ];

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            VotingScheme::OnePersonOneVote => "1p1v",
            VotingScheme::TokenWeighted => "token",
            VotingScheme::Quadratic => "quadratic",
            VotingScheme::ExternalWeighted => "external",
        }
    }
}

/// A cast ballot, after scheme-specific weight resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ballot {
    /// Voting member.
    pub voter: String,
    /// Stance.
    pub choice: Choice,
    /// Resolved weight (scheme-dependent).
    pub weight: u64,
    /// Tick at which the ballot was cast.
    pub cast_at: u64,
}

/// The tallied outcome of a proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tally {
    /// Total weight in support.
    pub yes: u64,
    /// Total weight opposed.
    pub no: u64,
    /// Total weight abstaining.
    pub abstain: u64,
    /// Number of distinct voters (for turnout).
    pub voters: u64,
    /// Number of eligible members at close time.
    pub eligible: u64,
}

impl Tally {
    /// An empty tally over `eligible` members.
    pub fn empty(eligible: u64) -> Self {
        Tally { yes: 0, no: 0, abstain: 0, voters: 0, eligible }
    }

    /// Accumulates one ballot.
    pub fn add(&mut self, ballot: &Ballot) {
        match ballot.choice {
            Choice::Yes => self.yes += ballot.weight,
            Choice::No => self.no += ballot.weight,
            Choice::Abstain => self.abstain += ballot.weight,
        }
        self.voters += 1;
    }

    /// Turnout as a fraction of eligible members.
    pub fn turnout(&self) -> f64 {
        if self.eligible == 0 {
            0.0
        } else {
            self.voters as f64 / self.eligible as f64
        }
    }

    /// Support among decided weight (yes / (yes + no)); 0 when nobody
    /// decided.
    pub fn support(&self) -> f64 {
        let decided = self.yes + self.no;
        if decided == 0 {
            0.0
        } else {
            self.yes as f64 / decided as f64
        }
    }
}

/// Resolves quadratic-voting cost: casting `votes` votes costs `votes²`.
pub fn quadratic_cost(votes: u64) -> u64 {
    votes.saturating_mul(votes)
}

/// Largest number of quadratic votes affordable with `credits`.
pub fn max_quadratic_votes(credits: u64) -> u64 {
    // isqrt via floating point then fix-up; exact for u32-sized inputs
    // and close enough (then corrected) for larger.
    let mut v = (credits as f64).sqrt() as u64;
    while quadratic_cost(v + 1) <= credits {
        v += 1;
    }
    while v > 0 && quadratic_cost(v) > credits {
        v -= 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ballot(choice: Choice, weight: u64) -> Ballot {
        Ballot { voter: "v".into(), choice, weight, cast_at: 0 }
    }

    #[test]
    fn tally_accumulates() {
        let mut t = Tally::empty(10);
        t.add(&ballot(Choice::Yes, 3));
        t.add(&ballot(Choice::No, 2));
        t.add(&ballot(Choice::Abstain, 1));
        assert_eq!((t.yes, t.no, t.abstain, t.voters), (3, 2, 1, 3));
        assert!((t.turnout() - 0.3).abs() < 1e-12);
        assert!((t.support() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_ratios() {
        let t = Tally::empty(0);
        assert_eq!(t.turnout(), 0.0);
        assert_eq!(t.support(), 0.0);
    }

    #[test]
    fn quadratic_cost_table() {
        assert_eq!(quadratic_cost(0), 0);
        assert_eq!(quadratic_cost(1), 1);
        assert_eq!(quadratic_cost(5), 25);
    }

    #[test]
    fn max_quadratic_votes_exact() {
        assert_eq!(max_quadratic_votes(0), 0);
        assert_eq!(max_quadratic_votes(1), 1);
        assert_eq!(max_quadratic_votes(24), 4);
        assert_eq!(max_quadratic_votes(25), 5);
        assert_eq!(max_quadratic_votes(26), 5);
        for credits in 0..2000u64 {
            let v = max_quadratic_votes(credits);
            assert!(quadratic_cost(v) <= credits);
            assert!(quadratic_cost(v + 1) > credits);
        }
    }

    #[test]
    fn scheme_labels_unique() {
        let mut labels: Vec<&str> = VotingScheme::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), VotingScheme::ALL.len());
    }
}
