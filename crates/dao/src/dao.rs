//! A single DAO: membership, proposals, voting, tallying.

use std::collections::{BTreeMap, HashMap, HashSet};

use metaverse_ledger::tx::TxPayload;
use serde::{Deserialize, Serialize};

use crate::error::DaoError;
use crate::proposal::{Proposal, ProposalId, ProposalStatus};
use crate::quorum::QuorumRule;
use crate::voting::{quadratic_cost, Ballot, Choice, Tally, VotingScheme};

/// A DAO member.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Member {
    /// Account name.
    pub name: String,
    /// Governance-token balance (weight under [`VotingScheme::TokenWeighted`]).
    pub tokens: u64,
    /// Remaining voice credits (spent under [`VotingScheme::Quadratic`]).
    pub voice_credits: u64,
    /// Liquid-democracy delegate, if any.
    pub delegate: Option<String>,
}

/// Configuration of a DAO.
#[derive(Debug, Clone)]
pub struct DaoConfig {
    /// How ballots are weighted.
    pub scheme: VotingScheme,
    /// Acceptance rule.
    pub quorum: QuorumRule,
    /// Ticks a proposal stays open.
    pub voting_window: u64,
    /// Voice credits granted to new members (quadratic voting).
    pub initial_voice_credits: u64,
    /// Tokens granted to new members.
    pub initial_tokens: u64,
}

impl Default for DaoConfig {
    fn default() -> Self {
        DaoConfig {
            scheme: VotingScheme::OnePersonOneVote,
            quorum: QuorumRule::simple_majority(),
            voting_window: 100,
            initial_voice_credits: 100,
            initial_tokens: 100,
        }
    }
}

#[derive(Debug, Clone)]
struct ProposalState {
    proposal: Proposal,
    ballots: Vec<Ballot>,
    voted: HashSet<String>,
}

/// A decentralized autonomous organization.
///
/// ```
/// use metaverse_dao::dao::{Dao, DaoConfig};
/// use metaverse_dao::voting::Choice;
///
/// let mut dao = Dao::new("privacy", DaoConfig::default());
/// for m in ["alice", "bob", "carol"] {
///     dao.add_member(m).unwrap();
/// }
/// let id = dao.propose("alice", "Enable privacy bubbles by default", 0).unwrap();
/// dao.vote("alice", id, Choice::Yes, 0).unwrap();
/// dao.vote("bob", id, Choice::Yes, 0).unwrap();
/// dao.vote("carol", id, Choice::No, 0).unwrap();
/// let (status, tally) = dao.close(id, 101).unwrap();
/// assert_eq!(status, metaverse_dao::proposal::ProposalStatus::Accepted);
/// assert_eq!((tally.yes, tally.no), (2, 1));
/// ```
#[derive(Debug)]
pub struct Dao {
    /// The scope/name of this DAO (e.g. "privacy", "moderation").
    pub scope: String,
    config: DaoConfig,
    members: BTreeMap<String, Member>,
    proposals: BTreeMap<ProposalId, ProposalState>,
    next_id: ProposalId,
    pending_records: Vec<TxPayload>,
}

impl Dao {
    /// Creates an empty DAO for `scope`.
    pub fn new(scope: impl Into<String>, config: DaoConfig) -> Self {
        Dao {
            scope: scope.into(),
            config,
            members: BTreeMap::new(),
            proposals: BTreeMap::new(),
            next_id: 1,
            pending_records: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DaoConfig {
        &self.config
    }

    /// Swaps the voting scheme — the "interchangeable module" operation
    /// from the paper's Figure 3. Takes effect for future proposals.
    pub fn set_scheme(&mut self, scheme: VotingScheme) {
        self.config.scheme = scheme;
    }

    /// Adds a member with the configured initial balances.
    pub fn add_member(&mut self, name: &str) -> Result<(), DaoError> {
        if self.members.contains_key(name) {
            return Err(DaoError::AlreadyMember { account: name.into() });
        }
        self.members.insert(
            name.to_string(),
            Member {
                name: name.to_string(),
                tokens: self.config.initial_tokens,
                voice_credits: self.config.initial_voice_credits,
                delegate: None,
            },
        );
        Ok(())
    }

    /// Removes a member. Their open ballots remain valid.
    pub fn remove_member(&mut self, name: &str) -> Result<(), DaoError> {
        self.members
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DaoError::NotAMember { account: name.into() })
    }

    /// Membership test.
    pub fn is_member(&self, name: &str) -> bool {
        self.members.contains_key(name)
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Immutable view of a member.
    pub fn member(&self, name: &str) -> Option<&Member> {
        self.members.get(name)
    }

    /// Grants additional tokens to a member.
    pub fn grant_tokens(&mut self, name: &str, amount: u64) -> Result<(), DaoError> {
        let m = self
            .members
            .get_mut(name)
            .ok_or_else(|| DaoError::NotAMember { account: name.into() })?;
        m.tokens += amount;
        Ok(())
    }

    /// Refills a member's voice credits.
    pub fn refill_credits(&mut self, name: &str, amount: u64) -> Result<(), DaoError> {
        let m = self
            .members
            .get_mut(name)
            .ok_or_else(|| DaoError::NotAMember { account: name.into() })?;
        m.voice_credits += amount;
        Ok(())
    }

    /// Sets (or clears) a member's liquid-democracy delegate.
    ///
    /// Rejects delegations that would close a cycle.
    pub fn set_delegate(&mut self, from: &str, to: Option<&str>) -> Result<(), DaoError> {
        self.check_delegate(from, to)?;
        self.members
            .get_mut(from)
            .ok_or_else(|| DaoError::NotAMember { account: from.into() })?
            .delegate = to.map(str::to_string);
        Ok(())
    }

    /// Validates a delegation without applying it: both accounts must
    /// be members, and following the chain from `to` must never reach
    /// `from` (which would close a cycle). This is [`Dao::set_delegate`]
    /// minus the mutation, so callers coordinating the same delegation
    /// across several modules can dry-run it everywhere first.
    pub fn check_delegate(&self, from: &str, to: Option<&str>) -> Result<(), DaoError> {
        if !self.members.contains_key(from) {
            return Err(DaoError::NotAMember { account: from.into() });
        }
        if let Some(to) = to {
            if !self.members.contains_key(to) {
                return Err(DaoError::NotAMember { account: to.into() });
            }
            // Walk the chain from `to`; reaching `from` means a cycle.
            let mut cursor = Some(to.to_string());
            let mut hops = 0;
            while let Some(c) = cursor {
                if c == from {
                    return Err(DaoError::DelegationCycle { account: from.into() });
                }
                cursor = self.members.get(&c).and_then(|m| m.delegate.clone());
                hops += 1;
                if hops > self.members.len() {
                    return Err(DaoError::DelegationCycle { account: from.into() });
                }
            }
        }
        Ok(())
    }

    /// Opens a new proposal. Returns its id.
    pub fn propose(
        &mut self,
        proposer: &str,
        title: &str,
        now: u64,
    ) -> Result<ProposalId, DaoError> {
        if !self.members.contains_key(proposer) {
            return Err(DaoError::NotAMember { account: proposer.into() });
        }
        let id = self.next_id;
        self.next_id += 1;
        let proposal =
            Proposal::new(id, proposer, title, self.scope.clone(), now, self.config.voting_window);
        self.pending_records.push(TxPayload::ProposalCreated {
            proposal_id: id,
            title: title.to_string(),
            scope: self.scope.clone(),
        });
        self.proposals.insert(
            id,
            ProposalState { proposal, ballots: Vec::new(), voted: HashSet::new() },
        );
        Ok(id)
    }

    /// Casts a ballot of weight determined by the configured scheme
    /// (1 vote under quadratic; use [`Dao::vote_quadratic`] to buy more).
    pub fn vote(
        &mut self,
        voter: &str,
        id: ProposalId,
        choice: Choice,
        now: u64,
    ) -> Result<(), DaoError> {
        match self.config.scheme {
            VotingScheme::OnePersonOneVote => self.cast(voter, id, choice, 1, now),
            VotingScheme::TokenWeighted => {
                let tokens = self
                    .members
                    .get(voter)
                    .ok_or_else(|| DaoError::NotAMember { account: voter.into() })?
                    .tokens;
                self.cast(voter, id, choice, tokens, now)
            }
            VotingScheme::Quadratic => self.vote_quadratic(voter, id, choice, 1, now),
            VotingScheme::ExternalWeighted => self.cast(voter, id, choice, 1, now),
        }
    }

    /// Quadratic voting: buys `votes` votes for `votes²` voice credits.
    pub fn vote_quadratic(
        &mut self,
        voter: &str,
        id: ProposalId,
        choice: Choice,
        votes: u64,
        now: u64,
    ) -> Result<(), DaoError> {
        let cost = quadratic_cost(votes);
        let available = self
            .members
            .get(voter)
            .ok_or_else(|| DaoError::NotAMember { account: voter.into() })?
            .voice_credits;
        if cost > available {
            return Err(DaoError::InsufficientCredits {
                account: voter.into(),
                needed: cost,
                available,
            });
        }
        self.cast(voter, id, choice, votes, now)?;
        self.members
            .get_mut(voter)
            .ok_or_else(|| DaoError::NotAMember { account: voter.into() })?
            .voice_credits -= cost;
        Ok(())
    }

    /// Casts a ballot with an externally supplied weight (reputation-
    /// weighted governance).
    pub fn vote_weighted(
        &mut self,
        voter: &str,
        id: ProposalId,
        choice: Choice,
        weight: u64,
        now: u64,
    ) -> Result<(), DaoError> {
        self.cast(voter, id, choice, weight, now)
    }

    fn cast(
        &mut self,
        voter: &str,
        id: ProposalId,
        choice: Choice,
        weight: u64,
        now: u64,
    ) -> Result<(), DaoError> {
        if !self.members.contains_key(voter) {
            return Err(DaoError::NotAMember { account: voter.into() });
        }
        let state = self
            .proposals
            .get_mut(&id)
            .ok_or(DaoError::UnknownProposal { id })?;
        if !state.proposal.accepts_votes(now) {
            return Err(DaoError::VotingClosed { id });
        }
        if !state.voted.insert(voter.to_string()) {
            return Err(DaoError::AlreadyVoted { account: voter.into(), id });
        }
        state.ballots.push(Ballot { voter: voter.into(), choice, weight, cast_at: now });
        self.pending_records.push(TxPayload::VoteCast {
            proposal_id: id,
            voter: voter.to_string(),
            choice: format!("{choice:?}"),
            weight,
        });
        Ok(())
    }

    /// Resolves liquid-democracy weight additions: members who did not
    /// vote but whose delegation chain reaches a voter add their base
    /// weight to that voter's choice. Applies to 1p1v and token schemes.
    fn delegated_extra(&self, state: &ProposalState) -> HashMap<String, u64> {
        let mut extra: HashMap<String, u64> = HashMap::new();
        if !matches!(
            self.config.scheme,
            VotingScheme::OnePersonOneVote | VotingScheme::TokenWeighted
        ) {
            return extra;
        }
        for (name, member) in &self.members {
            if state.voted.contains(name) || member.delegate.is_none() {
                continue;
            }
            // Walk the delegation chain to the first member who voted.
            let mut cursor = member.delegate.clone();
            let mut hops = 0;
            while let Some(c) = cursor {
                if state.voted.contains(&c) {
                    let w = match self.config.scheme {
                        VotingScheme::TokenWeighted => member.tokens,
                        _ => 1,
                    };
                    *extra.entry(c).or_insert(0) += w;
                    break;
                }
                cursor = self.members.get(&c).and_then(|m| m.delegate.clone());
                hops += 1;
                if hops > self.members.len() {
                    break; // stale cycle via removed members
                }
            }
        }
        extra
    }

    /// Tallies a proposal's current ballots (including delegation).
    pub fn tally(&self, id: ProposalId) -> Result<Tally, DaoError> {
        let state = self.proposals.get(&id).ok_or(DaoError::UnknownProposal { id })?;
        let extra = self.delegated_extra(state);
        let mut tally = Tally::empty(self.members.len() as u64);
        for ballot in &state.ballots {
            let mut b = ballot.clone();
            if let Some(add) = extra.get(&ballot.voter) {
                b.weight += add;
            }
            tally.add(&b);
        }
        Ok(tally)
    }

    /// Closes a proposal after its deadline (or once every member voted),
    /// applying the quorum rule. Returns the final status and tally.
    pub fn close(&mut self, id: ProposalId, now: u64) -> Result<(ProposalStatus, Tally), DaoError> {
        let (expired, all_voted) = {
            let state = self.proposals.get(&id).ok_or(DaoError::UnknownProposal { id })?;
            if state.proposal.status != ProposalStatus::Open {
                return Err(DaoError::VotingClosed { id });
            }
            (state.proposal.expired(now), state.voted.len() == self.members.len())
        };
        if !expired && !all_voted {
            let deadline = self.proposals[&id].proposal.deadline;
            return Err(DaoError::DeadlineNotReached { id, now, deadline });
        }
        let tally = self.tally(id)?;
        let accepted = self.config.quorum.passes(&tally);
        let status = if accepted { ProposalStatus::Accepted } else { ProposalStatus::Rejected };
        self.proposals.get_mut(&id).ok_or(DaoError::UnknownProposal { id })?.proposal.status =
            status;
        self.pending_records.push(TxPayload::ProposalDecided {
            proposal_id: id,
            accepted,
            yes_weight: tally.yes,
            no_weight: tally.no,
        });
        Ok((status, tally))
    }

    /// The proposal with the given id.
    pub fn proposal(&self, id: ProposalId) -> Option<&Proposal> {
        self.proposals.get(&id).map(|s| &s.proposal)
    }

    /// Ids of proposals still open at `now`.
    pub fn open_proposals(&self, now: u64) -> Vec<ProposalId> {
        self.proposals
            .values()
            .filter(|s| s.proposal.accepts_votes(now))
            .map(|s| s.proposal.id)
            .collect()
    }

    /// Member names, sorted.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.keys().map(String::as_str).collect()
    }

    /// Takes the ledger records accumulated since the last drain.
    pub fn drain_ledger_records(&mut self) -> Vec<TxPayload> {
        std::mem::take(&mut self.pending_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dao_with(scheme: VotingScheme, members: &[&str]) -> Dao {
        let mut d = Dao::new(
            "test",
            DaoConfig { scheme, quorum: QuorumRule::simple_majority(), ..DaoConfig::default() },
        );
        for m in members {
            d.add_member(m).unwrap();
        }
        d
    }

    #[test]
    fn one_person_one_vote_majority() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a", "b", "c"]);
        let id = d.propose("a", "t", 0).unwrap();
        d.vote("a", id, Choice::Yes, 1).unwrap();
        d.vote("b", id, Choice::Yes, 2).unwrap();
        d.vote("c", id, Choice::No, 3).unwrap();
        let (status, tally) = d.close(id, 101).unwrap();
        assert_eq!(status, ProposalStatus::Accepted);
        assert_eq!((tally.yes, tally.no), (2, 1));
    }

    #[test]
    fn token_weighted_plutocracy() {
        let mut d = dao_with(VotingScheme::TokenWeighted, &["whale", "m1", "m2"]);
        d.grant_tokens("whale", 900).unwrap(); // 1000 total vs 100 each
        let id = d.propose("whale", "t", 0).unwrap();
        d.vote("whale", id, Choice::Yes, 0).unwrap();
        d.vote("m1", id, Choice::No, 0).unwrap();
        d.vote("m2", id, Choice::No, 0).unwrap();
        let (status, tally) = d.close(id, 101).unwrap();
        assert_eq!(status, ProposalStatus::Accepted, "tokens outvote heads");
        assert_eq!(tally.yes, 1000);
        assert_eq!(tally.no, 200);
    }

    #[test]
    fn quadratic_budget_enforced() {
        let mut d = dao_with(VotingScheme::Quadratic, &["a", "b"]);
        let id = d.propose("a", "t", 0).unwrap();
        // Budget 100: 10 votes cost exactly 100.
        d.vote_quadratic("a", id, Choice::Yes, 10, 0).unwrap();
        assert_eq!(d.member("a").unwrap().voice_credits, 0);
        let err = {
            let id2 = d.propose("a", "t2", 0).unwrap();
            d.vote_quadratic("a", id2, Choice::Yes, 1, 0).unwrap_err()
        };
        assert!(matches!(err, DaoError::InsufficientCredits { .. }));
    }

    #[test]
    fn quadratic_dampens_whales_relative_to_tokens() {
        // A member with 9x the credits gets only 3x the votes.
        let mut d = dao_with(VotingScheme::Quadratic, &["whale", "m"]);
        d.refill_credits("whale", 800).unwrap(); // 900 total vs 100
        let id = d.propose("whale", "t", 0).unwrap();
        d.vote_quadratic("whale", id, Choice::Yes, 30, 0).unwrap(); // 900
        d.vote_quadratic("m", id, Choice::No, 10, 0).unwrap(); // 100
        let tally = d.tally(id).unwrap();
        assert_eq!((tally.yes, tally.no), (30, 10));
    }

    #[test]
    fn double_vote_rejected() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a", "b"]);
        let id = d.propose("a", "t", 0).unwrap();
        d.vote("a", id, Choice::Yes, 0).unwrap();
        assert!(matches!(
            d.vote("a", id, Choice::No, 0),
            Err(DaoError::AlreadyVoted { .. })
        ));
    }

    #[test]
    fn non_member_rejected_everywhere() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a"]);
        assert!(d.propose("ghost", "t", 0).is_err());
        let id = d.propose("a", "t", 0).unwrap();
        assert!(d.vote("ghost", id, Choice::Yes, 0).is_err());
        assert!(d.set_delegate("ghost", Some("a")).is_err());
        assert!(d.set_delegate("a", Some("ghost")).is_err());
    }

    #[test]
    fn vote_after_deadline_rejected() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a", "b"]);
        let id = d.propose("a", "t", 0).unwrap();
        assert!(matches!(
            d.vote("a", id, Choice::Yes, 101),
            Err(DaoError::VotingClosed { .. })
        ));
    }

    #[test]
    fn close_before_deadline_requires_full_turnout() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a", "b"]);
        let id = d.propose("a", "t", 0).unwrap();
        d.vote("a", id, Choice::Yes, 0).unwrap();
        assert!(matches!(d.close(id, 50), Err(DaoError::DeadlineNotReached { .. })));
        d.vote("b", id, Choice::Yes, 0).unwrap();
        let (status, _) = d.close(id, 50).unwrap();
        assert_eq!(status, ProposalStatus::Accepted);
    }

    #[test]
    fn double_close_rejected() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a"]);
        let id = d.propose("a", "t", 0).unwrap();
        d.vote("a", id, Choice::Yes, 0).unwrap();
        d.close(id, 101).unwrap();
        assert!(matches!(d.close(id, 102), Err(DaoError::VotingClosed { .. })));
    }

    #[test]
    fn quorum_failure_rejects() {
        let mut d = Dao::new(
            "q",
            DaoConfig {
                quorum: QuorumRule { min_turnout: 0.5, min_support: 0.5 },
                ..DaoConfig::default()
            },
        );
        for i in 0..10 {
            d.add_member(&format!("m{i}")).unwrap();
        }
        let id = d.propose("m0", "t", 0).unwrap();
        d.vote("m0", id, Choice::Yes, 0).unwrap(); // 10% turnout
        let (status, _) = d.close(id, 101).unwrap();
        assert_eq!(status, ProposalStatus::Rejected);
    }

    #[test]
    fn delegation_adds_weight() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a", "b", "c", "d"]);
        d.set_delegate("b", Some("a")).unwrap();
        d.set_delegate("c", Some("b")).unwrap(); // chain c -> b -> a
        let id = d.propose("a", "t", 0).unwrap();
        d.vote("a", id, Choice::Yes, 0).unwrap();
        d.vote("d", id, Choice::No, 0).unwrap();
        let tally = d.tally(id).unwrap();
        assert_eq!(tally.yes, 3, "a carries b and c");
        assert_eq!(tally.no, 1);
    }

    #[test]
    fn delegation_ignored_when_delegator_votes() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a", "b"]);
        d.set_delegate("b", Some("a")).unwrap();
        let id = d.propose("a", "t", 0).unwrap();
        d.vote("a", id, Choice::Yes, 0).unwrap();
        d.vote("b", id, Choice::No, 0).unwrap(); // overrides delegation
        let tally = d.tally(id).unwrap();
        assert_eq!((tally.yes, tally.no), (1, 1));
    }

    #[test]
    fn delegation_cycles_rejected() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a", "b", "c"]);
        d.set_delegate("a", Some("b")).unwrap();
        d.set_delegate("b", Some("c")).unwrap();
        assert!(matches!(
            d.set_delegate("c", Some("a")),
            Err(DaoError::DelegationCycle { .. })
        ));
        assert!(matches!(
            d.set_delegate("a", Some("a")),
            Err(DaoError::DelegationCycle { .. })
        ));
    }

    #[test]
    fn token_delegation_carries_tokens() {
        let mut d = dao_with(VotingScheme::TokenWeighted, &["a", "b"]);
        d.grant_tokens("b", 400).unwrap(); // b: 500
        d.set_delegate("b", Some("a")).unwrap();
        let id = d.propose("a", "t", 0).unwrap();
        d.vote("a", id, Choice::Yes, 0).unwrap();
        let tally = d.tally(id).unwrap();
        assert_eq!(tally.yes, 600, "a's 100 + b's 500");
    }

    #[test]
    fn ledger_records_cover_lifecycle() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a", "b"]);
        let id = d.propose("a", "t", 0).unwrap();
        d.vote("a", id, Choice::Yes, 0).unwrap();
        d.vote("b", id, Choice::No, 0).unwrap();
        d.close(id, 101).unwrap();
        let records = d.drain_ledger_records();
        assert_eq!(records.len(), 4); // created + 2 votes + decided
        assert!(d.drain_ledger_records().is_empty());
    }

    #[test]
    fn scheme_swap_affects_future_votes() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["whale", "m"]);
        d.grant_tokens("whale", 900).unwrap();
        d.set_scheme(VotingScheme::TokenWeighted);
        let id = d.propose("whale", "t", 0).unwrap();
        d.vote("whale", id, Choice::Yes, 0).unwrap();
        let tally = d.tally(id).unwrap();
        assert_eq!(tally.yes, 1000);
    }

    #[test]
    fn open_proposals_listing() {
        let mut d = dao_with(VotingScheme::OnePersonOneVote, &["a"]);
        let id1 = d.propose("a", "t1", 0).unwrap();
        let id2 = d.propose("a", "t2", 50).unwrap();
        assert_eq!(d.open_proposals(10), vec![id1, id2]);
        assert_eq!(d.open_proposals(120), vec![id2]);
        assert!(d.open_proposals(200).is_empty());
    }
}
