//! Quorum and acceptance rules.

use serde::{Deserialize, Serialize};

use crate::voting::Tally;

/// The rule deciding whether a closed proposal passes.
///
/// A proposal passes when turnout reaches `min_turnout` *and* support
/// among decided weight reaches `min_support`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuorumRule {
    /// Minimum fraction of eligible members that must vote, in `[0, 1]`.
    pub min_turnout: f64,
    /// Minimum yes/(yes+no) fraction, in `[0, 1]`.
    pub min_support: f64,
}

impl QuorumRule {
    /// Simple majority with 10% turnout floor.
    pub fn simple_majority() -> Self {
        QuorumRule { min_turnout: 0.1, min_support: 0.5 }
    }

    /// Two-thirds supermajority with 25% turnout floor — typical for
    /// constitutional changes (e.g. swapping a governance module).
    pub fn supermajority() -> Self {
        QuorumRule { min_turnout: 0.25, min_support: 2.0 / 3.0 }
    }

    /// Evaluates a tally. Support must *exceed* the threshold when it is
    /// exactly 0.5 (strict majority); otherwise meeting it suffices.
    pub fn passes(&self, tally: &Tally) -> bool {
        if tally.turnout() < self.min_turnout {
            return false;
        }
        if (self.min_support - 0.5).abs() < f64::EPSILON {
            tally.support() > 0.5
        } else {
            tally.support() >= self.min_support
        }
    }
}

impl Default for QuorumRule {
    fn default() -> Self {
        Self::simple_majority()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voting::{Ballot, Choice};

    fn tally(yes: u64, no: u64, voters: u64, eligible: u64) -> Tally {
        let mut t = Tally::empty(eligible);
        t.add(&Ballot { voter: "y".into(), choice: Choice::Yes, weight: yes, cast_at: 0 });
        t.add(&Ballot { voter: "n".into(), choice: Choice::No, weight: no, cast_at: 0 });
        // Adjust the voter count to the requested figure.
        t.voters = voters;
        t
    }

    #[test]
    fn simple_majority_ties_fail() {
        let rule = QuorumRule::simple_majority();
        assert!(!rule.passes(&tally(5, 5, 10, 20)), "exact tie must fail");
        assert!(rule.passes(&tally(6, 5, 11, 20)));
    }

    #[test]
    fn turnout_floor_enforced() {
        let rule = QuorumRule { min_turnout: 0.5, min_support: 0.5 };
        assert!(!rule.passes(&tally(10, 0, 4, 10)), "40% turnout fails 50% floor");
        assert!(rule.passes(&tally(10, 0, 5, 10)));
    }

    #[test]
    fn supermajority_threshold() {
        let rule = QuorumRule::supermajority();
        assert!(!rule.passes(&tally(65, 35, 100, 100)));
        assert!(rule.passes(&tally(67, 33, 100, 100)));
    }

    #[test]
    fn empty_tally_fails() {
        let rule = QuorumRule::default();
        assert!(!rule.passes(&Tally::empty(100)));
    }
}
