//! Modular (federated) governance.
//!
//! Implements the paper's §III-C, following Schneider et al.'s "modular
//! politics": instead of one flat DAO voting on everything, the platform
//! is governed by a set of *scoped* DAOs ("privacy", "moderation",
//! "assets", …) plus an optional root DAO for constitutional questions.
//! Proposals are routed to the DAO owning their scope, so each member is
//! only asked to vote on matters they opted into — the mechanism that
//! relieves the "number of voting sessions can become cumbersome"
//! scalability problem (§III-B), quantified by experiment E7.

use std::collections::BTreeMap;

use metaverse_ledger::tx::TxPayload;
use serde::{Deserialize, Serialize};

use crate::dao::{Dao, DaoConfig};
use crate::error::DaoError;
use crate::proposal::{ProposalId, ProposalStatus};
use crate::voting::{Choice, Tally};

/// Scope name reserved for constitutional (cross-module) questions.
pub const ROOT_SCOPE: &str = "root";

/// A federation of scoped DAOs.
///
/// ```
/// use metaverse_dao::federation::ModularGovernance;
/// use metaverse_dao::dao::DaoConfig;
/// use metaverse_dao::voting::Choice;
///
/// let mut gov = ModularGovernance::new();
/// gov.register_module("privacy", DaoConfig::default());
/// gov.join("privacy", "alice").unwrap();
/// gov.join("privacy", "bob").unwrap();
/// let id = gov.propose("privacy", "alice", "Default-on bubbles", 0).unwrap();
/// gov.vote("privacy", "alice", id, Choice::Yes, 0).unwrap();
/// gov.vote("privacy", "bob", id, Choice::Yes, 0).unwrap();
/// let (status, _) = gov.close("privacy", id, 0).unwrap();
/// assert_eq!(status, metaverse_dao::proposal::ProposalStatus::Accepted);
/// ```
#[derive(Debug, Default)]
pub struct ModularGovernance {
    modules: BTreeMap<String, Dao>,
    /// Ballots requested per member across all modules (fatigue input).
    load: BTreeMap<String, u64>,
}

/// Per-module and per-member load accounting for a batch of proposals —
/// the data behind the E7 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingReport {
    /// Proposals handled, per scope.
    pub proposals_per_scope: BTreeMap<String, u64>,
    /// Mean ballots requested per member.
    pub mean_requests_per_member: f64,
    /// Maximum ballots requested from any single member.
    pub max_requests_per_member: u64,
}

impl ModularGovernance {
    /// Creates an empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a governance module (scoped DAO). Replaces any existing
    /// module with the same scope — the Figure-3 "interchangeable module"
    /// swap.
    pub fn register_module(&mut self, scope: &str, config: DaoConfig) {
        self.modules.insert(scope.to_string(), Dao::new(scope, config));
    }

    /// Removes a module, returning it (members and history included).
    pub fn remove_module(&mut self, scope: &str) -> Option<Dao> {
        self.modules.remove(scope)
    }

    /// Scopes currently governed.
    pub fn scopes(&self) -> Vec<&str> {
        self.modules.keys().map(String::as_str).collect()
    }

    /// Immutable access to a module.
    pub fn module(&self, scope: &str) -> Option<&Dao> {
        self.modules.get(scope)
    }

    /// Mutable access to a module.
    pub fn module_mut(&mut self, scope: &str) -> Option<&mut Dao> {
        self.modules.get_mut(scope)
    }

    /// Adds a member to the DAO owning `scope`.
    pub fn join(&mut self, scope: &str, member: &str) -> Result<(), DaoError> {
        self.scoped(scope)?.add_member(member)
    }

    /// Adds a member to every module — flat-governance membership.
    pub fn join_all(&mut self, member: &str) -> Result<(), DaoError> {
        for dao in self.modules.values_mut() {
            match dao.add_member(member) {
                Ok(()) | Err(DaoError::AlreadyMember { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn scoped(&mut self, scope: &str) -> Result<&mut Dao, DaoError> {
        self.modules
            .get_mut(scope)
            .ok_or_else(|| DaoError::UnknownScope { scope: scope.into() })
    }

    /// Opens a proposal in the module owning `scope`, charging one ballot
    /// request to each of that module's members.
    pub fn propose(
        &mut self,
        scope: &str,
        proposer: &str,
        title: &str,
        now: u64,
    ) -> Result<ProposalId, DaoError> {
        let dao = self.scoped(scope)?;
        let id = dao.propose(proposer, title, now)?;
        let members: Vec<String> =
            dao.member_names().iter().map(|s| s.to_string()).collect();
        for m in members {
            *self.load.entry(m).or_insert(0) += 1;
        }
        Ok(id)
    }

    /// Casts a vote in the scoped module.
    pub fn vote(
        &mut self,
        scope: &str,
        voter: &str,
        id: ProposalId,
        choice: Choice,
        now: u64,
    ) -> Result<(), DaoError> {
        self.scoped(scope)?.vote(voter, id, choice, now)
    }

    /// Casts a credit-budgeted quadratic vote in the scoped module:
    /// `votes` ballots cost `votes²` voice credits from the voter's
    /// balance in that module.
    pub fn vote_quadratic(
        &mut self,
        scope: &str,
        voter: &str,
        id: ProposalId,
        choice: Choice,
        votes: u64,
        now: u64,
    ) -> Result<(), DaoError> {
        self.scoped(scope)?.vote_quadratic(voter, id, choice, votes, now)
    }

    /// Sets (or with `None`, revokes) `from`'s delegate in *every*
    /// module — flat-governance delegation, the counterpart of
    /// [`ModularGovernance::join_all`]. All-or-nothing: the change is
    /// validated against every module (membership + cycle walk) before
    /// any module is mutated, so a rejected delegation leaves no module
    /// half-updated.
    pub fn set_delegate_all(&mut self, from: &str, to: Option<&str>) -> Result<(), DaoError> {
        // Dry-run pass: surface the first failure without mutating.
        for dao in self.modules.values() {
            dao.check_delegate(from, to)?;
        }
        for dao in self.modules.values_mut() {
            dao.set_delegate(from, to)?;
        }
        Ok(())
    }

    /// Closes a proposal in the scoped module.
    pub fn close(
        &mut self,
        scope: &str,
        id: ProposalId,
        now: u64,
    ) -> Result<(ProposalStatus, Tally), DaoError> {
        self.scoped(scope)?.close(id, now)
    }

    /// Ballots requested from `member` so far.
    pub fn requests_for(&self, member: &str) -> u64 {
        self.load.get(member).copied().unwrap_or(0)
    }

    /// Produces the load report and resets the counters.
    pub fn routing_report(&mut self) -> RoutingReport {
        let mut proposals_per_scope = BTreeMap::new();
        for (scope, dao) in &self.modules {
            let mut n = 0u64;
            let mut id = 1;
            while dao.proposal(id).is_some() {
                n += 1;
                id += 1;
            }
            proposals_per_scope.insert(scope.clone(), n);
        }
        let (sum, max, count) = self.load.values().fold((0u64, 0u64, 0u64), |(s, m, c), &v| {
            (s + v, m.max(v), c + 1)
        });
        let report = RoutingReport {
            proposals_per_scope,
            mean_requests_per_member: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            max_requests_per_member: max,
        };
        self.load.clear();
        report
    }

    /// Drains ledger records from every module.
    pub fn drain_ledger_records(&mut self) -> Vec<TxPayload> {
        let mut out = Vec::new();
        for dao in self.modules.values_mut() {
            out.extend(dao.drain_ledger_records());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quorum::QuorumRule;
    use crate::voting::VotingScheme;

    fn config() -> DaoConfig {
        DaoConfig {
            scheme: VotingScheme::OnePersonOneVote,
            quorum: QuorumRule::simple_majority(),
            ..DaoConfig::default()
        }
    }

    #[test]
    fn routing_isolates_load() {
        let mut gov = ModularGovernance::new();
        gov.register_module("privacy", config());
        gov.register_module("assets", config());
        gov.join("privacy", "alice").unwrap();
        gov.join("assets", "bob").unwrap();

        gov.propose("privacy", "alice", "p1", 0).unwrap();
        gov.propose("privacy", "alice", "p2", 0).unwrap();
        gov.propose("assets", "bob", "a1", 0).unwrap();

        assert_eq!(gov.requests_for("alice"), 2, "alice only sees privacy proposals");
        assert_eq!(gov.requests_for("bob"), 1);
    }

    #[test]
    fn flat_membership_sees_everything() {
        let mut gov = ModularGovernance::new();
        gov.register_module("privacy", config());
        gov.register_module("assets", config());
        gov.join_all("alice").unwrap();
        gov.propose("privacy", "alice", "p", 0).unwrap();
        gov.propose("assets", "alice", "a", 0).unwrap();
        assert_eq!(gov.requests_for("alice"), 2);
    }

    #[test]
    fn unknown_scope_errors() {
        let mut gov = ModularGovernance::new();
        assert!(matches!(
            gov.propose("ghost", "a", "t", 0),
            Err(DaoError::UnknownScope { .. })
        ));
    }

    #[test]
    fn full_lifecycle_through_federation() {
        let mut gov = ModularGovernance::new();
        gov.register_module("moderation", config());
        for m in ["a", "b", "c"] {
            gov.join("moderation", m).unwrap();
        }
        let id = gov.propose("moderation", "a", "ban griefer", 0).unwrap();
        gov.vote("moderation", "a", id, Choice::Yes, 0).unwrap();
        gov.vote("moderation", "b", id, Choice::Yes, 0).unwrap();
        gov.vote("moderation", "c", id, Choice::No, 0).unwrap();
        let (status, tally) = gov.close("moderation", id, 0).unwrap();
        assert_eq!(status, ProposalStatus::Accepted);
        assert_eq!(tally.voters, 3);
        assert!(!gov.drain_ledger_records().is_empty());
    }

    #[test]
    fn module_swap_replaces() {
        let mut gov = ModularGovernance::new();
        gov.register_module("privacy", config());
        gov.join("privacy", "alice").unwrap();
        // Swap in a token-weighted module: memberships reset by design —
        // a module swap is a constitutional change.
        gov.register_module(
            "privacy",
            DaoConfig { scheme: VotingScheme::TokenWeighted, ..config() },
        );
        assert!(!gov.module("privacy").unwrap().is_member("alice"));
        assert_eq!(
            gov.module("privacy").unwrap().config().scheme,
            VotingScheme::TokenWeighted
        );
    }

    #[test]
    fn routing_report_aggregates_and_resets() {
        let mut gov = ModularGovernance::new();
        gov.register_module("privacy", config());
        gov.join("privacy", "a").unwrap();
        gov.join("privacy", "b").unwrap();
        gov.propose("privacy", "a", "p", 0).unwrap();
        let report = gov.routing_report();
        assert_eq!(report.proposals_per_scope["privacy"], 1);
        assert!((report.mean_requests_per_member - 1.0).abs() < 1e-12);
        assert_eq!(report.max_requests_per_member, 1);
        assert_eq!(gov.requests_for("a"), 0, "counters reset");
    }
}
