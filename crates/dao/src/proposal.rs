//! Proposals and their lifecycle.

use serde::{Deserialize, Serialize};

/// Identifier of a proposal, unique within a platform.
pub type ProposalId = u64;

/// Lifecycle state of a proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProposalStatus {
    /// Accepting ballots.
    Open,
    /// Closed and accepted.
    Accepted,
    /// Closed and rejected (including failed quorum).
    Rejected,
}

/// A governance proposal.
///
/// Proposals carry a `scope` naming the platform module they concern
/// ("privacy", "moderation", "assets", …). Flat governance ignores the
/// scope and asks everyone; modular governance routes by it — the
/// difference experiment E7 measures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Proposal {
    /// Unique id.
    pub id: ProposalId,
    /// Short title.
    pub title: String,
    /// Longer human-readable rationale.
    pub description: String,
    /// Module/area the proposal concerns.
    pub scope: String,
    /// Tick at which the proposal was opened.
    pub created_at: u64,
    /// Tick after which no more ballots are accepted.
    pub deadline: u64,
    /// Current status.
    pub status: ProposalStatus,
    /// Account that opened the proposal.
    pub proposer: String,
}

impl Proposal {
    /// Creates an open proposal.
    pub fn new(
        id: ProposalId,
        proposer: impl Into<String>,
        title: impl Into<String>,
        scope: impl Into<String>,
        created_at: u64,
        voting_window: u64,
    ) -> Self {
        Proposal {
            id,
            title: title.into(),
            description: String::new(),
            scope: scope.into(),
            created_at,
            deadline: created_at + voting_window,
            status: ProposalStatus::Open,
            proposer: proposer.into(),
        }
    }

    /// Attaches a description (builder style).
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Whether ballots are accepted at `now`.
    pub fn accepts_votes(&self, now: u64) -> bool {
        self.status == ProposalStatus::Open && now <= self.deadline
    }

    /// Whether the voting window has elapsed.
    pub fn expired(&self, now: u64) -> bool {
        now > self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_windows() {
        let p = Proposal::new(1, "alice", "Lower bubble radius", "privacy", 10, 5);
        assert!(p.accepts_votes(10));
        assert!(p.accepts_votes(15));
        assert!(!p.accepts_votes(16));
        assert!(!p.expired(15));
        assert!(p.expired(16));
    }

    #[test]
    fn closed_proposal_rejects_votes() {
        let mut p = Proposal::new(1, "alice", "t", "s", 0, 100);
        p.status = ProposalStatus::Rejected;
        assert!(!p.accepts_votes(0));
    }

    #[test]
    fn builder_description() {
        let p = Proposal::new(2, "bob", "t", "s", 0, 1).with_description("why");
        assert_eq!(p.description, "why");
    }
}
