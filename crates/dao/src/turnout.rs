//! Voting-fatigue participation model.
//!
//! The paper's central scalability worry about flat DAOs:
//!
//! > "The flat-based design of several DAOs can hinder the members'
//! > involvement in the decision-making process as the number of voting
//! > sessions can become cumbersome." — §III-B
//!
//! [`FatigueModel`] turns that sentence into a measurable curve: the
//! probability that a member actually casts a requested ballot decays
//! exponentially with the number of requests they receive per epoch.
//! Experiment E7 drives flat and modular governance with the same
//! proposal load and compares realized turnout and decision quality.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Participation model: `P(vote | r requests) = base · 2^(-(r-1)/half_point)`.
///
/// `base` is the probability of voting when asked exactly once per epoch;
/// `half_point` is the number of *additional* requests that halves it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FatigueModel {
    /// Participation probability at one request per epoch.
    pub base: f64,
    /// Additional requests that halve participation.
    pub half_point: f64,
}

impl Default for FatigueModel {
    fn default() -> Self {
        // Calibrated to the turnout collapse reported anecdotally for
        // high-frequency DAO voting: ~70% at 1 request/epoch, ~35% at 9.
        FatigueModel { base: 0.7, half_point: 8.0 }
    }
}

impl FatigueModel {
    /// Probability that a member votes, given `requests` ballots asked of
    /// them this epoch (including this one).
    pub fn participation(&self, requests: u64) -> f64 {
        if requests == 0 {
            return 0.0;
        }
        let extra = (requests - 1) as f64;
        (self.base * 0.5f64.powf(extra / self.half_point)).clamp(0.0, 1.0)
    }

    /// Samples whether a member votes.
    pub fn votes<R: Rng + ?Sized>(&self, requests: u64, rng: &mut R) -> bool {
        rng.gen_bool(self.participation(requests))
    }

    /// Expected turnout when every member receives `requests` requests.
    pub fn expected_turnout(&self, requests: u64) -> f64 {
        self.participation(requests)
    }
}

/// One sampled epoch of turnout under a request load — a row in the E7
/// output table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurnoutSample {
    /// Ballot requests per member this epoch.
    pub requests_per_member: u64,
    /// Realized turnout fraction.
    pub turnout: f64,
}

/// Simulates turnout for a population of `members` each receiving
/// `requests` ballot requests, voting independently under `model`.
pub fn sample_turnout<R: Rng + ?Sized>(
    model: &FatigueModel,
    members: usize,
    requests: u64,
    rng: &mut R,
) -> TurnoutSample {
    if members == 0 {
        return TurnoutSample { requests_per_member: requests, turnout: 0.0 };
    }
    let voters = (0..members).filter(|_| model.votes(requests, rng)).count();
    TurnoutSample {
        requests_per_member: requests,
        turnout: voters as f64 / members as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn participation_monotonically_decreasing() {
        let m = FatigueModel::default();
        let mut prev = m.participation(1);
        for r in 2..50 {
            let p = m.participation(r);
            assert!(p < prev, "fatigue must reduce turnout: r={r}");
            prev = p;
        }
    }

    #[test]
    fn half_point_semantics() {
        let m = FatigueModel { base: 0.8, half_point: 4.0 };
        let p1 = m.participation(1);
        let p5 = m.participation(5); // 4 extra requests = one half-life
        assert!((p5 - p1 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_requests_zero_turnout() {
        let m = FatigueModel::default();
        assert_eq!(m.participation(0), 0.0);
    }

    #[test]
    fn sampled_turnout_tracks_expectation() {
        let m = FatigueModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_turnout(&m, 20_000, 1, &mut rng);
        assert!((s.turnout - 0.7).abs() < 0.02, "got {}", s.turnout);
        let s9 = sample_turnout(&m, 20_000, 9, &mut rng);
        assert!((s9.turnout - 0.35).abs() < 0.02, "got {}", s9.turnout);
    }

    #[test]
    fn empty_population() {
        let m = FatigueModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_turnout(&m, 0, 3, &mut rng).turnout, 0.0);
    }
}
