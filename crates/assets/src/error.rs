//! Error types for the assets crate.

use crate::nft::NftId;

/// Errors returned by asset operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AssetError {
    /// The asset does not exist.
    UnknownAsset {
        /// The missing id.
        id: NftId,
    },
    /// The actor does not own the asset.
    NotOwner {
        /// The asset.
        id: NftId,
        /// Who tried to act.
        actor: String,
        /// Who actually owns it.
        owner: String,
    },
    /// Minting identical content to an existing asset (scam copy).
    DuplicateContent {
        /// The pre-existing asset with the same content hash.
        original: NftId,
    },
    /// The creator is not admitted by the marketplace policy.
    NotAdmitted {
        /// The rejected creator.
        creator: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The asset is not listed for sale.
    NotListed {
        /// The unlisted asset.
        id: NftId,
    },
    /// The asset is already listed.
    AlreadyListed {
        /// The listed asset.
        id: NftId,
    },
    /// The buyer cannot afford the listing.
    InsufficientFunds {
        /// The buyer.
        buyer: String,
        /// Listing price.
        price: u64,
        /// Buyer balance.
        balance: u64,
    },
    /// Buying your own listing.
    SelfPurchase {
        /// The account involved.
        account: String,
    },
}

impl std::fmt::Display for AssetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssetError::UnknownAsset { id } => write!(f, "unknown asset {id}"),
            AssetError::NotOwner { id, actor, owner } => {
                write!(f, "{actor:?} does not own asset {id} (owner {owner:?})")
            }
            AssetError::DuplicateContent { original } => {
                write!(f, "content duplicates existing asset {original}")
            }
            AssetError::NotAdmitted { creator, reason } => {
                write!(f, "creator {creator:?} not admitted: {reason}")
            }
            AssetError::NotListed { id } => write!(f, "asset {id} is not listed"),
            AssetError::AlreadyListed { id } => write!(f, "asset {id} is already listed"),
            AssetError::InsufficientFunds { buyer, price, balance } => {
                write!(f, "{buyer:?} cannot pay {price} (balance {balance})")
            }
            AssetError::SelfPurchase { account } => {
                write!(f, "{account:?} cannot buy their own listing")
            }
        }
    }
}

impl std::error::Error for AssetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_ids() {
        let e = AssetError::UnknownAsset { id: 42 };
        assert!(e.to_string().contains("42"));
    }
}
