//! The NFT registry: minting, transfers, uniqueness, ledger export.

use std::collections::{BTreeMap, HashMap};

use metaverse_ledger::crypto::sha256::Digest;
use metaverse_ledger::tx::TxPayload;

use crate::error::AssetError;
use crate::nft::{Nft, NftId, Transfer};

/// The authoritative record of all minted assets.
///
/// ```
/// use metaverse_assets::registry::NftRegistry;
/// let mut reg = NftRegistry::new();
/// let id = reg.mint("alice", "meta://art/1", b"pixels", 0.9, 0).unwrap();
/// reg.transfer(id, "alice", "bob", 100, 1).unwrap();
/// assert_eq!(reg.get(id).unwrap().owner, "bob");
/// assert!(reg.mint("eve", "meta://copy", b"pixels", 0.9, 2).is_err());
/// ```
#[derive(Debug, Default)]
pub struct NftRegistry {
    assets: BTreeMap<NftId, Nft>,
    by_content: HashMap<Digest, NftId>,
    next_id: NftId,
    pending_records: Vec<TxPayload>,
}

impl NftRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        NftRegistry { next_id: 1, ..Default::default() }
    }

    /// Mints a new asset from content bytes.
    ///
    /// Rejects content identical to an already-minted asset — the
    /// uniqueness property ("scarcity and uniqueness", §IV-A) that makes
    /// outright copy-minting detectable on-chain.
    pub fn mint(
        &mut self,
        creator: &str,
        uri: &str,
        content: &[u8],
        quality: f64,
        now: u64,
    ) -> Result<NftId, AssetError> {
        let content_hash = Nft::hash_content(content);
        if let Some(&original) = self.by_content.get(&content_hash) {
            return Err(AssetError::DuplicateContent { original });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.by_content.insert(content_hash, id);
        self.assets.insert(
            id,
            Nft {
                id,
                uri: uri.to_string(),
                content_hash,
                creator: creator.to_string(),
                owner: creator.to_string(),
                quality: quality.clamp(0.0, 1.0),
                minted_at: now,
                provenance: Vec::new(),
            },
        );
        self.pending_records.push(TxPayload::AssetMint {
            asset_id: id,
            creator: creator.to_string(),
            uri: uri.to_string(),
        });
        Ok(id)
    }

    /// Transfers ownership. `from` must be the current owner.
    pub fn transfer(
        &mut self,
        id: NftId,
        from: &str,
        to: &str,
        price: u64,
        now: u64,
    ) -> Result<(), AssetError> {
        let asset = self.assets.get_mut(&id).ok_or(AssetError::UnknownAsset { id })?;
        if asset.owner != from {
            return Err(AssetError::NotOwner {
                id,
                actor: from.to_string(),
                owner: asset.owner.clone(),
            });
        }
        asset.provenance.push(Transfer {
            from: from.to_string(),
            to: to.to_string(),
            price,
            tick: now,
        });
        asset.owner = to.to_string();
        self.pending_records.push(TxPayload::AssetTransfer {
            asset_id: id,
            from: from.to_string(),
            to: to.to_string(),
            price,
        });
        Ok(())
    }

    /// Looks up an asset.
    pub fn get(&self, id: NftId) -> Option<&Nft> {
        self.assets.get(&id)
    }

    /// Whether content with this hash is already minted; returns the
    /// original asset id if so (near-duplicate detection hook).
    pub fn find_by_content(&self, content: &[u8]) -> Option<NftId> {
        self.by_content.get(&Nft::hash_content(content)).copied()
    }

    /// All assets currently owned by `account`.
    pub fn owned_by(&self, account: &str) -> Vec<&Nft> {
        self.assets.values().filter(|n| n.owner == account).collect()
    }

    /// All assets created by `account`.
    pub fn created_by(&self, account: &str) -> Vec<&Nft> {
        self.assets.values().filter(|n| n.creator == account).collect()
    }

    /// Number of minted assets.
    pub fn len(&self) -> usize {
        self.assets.len()
    }

    /// True when nothing has been minted.
    pub fn is_empty(&self) -> bool {
        self.assets.is_empty()
    }

    /// Iterates over all assets in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Nft> {
        self.assets.values()
    }

    /// Takes the ledger records accumulated since the last drain.
    pub fn drain_ledger_records(&mut self) -> Vec<TxPayload> {
        std::mem::take(&mut self.pending_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_and_lookup() {
        let mut reg = NftRegistry::new();
        let id = reg.mint("alice", "u", b"c1", 0.5, 7).unwrap();
        let nft = reg.get(id).unwrap();
        assert_eq!(nft.creator, "alice");
        assert_eq!(nft.minted_at, 7);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn duplicate_content_rejected() {
        let mut reg = NftRegistry::new();
        let original = reg.mint("alice", "u1", b"same", 0.5, 0).unwrap();
        let err = reg.mint("eve", "u2", b"same", 0.5, 1).unwrap_err();
        assert_eq!(err, AssetError::DuplicateContent { original });
        assert_eq!(reg.find_by_content(b"same"), Some(original));
    }

    #[test]
    fn transfer_checks_ownership() {
        let mut reg = NftRegistry::new();
        let id = reg.mint("alice", "u", b"c", 0.5, 0).unwrap();
        assert!(matches!(
            reg.transfer(id, "eve", "mallory", 1, 1),
            Err(AssetError::NotOwner { .. })
        ));
        reg.transfer(id, "alice", "bob", 10, 1).unwrap();
        assert_eq!(reg.get(id).unwrap().owner, "bob");
        reg.transfer(id, "bob", "carol", 20, 2).unwrap();
        let nft = reg.get(id).unwrap();
        assert_eq!(nft.provenance.len(), 2);
        assert_eq!(nft.provenance[0].to, "bob");
        assert!(nft.was_owned_by("alice"));
    }

    #[test]
    fn unknown_asset_errors() {
        let mut reg = NftRegistry::new();
        assert!(matches!(
            reg.transfer(99, "a", "b", 0, 0),
            Err(AssetError::UnknownAsset { id: 99 })
        ));
        assert!(reg.get(99).is_none());
    }

    #[test]
    fn ownership_views() {
        let mut reg = NftRegistry::new();
        let a = reg.mint("alice", "u1", b"1", 0.5, 0).unwrap();
        let _b = reg.mint("alice", "u2", b"2", 0.5, 0).unwrap();
        reg.transfer(a, "alice", "bob", 5, 1).unwrap();
        assert_eq!(reg.owned_by("alice").len(), 1);
        assert_eq!(reg.owned_by("bob").len(), 1);
        assert_eq!(reg.created_by("alice").len(), 2);
    }

    #[test]
    fn ledger_records_emitted() {
        let mut reg = NftRegistry::new();
        let id = reg.mint("alice", "u", b"c", 0.5, 0).unwrap();
        reg.transfer(id, "alice", "bob", 10, 1).unwrap();
        let records = reg.drain_ledger_records();
        assert_eq!(records.len(), 2);
        assert!(matches!(records[0], TxPayload::AssetMint { .. }));
        assert!(matches!(records[1], TxPayload::AssetTransfer { price: 10, .. }));
    }

    #[test]
    fn quality_clamped() {
        let mut reg = NftRegistry::new();
        let id = reg.mint("a", "u", b"c", 7.5, 0).unwrap();
        assert_eq!(reg.get(id).unwrap().quality, 1.0);
    }
}
