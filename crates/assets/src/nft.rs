//! Non-fungible assets with content hashes and provenance.

use metaverse_ledger::crypto::sha256::{sha256, Digest};
use serde::{Deserialize, Serialize};

/// Identifier of an asset, unique within a registry.
pub type NftId = u64;

/// One ownership transfer in an asset's provenance chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Previous owner.
    pub from: String,
    /// New owner.
    pub to: String,
    /// Sale price (0 for gifts/mints).
    pub price: u64,
    /// Logical time of the transfer.
    pub tick: u64,
}

/// A non-fungible asset.
///
/// The `content` bytes stand in for the referenced digital artwork; the
/// registry hashes them so *identical* content cannot be re-minted — the
/// simulation's model of "scammers […] sell copies" (§IV-A). `quality` is
/// the asset's intrinsic quality in `[0, 1]`, observable to buyers only
/// noisily, which is what makes low-quality scam NFTs sellable at all.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nft {
    /// Unique id within the registry.
    pub id: NftId,
    /// URI referencing the off-chain content.
    pub uri: String,
    /// Hash of the content bytes (uniqueness anchor).
    pub content_hash: Digest,
    /// Original creator (receives royalties).
    pub creator: String,
    /// Current owner.
    pub owner: String,
    /// Intrinsic quality in `[0, 1]` (simulation attribute).
    pub quality: f64,
    /// Tick at which the asset was minted.
    pub minted_at: u64,
    /// Full transfer history, oldest first.
    pub provenance: Vec<Transfer>,
}

impl Nft {
    /// Computes the content hash for raw content bytes.
    pub fn hash_content(content: &[u8]) -> Digest {
        sha256(content)
    }

    /// Number of times the asset has changed hands (excluding mint).
    pub fn transfer_count(&self) -> usize {
        self.provenance.len()
    }

    /// Whether `account` ever owned this asset.
    pub fn was_owned_by(&self, account: &str) -> bool {
        self.creator == account
            || self.owner == account
            || self.provenance.iter().any(|t| t.from == account || t.to == account)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nft() -> Nft {
        Nft {
            id: 1,
            uri: "meta://art/1".into(),
            content_hash: Nft::hash_content(b"pixels"),
            creator: "alice".into(),
            owner: "alice".into(),
            quality: 0.8,
            minted_at: 0,
            provenance: vec![],
        }
    }

    #[test]
    fn content_hash_distinguishes() {
        assert_ne!(Nft::hash_content(b"a"), Nft::hash_content(b"b"));
        assert_eq!(Nft::hash_content(b"a"), Nft::hash_content(b"a"));
    }

    #[test]
    fn ownership_history() {
        let mut n = nft();
        assert!(n.was_owned_by("alice"));
        assert!(!n.was_owned_by("bob"));
        n.provenance.push(Transfer { from: "alice".into(), to: "bob".into(), price: 5, tick: 1 });
        n.owner = "bob".into();
        assert!(n.was_owned_by("alice"), "provenance keeps past owners");
        assert!(n.was_owned_by("bob"));
        assert_eq!(n.transfer_count(), 1);
    }
}
