//! # metaverse-assets
//!
//! Non-fungible assets, provenance, and marketplace policies for
//! `metaverse-kit`, implementing §IV-A of the paper:
//!
//! > "NFTs are a one-to-one mapping between an owner (represented by a
//! > crypto wallet address) and the asset referencing the NFT (usually by
//! > a uniform resource identifier, URI). NFTs replicate the properties
//! > of physical objects such as scarcity and uniqueness."
//!
//! and its open problem:
//!
//! > "Several trading platforms of NFT are using 'invite-only' policies
//! > […] This kind of policy diminishes the advantages of NFTs as an
//! > open-access content creation tool. A possible solution can be seen
//! > in using DAOs and users of the platform to implement a
//! > reputation-based system where everyone can vote and enforce norms to
//! > keep the quality of NFTs and reduce scams."
//!
//! Components:
//!
//! * [`nft`] — assets with ledger-hashable content and full provenance.
//! * [`registry`] — mint/transfer with uniqueness (duplicate-content
//!   detection) and ledger-record export.
//! * [`market`] — listings, sales, and the three admission policies the
//!   paper contrasts: open, invite-only, and reputation-gated.
//! * [`economy`] — the creator/scammer/buyer agent simulation behind
//!   experiment E10.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod economy;
pub mod error;
pub mod market;
pub mod nft;
pub mod registry;

pub use economy::{EconomyConfig, EconomyReport, NftEconomy};
pub use error::AssetError;
pub use market::{AdmissionPolicy, Listing, Marketplace, SaleRecord};
pub use nft::{Nft, NftId, Transfer};
pub use registry::NftRegistry;
