//! The NFT marketplace and its admission policies.
//!
//! The paper contrasts three ways of deciding who may sell (§IV-A):
//! fully open access (maximal openness, maximal scam exposure),
//! invite-only lists ("diminishes the advantages of NFTs as an
//! open-access content creation tool"), and the community's proposed
//! remedy — a reputation-based gate enforced by DAO-governed norms.
//! [`AdmissionPolicy`] makes the three swappable; experiment E10 runs the
//! same economy under each and reports openness vs. scam rate.

use std::collections::{BTreeMap, HashSet};

use metaverse_reputation::engine::ReputationEngine;
use serde::{Deserialize, Serialize};

use crate::error::AssetError;
use crate::nft::NftId;
use crate::registry::NftRegistry;

/// Who is allowed to list assets for sale.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum AdmissionPolicy {
    /// Anyone may sell.
    Open,
    /// Only explicitly invited creators may sell.
    InviteOnly {
        /// The invited set.
        invited: HashSet<String>,
    },
    /// Creators must hold at least `min_points` reputation.
    ReputationGated {
        /// Minimum reputation in points (0–100).
        min_points: f64,
    },
}

impl AdmissionPolicy {
    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Open => "open",
            AdmissionPolicy::InviteOnly { .. } => "invite-only",
            AdmissionPolicy::ReputationGated { .. } => "reputation-gated",
        }
    }

    /// Whether `creator` may list, consulting `reputation` when gated.
    pub fn admits(&self, creator: &str, reputation: Option<&ReputationEngine>) -> bool {
        match self {
            AdmissionPolicy::Open => true,
            AdmissionPolicy::InviteOnly { invited } => invited.contains(creator),
            AdmissionPolicy::ReputationGated { min_points } => reputation
                .and_then(|r| r.score(creator).ok())
                .map(|s| s.points() >= *min_points)
                .unwrap_or(false),
        }
    }
}

/// An active sale listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Listing {
    /// The asset for sale.
    pub asset: NftId,
    /// Seller account (must own the asset).
    pub seller: String,
    /// Asking price.
    pub price: u64,
    /// Tick the listing was created.
    pub listed_at: u64,
}

/// A completed sale, for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaleRecord {
    /// The asset sold.
    pub asset: NftId,
    /// Seller.
    pub seller: String,
    /// Buyer.
    pub buyer: String,
    /// Price paid.
    pub price: u64,
    /// Tick of the sale.
    pub tick: u64,
}

/// The marketplace: balances, listings, sales, and the admission gate.
#[derive(Debug)]
pub struct Marketplace {
    policy: AdmissionPolicy,
    listings: BTreeMap<NftId, Listing>,
    balances: BTreeMap<String, u64>,
    sales: Vec<SaleRecord>,
    /// Creators turned away by the admission policy (openness metric).
    rejected_creators: HashSet<String>,
}

impl Marketplace {
    /// Creates a marketplace with the given admission policy.
    pub fn new(policy: AdmissionPolicy) -> Self {
        Marketplace {
            policy,
            listings: BTreeMap::new(),
            balances: BTreeMap::new(),
            sales: Vec::new(),
            rejected_creators: HashSet::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Swaps the admission policy (module swap).
    pub fn set_policy(&mut self, policy: AdmissionPolicy) {
        self.policy = policy;
    }

    /// Credits an account's wallet.
    pub fn deposit(&mut self, account: &str, amount: u64) {
        *self.balances.entry(account.to_string()).or_insert(0) += amount;
    }

    /// Current wallet balance.
    pub fn balance(&self, account: &str) -> u64 {
        self.balances.get(account).copied().unwrap_or(0)
    }

    /// Debits an account's wallet. The inverse of
    /// [`Marketplace::deposit`]; a cross-shard settlement layer moves
    /// funds between shard marketplaces with a withdraw+deposit pair,
    /// which conserves total supply by construction.
    pub fn withdraw(&mut self, account: &str, amount: u64) -> Result<(), AssetError> {
        let balance = self.balance(account);
        if balance < amount {
            return Err(AssetError::InsufficientFunds {
                buyer: account.to_string(),
                price: amount,
                balance,
            });
        }
        if let Some(b) = self.balances.get_mut(account) {
            *b -= amount;
        }
        Ok(())
    }

    /// Sum of every wallet balance (conservation audits).
    pub fn total_balance(&self) -> u64 {
        self.balances.values().sum()
    }

    /// The active listing for an asset, if any.
    pub fn listing(&self, asset: NftId) -> Option<&Listing> {
        self.listings.get(&asset)
    }

    /// Lists an owned asset for sale, subject to the admission policy.
    pub fn list(
        &mut self,
        registry: &NftRegistry,
        reputation: Option<&ReputationEngine>,
        seller: &str,
        asset: NftId,
        price: u64,
        now: u64,
    ) -> Result<(), AssetError> {
        let nft = registry.get(asset).ok_or(AssetError::UnknownAsset { id: asset })?;
        if nft.owner != seller {
            return Err(AssetError::NotOwner {
                id: asset,
                actor: seller.to_string(),
                owner: nft.owner.clone(),
            });
        }
        if !self.policy.admits(seller, reputation) {
            self.rejected_creators.insert(seller.to_string());
            return Err(AssetError::NotAdmitted {
                creator: seller.to_string(),
                reason: format!("policy {}", self.policy.label()),
            });
        }
        if self.listings.contains_key(&asset) {
            return Err(AssetError::AlreadyListed { id: asset });
        }
        self.listings.insert(
            asset,
            Listing { asset, seller: seller.to_string(), price, listed_at: now },
        );
        Ok(())
    }

    /// Withdraws a listing.
    pub fn delist(&mut self, seller: &str, asset: NftId) -> Result<(), AssetError> {
        match self.listings.get(&asset) {
            Some(l) if l.seller == seller => {
                self.listings.remove(&asset);
                Ok(())
            }
            Some(l) => Err(AssetError::NotOwner {
                id: asset,
                actor: seller.to_string(),
                owner: l.seller.clone(),
            }),
            None => Err(AssetError::NotListed { id: asset }),
        }
    }

    /// Buys a listed asset: moves funds, transfers ownership in the
    /// registry, records the sale.
    pub fn buy(
        &mut self,
        registry: &mut NftRegistry,
        buyer: &str,
        asset: NftId,
        now: u64,
    ) -> Result<SaleRecord, AssetError> {
        let listing =
            self.listings.get(&asset).cloned().ok_or(AssetError::NotListed { id: asset })?;
        if listing.seller == buyer {
            return Err(AssetError::SelfPurchase { account: buyer.to_string() });
        }
        let balance = self.balance(buyer);
        if balance < listing.price {
            return Err(AssetError::InsufficientFunds {
                buyer: buyer.to_string(),
                price: listing.price,
                balance,
            });
        }
        registry.transfer(asset, &listing.seller, buyer, listing.price, now)?;
        *self.balances.get_mut(buyer).ok_or_else(|| AssetError::InsufficientFunds {
            buyer: buyer.to_string(),
            price: listing.price,
            balance,
        })? -= listing.price;
        *self.balances.entry(listing.seller.clone()).or_insert(0) += listing.price;
        self.listings.remove(&asset);
        let record = SaleRecord {
            asset,
            seller: listing.seller,
            buyer: buyer.to_string(),
            price: listing.price,
            tick: now,
        };
        self.sales.push(record.clone());
        Ok(record)
    }

    /// Active listings, cheapest first.
    pub fn listings(&self) -> Vec<&Listing> {
        let mut ls: Vec<&Listing> = self.listings.values().collect();
        ls.sort_by_key(|l| l.price);
        ls
    }

    /// Completed sales, oldest first.
    pub fn sales(&self) -> &[SaleRecord] {
        &self.sales
    }

    /// Creators the policy has turned away so far.
    pub fn rejected_creators(&self) -> &HashSet<String> {
        &self.rejected_creators
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_reputation::engine::EngineConfig;

    fn setup() -> (NftRegistry, Marketplace) {
        let mut reg = NftRegistry::new();
        let mut market = Marketplace::new(AdmissionPolicy::Open);
        reg.mint("alice", "u1", b"art1", 0.9, 0).unwrap();
        market.deposit("bob", 1000);
        (reg, market)
    }

    #[test]
    fn list_buy_roundtrip() {
        let (mut reg, mut market) = setup();
        market.list(&reg, None, "alice", 1, 100, 0).unwrap();
        let sale = market.buy(&mut reg, "bob", 1, 1).unwrap();
        assert_eq!(sale.price, 100);
        assert_eq!(reg.get(1).unwrap().owner, "bob");
        assert_eq!(market.balance("bob"), 900);
        assert_eq!(market.balance("alice"), 100);
        assert!(market.listings().is_empty());
        assert_eq!(market.sales().len(), 1);
    }

    #[test]
    fn withdraw_debits_and_conserves() {
        let (_reg, mut market) = setup();
        market.deposit("alice", 500);
        assert_eq!(market.total_balance(), 1500);
        market.withdraw("bob", 400).unwrap();
        assert_eq!(market.balance("bob"), 600);
        assert!(matches!(
            market.withdraw("bob", 601),
            Err(AssetError::InsufficientFunds { .. })
        ));
        assert_eq!(market.balance("bob"), 600, "failed withdraw touches nothing");
        // A withdraw+deposit pair across two marketplaces is zero-sum.
        market.deposit("alice", 400);
        assert_eq!(market.total_balance(), 1500);
    }

    #[test]
    fn listing_lookup_by_asset() {
        let (reg, mut market) = setup();
        assert!(market.listing(1).is_none());
        market.list(&reg, None, "alice", 1, 100, 0).unwrap();
        let listing = market.listing(1).expect("listed");
        assert_eq!(listing.price, 100);
        assert_eq!(listing.seller, "alice");
    }

    #[test]
    fn non_owner_cannot_list() {
        let (reg, mut market) = setup();
        assert!(matches!(
            market.list(&reg, None, "eve", 1, 5, 0),
            Err(AssetError::NotOwner { .. })
        ));
    }

    #[test]
    fn double_listing_rejected() {
        let (reg, mut market) = setup();
        market.list(&reg, None, "alice", 1, 100, 0).unwrap();
        assert!(matches!(
            market.list(&reg, None, "alice", 1, 90, 0),
            Err(AssetError::AlreadyListed { .. })
        ));
    }

    #[test]
    fn insufficient_funds() {
        let (mut reg, mut market) = setup();
        market.list(&reg, None, "alice", 1, 5000, 0).unwrap();
        assert!(matches!(
            market.buy(&mut reg, "bob", 1, 1),
            Err(AssetError::InsufficientFunds { .. })
        ));
    }

    #[test]
    fn self_purchase_rejected() {
        let (mut reg, mut market) = setup();
        market.deposit("alice", 1000);
        market.list(&reg, None, "alice", 1, 10, 0).unwrap();
        assert!(matches!(
            market.buy(&mut reg, "alice", 1, 1),
            Err(AssetError::SelfPurchase { .. })
        ));
    }

    #[test]
    fn delist_requires_seller() {
        let (reg, mut market) = setup();
        market.list(&reg, None, "alice", 1, 100, 0).unwrap();
        assert!(market.delist("bob", 1).is_err());
        market.delist("alice", 1).unwrap();
        assert!(matches!(market.delist("alice", 1), Err(AssetError::NotListed { .. })));
    }

    #[test]
    fn invite_only_gate() {
        let (reg, mut market) = setup();
        let mut invited = HashSet::new();
        invited.insert("vip".to_string());
        market.set_policy(AdmissionPolicy::InviteOnly { invited });
        let err = market.list(&reg, None, "alice", 1, 100, 0).unwrap_err();
        assert!(matches!(err, AssetError::NotAdmitted { .. }));
        assert!(market.rejected_creators().contains("alice"));
    }

    #[test]
    fn reputation_gate() {
        let (reg, mut market) = setup();
        market.set_policy(AdmissionPolicy::ReputationGated { min_points: 40.0 });
        let mut rep = ReputationEngine::new(EngineConfig::default());
        rep.register("alice", 0).unwrap(); // prior 50 points
        market.list(&reg, Some(&rep), "alice", 1, 100, 0).unwrap();

        // Tank the score below the gate: listing a second asset fails.
        rep.system_delta("alice", -20_000, "scam reports", 0).unwrap();
        let mut reg2 = NftRegistry::new();
        reg2.mint("alice", "u2", b"art2", 0.9, 0).unwrap();
        let mut market2 = Marketplace::new(AdmissionPolicy::ReputationGated { min_points: 40.0 });
        assert!(market2.list(&reg2, Some(&rep), "alice", 1, 100, 0).is_err());
    }

    #[test]
    fn reputation_gate_without_engine_rejects() {
        let (reg, mut market) = setup();
        market.set_policy(AdmissionPolicy::ReputationGated { min_points: 0.0 });
        assert!(market.list(&reg, None, "alice", 1, 100, 0).is_err());
    }

    #[test]
    fn listings_sorted_by_price() {
        let mut reg = NftRegistry::new();
        let a = reg.mint("s", "u1", b"1", 0.5, 0).unwrap();
        let b = reg.mint("s", "u2", b"2", 0.5, 0).unwrap();
        let mut market = Marketplace::new(AdmissionPolicy::Open);
        market.list(&reg, None, "s", a, 200, 0).unwrap();
        market.list(&reg, None, "s", b, 100, 0).unwrap();
        let prices: Vec<u64> = market.listings().iter().map(|l| l.price).collect();
        assert_eq!(prices, vec![100, 200]);
    }
}
