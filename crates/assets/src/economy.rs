//! The creator / scammer / buyer economy simulation (experiment E10).
//!
//! Models the paper's §IV-A market dilemma. Three creator policies are
//! compared on the same agent population:
//!
//! * **open** — everyone sells; scammers operate freely.
//! * **invite-only** — an allowlist excludes scammers *and* most honest
//!   newcomers ("diminishes the advantages of NFTs as an open-access
//!   content creation tool").
//! * **reputation-gated** — everyone starts admitted; buyers report
//!   scam purchases, reports depress reputation, and scammers fall below
//!   the gate — the paper's proposed community remedy.
//!
//! The report captures the trade-off the paper describes qualitatively:
//! openness (fraction of honest creators able to sell) versus scam rate
//! (fraction of sales that were scams).

use std::collections::HashSet;

use metaverse_reputation::engine::{EngineConfig, ReputationEngine};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::market::{AdmissionPolicy, Marketplace};
use crate::registry::NftRegistry;

/// Parameters of an economy run.
#[derive(Debug, Clone)]
pub struct EconomyConfig {
    /// Honest creators (mint original, high-quality work).
    pub honest_creators: usize,
    /// Scam creators (mint derivative, low-quality work).
    pub scammers: usize,
    /// Buyer population.
    pub buyers: usize,
    /// Simulation rounds.
    pub rounds: usize,
    /// Probability a buyer recognises a scam purchase and reports it.
    pub scam_detection: f64,
    /// Flat sale price.
    pub price: u64,
    /// Reputation threshold for the gated policy.
    pub gate_points: f64,
    /// Fraction of honest creators on the invite list.
    pub invite_fraction: f64,
}

impl Default for EconomyConfig {
    fn default() -> Self {
        EconomyConfig {
            honest_creators: 40,
            scammers: 10,
            buyers: 100,
            rounds: 50,
            scam_detection: 0.5,
            price: 100,
            gate_points: 35.0,
            invite_fraction: 0.4,
        }
    }
}

/// Outcome of one economy run — a row in the E10 table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EconomyReport {
    /// Policy label.
    pub policy: String,
    /// Fraction of *honest* creators who managed to sell at least once.
    pub honest_openness: f64,
    /// Fraction of completed sales that were scam assets.
    pub scam_sale_rate: f64,
    /// Total revenue earned by honest creators.
    pub honest_revenue: u64,
    /// Total revenue earned by scammers.
    pub scam_revenue: u64,
    /// Scam sale rate in the final quarter of the run (shows convergence
    /// of the reputation gate).
    pub late_scam_rate: f64,
    /// Total completed sales.
    pub total_sales: usize,
}

/// The simulation driver.
#[derive(Debug)]
pub struct NftEconomy {
    config: EconomyConfig,
}

impl NftEconomy {
    /// Creates a driver for the given configuration.
    pub fn new(config: EconomyConfig) -> Self {
        NftEconomy { config }
    }

    fn honest_name(i: usize) -> String {
        format!("creator-{i}")
    }

    fn scammer_name(i: usize) -> String {
        format!("scammer-{i}")
    }

    /// Runs the economy under `policy_kind` ("open", "invite-only",
    /// "reputation-gated") and returns the report.
    pub fn run<R: Rng + ?Sized>(&self, policy_kind: &str, rng: &mut R) -> EconomyReport {
        let cfg = &self.config;
        let policy = match policy_kind {
            "invite-only" => {
                let take = ((cfg.honest_creators as f64) * cfg.invite_fraction).round() as usize;
                let invited: HashSet<String> =
                    (0..take).map(Self::honest_name).collect();
                AdmissionPolicy::InviteOnly { invited }
            }
            "reputation-gated" => AdmissionPolicy::ReputationGated { min_points: cfg.gate_points },
            _ => AdmissionPolicy::Open,
        };

        let mut registry = NftRegistry::new();
        let mut market = Marketplace::new(policy);
        let mut reputation = ReputationEngine::new(EngineConfig {
            epoch_action_limit: u32::MAX,
            decay_half_life: 0,
            ..EngineConfig::default()
        });

        let mut creators: Vec<(String, bool)> = Vec::new(); // (name, is_scammer)
        for i in 0..cfg.honest_creators {
            creators.push((Self::honest_name(i), false));
        }
        for i in 0..cfg.scammers {
            creators.push((Self::scammer_name(i), true));
        }
        for (name, _) in &creators {
            reputation.register(name, 0).unwrap();
        }
        let buyer_names: Vec<String> = (0..cfg.buyers).map(|i| format!("buyer-{i}")).collect();
        for b in &buyer_names {
            reputation.register(b, 0).unwrap();
            market.deposit(b, cfg.price * cfg.rounds as u64);
        }

        let mut sold_honest: HashSet<String> = HashSet::new();
        let mut sales_scam_flags: Vec<bool> = Vec::new();
        let (mut honest_revenue, mut scam_revenue) = (0u64, 0u64);
        let mut content_counter = 0u64;

        for round in 0..cfg.rounds {
            let now = round as u64;
            // 1. Creators mint and list.
            for (name, is_scammer) in &creators {
                content_counter += 1;
                let quality = if *is_scammer {
                    rng.gen_range(0.0..0.25)
                } else {
                    rng.gen_range(0.6..1.0)
                };
                let content = format!("content:{name}:{content_counter}");
                let Ok(id) =
                    registry.mint(name, &format!("meta://{name}/{content_counter}"), content.as_bytes(), quality, now)
                else {
                    continue;
                };
                // Listing is where the admission policy bites.
                let _ = market.list(&registry, Some(&reputation), name, id, cfg.price, now);
            }

            // 2. Buyers purchase random listings.
            for buyer in &buyer_names {
                let listings = market.listings();
                if listings.is_empty() {
                    break;
                }
                let pick = listings[rng.gen_range(0..listings.len())].asset;
                let Ok(sale) = market.buy(&mut registry, buyer, pick, now) else {
                    continue;
                };
                let nft = registry.get(sale.asset).expect("sold asset exists");
                let is_scam = creators
                    .iter()
                    .find(|(n, _)| *n == sale.seller)
                    .map(|(_, s)| *s)
                    .unwrap_or(false);
                sales_scam_flags.push(is_scam);
                if is_scam {
                    scam_revenue += sale.price;
                    // Imperfect detection: quality is only noisily
                    // observable post-purchase.
                    let p = cfg.scam_detection * (1.0 - nft.quality);
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        let _ = reputation.report(buyer, &sale.seller, now);
                    }
                } else {
                    honest_revenue += sale.price;
                    sold_honest.insert(sale.seller.clone());
                    if rng.gen_bool(0.1) {
                        let _ = reputation.endorse(buyer, &sale.seller, now);
                    }
                }
            }
        }

        let total_sales = sales_scam_flags.len();
        let scam_sales = sales_scam_flags.iter().filter(|s| **s).count();
        let late_start = total_sales - total_sales / 4;
        let late = &sales_scam_flags[late_start..];
        let late_scams = late.iter().filter(|s| **s).count();

        EconomyReport {
            policy: policy_kind.to_string(),
            honest_openness: sold_honest.len() as f64 / cfg.honest_creators.max(1) as f64,
            scam_sale_rate: if total_sales == 0 {
                0.0
            } else {
                scam_sales as f64 / total_sales as f64
            },
            honest_revenue,
            scam_revenue,
            late_scam_rate: if late.is_empty() {
                0.0
            } else {
                late_scams as f64 / late.len() as f64
            },
            total_sales,
        }
    }

    /// Runs all three policies with independent RNG streams derived from
    /// `seed` and returns the comparison rows.
    pub fn compare(&self, seed: u64) -> Vec<EconomyReport> {
        use rand::SeedableRng;
        ["open", "invite-only", "reputation-gated"]
            .iter()
            .map(|p| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                self.run(p, &mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EconomyConfig {
        EconomyConfig {
            honest_creators: 20,
            scammers: 6,
            buyers: 40,
            rounds: 30,
            ..EconomyConfig::default()
        }
    }

    #[test]
    fn open_policy_maximizes_openness() {
        let reports = NftEconomy::new(small()).compare(11);
        let open = &reports[0];
        let invite = &reports[1];
        assert!(open.honest_openness > invite.honest_openness);
        assert!(open.honest_openness > 0.8, "open: {}", open.honest_openness);
    }

    #[test]
    fn invite_only_minimizes_scams_but_closes_market() {
        let reports = NftEconomy::new(small()).compare(12);
        let invite = &reports[1];
        assert_eq!(invite.scam_sale_rate, 0.0, "no scammer is ever invited");
        assert!(
            invite.honest_openness < 0.6,
            "invite list excludes most honest creators: {}",
            invite.honest_openness
        );
    }

    #[test]
    fn reputation_gate_converges_to_low_scam_rate() {
        let reports = NftEconomy::new(small()).compare(13);
        let open = &reports[0];
        let gated = &reports[2];
        assert!(
            gated.late_scam_rate < open.late_scam_rate,
            "gate should squeeze out scammers late: gated {} vs open {}",
            gated.late_scam_rate,
            open.late_scam_rate
        );
        assert!(
            gated.honest_openness > 0.7,
            "gate keeps honest creators in: {}",
            gated.honest_openness
        );
    }

    #[test]
    fn reports_have_sane_ranges() {
        for report in NftEconomy::new(small()).compare(14) {
            assert!((0.0..=1.0).contains(&report.honest_openness), "{report:?}");
            assert!((0.0..=1.0).contains(&report.scam_sale_rate), "{report:?}");
            assert!((0.0..=1.0).contains(&report.late_scam_rate), "{report:?}");
            assert!(report.total_sales > 0, "{report:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = NftEconomy::new(small()).compare(42);
        let b = NftEconomy::new(small()).compare(42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_sales, y.total_sales);
            assert_eq!(x.honest_revenue, y.honest_revenue);
        }
    }
}
