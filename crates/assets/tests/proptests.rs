//! Property-based tests for asset-registry and marketplace invariants.

use metaverse_assets::market::{AdmissionPolicy, Marketplace};
use metaverse_assets::registry::NftRegistry;
use proptest::prelude::*;

proptest! {
    /// Ownership conservation: after any sequence of transfers, every
    /// asset has exactly one owner and its provenance chain links up.
    #[test]
    fn provenance_chains_link(
        transfers in proptest::collection::vec((0usize..5, 0usize..5), 0..40),
    ) {
        let accounts = ["a", "b", "c", "d", "e"];
        let mut registry = NftRegistry::new();
        let id = registry.mint("a", "uri", b"content", 0.5, 0).unwrap();
        let mut expected_owner = "a".to_string();
        for (tick, (from, to)) in transfers.iter().enumerate() {
            let (from, to) = (accounts[*from], accounts[*to]);
            let result = registry.transfer(id, from, to, 1, tick as u64);
            if from == expected_owner {
                prop_assert!(result.is_ok());
                expected_owner = to.to_string();
            } else {
                prop_assert!(result.is_err(), "non-owner transfer must fail");
            }
        }
        let nft = registry.get(id).unwrap();
        prop_assert_eq!(&nft.owner, &expected_owner);
        // The provenance chain is contiguous from creator to owner.
        let mut cursor = nft.creator.clone();
        for hop in &nft.provenance {
            prop_assert_eq!(&hop.from, &cursor);
            cursor = hop.to.clone();
        }
        prop_assert_eq!(cursor, expected_owner);
    }

    /// Content uniqueness: minting any set of contents succeeds exactly
    /// once per distinct content.
    #[test]
    fn duplicate_contents_rejected(
        contents in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..8), 1..30),
    ) {
        let mut registry = NftRegistry::new();
        let mut seen = std::collections::HashSet::new();
        for (i, content) in contents.iter().enumerate() {
            let result = registry.mint("c", &format!("u{i}"), content, 0.5, 0);
            if seen.insert(content.clone()) {
                prop_assert!(result.is_ok());
            } else {
                prop_assert!(result.is_err());
            }
        }
        prop_assert_eq!(registry.len(), seen.len());
    }

    /// Money conservation in the marketplace: the sum of balances never
    /// changes through any sequence of successful sales.
    #[test]
    fn marketplace_conserves_money(
        prices in proptest::collection::vec(1u64..500, 1..15),
    ) {
        let mut registry = NftRegistry::new();
        let mut market = Marketplace::new(AdmissionPolicy::Open);
        market.deposit("buyer", 10_000);
        market.deposit("seller", 0);
        let total_before = market.balance("buyer") + market.balance("seller");

        let mut sold = 0u64;
        for (i, price) in prices.iter().enumerate() {
            let id = registry
                .mint("seller", &format!("u{i}"), format!("c{i}").as_bytes(), 0.5, 0)
                .unwrap();
            market.list(&registry, None, "seller", id, *price, 0).unwrap();
            if market.buy(&mut registry, "buyer", id, 0).is_ok() {
                sold += price;
            }
        }
        let total_after = market.balance("buyer") + market.balance("seller");
        prop_assert_eq!(total_before, total_after, "no money minted or burned");
        prop_assert_eq!(market.balance("seller"), sold);
    }

    /// Listings and sales partition: an asset is never simultaneously
    /// listed and sold, and every sale removes its listing.
    #[test]
    fn listings_and_sales_disjoint(
        buy_mask in proptest::collection::vec(any::<bool>(), 1..20),
    ) {
        let mut registry = NftRegistry::new();
        let mut market = Marketplace::new(AdmissionPolicy::Open);
        market.deposit("buyer", 1_000_000);
        let mut listed = Vec::new();
        for (i, buy) in buy_mask.iter().enumerate() {
            let id = registry
                .mint("seller", &format!("u{i}"), format!("c{i}").as_bytes(), 0.5, 0)
                .unwrap();
            market.list(&registry, None, "seller", id, 10, 0).unwrap();
            if *buy {
                market.buy(&mut registry, "buyer", id, 0).unwrap();
            } else {
                listed.push(id);
            }
        }
        let listing_ids: Vec<u64> = market.listings().iter().map(|l| l.asset).collect();
        prop_assert_eq!(listing_ids.len(), listed.len());
        for sale in market.sales() {
            prop_assert!(!listing_ids.contains(&sale.asset));
            prop_assert_eq!(registry.get(sale.asset).unwrap().owner.as_str(), "buyer");
        }
    }
}
