//! Property-based tests for digital-twin invariants.

use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::{DigitalTwin, TwinState};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    /// State digests are injective over (values, version) within
    /// generated samples, and stable.
    #[test]
    fn digest_stable_and_sensitive(
        values in proptest::collection::vec(-100.0f64..100.0, 1..20),
        version in 0u64..1000,
        perturb_index in 0usize..20,
    ) {
        let state = TwinState { values: values.clone(), version };
        prop_assert_eq!(state.digest(), state.clone().digest());
        let mut perturbed = state.clone();
        let idx = perturb_index % values.len();
        perturbed.values[idx] += 0.5;
        prop_assert_ne!(state.digest(), perturbed.digest());
        let mut bumped = state.clone();
        bumped.version += 1;
        prop_assert_ne!(state.digest(), bumped.digest());
    }

    /// Divergence is a metric-ish: non-negative, zero on self, and
    /// symmetric.
    #[test]
    fn divergence_symmetric(
        a in proptest::collection::vec(-10.0f64..10.0, 1..10),
        b in proptest::collection::vec(-10.0f64..10.0, 1..10),
    ) {
        let n = a.len().min(b.len());
        let sa = TwinState { values: a[..n].to_vec(), version: 0 };
        let sb = TwinState { values: b[..n].to_vec(), version: 0 };
        prop_assert!(sa.divergence(&sb) >= 0.0);
        prop_assert!((sa.divergence(&sb) - sb.divergence(&sa)).abs() < 1e-12);
        prop_assert!(sa.divergence(&sa) < 1e-12);
    }

    /// Lossless channels never diverge, regardless of the update
    /// pattern; a fully lossy channel with reconciliation is bounded by
    /// the inter-reconciliation drift.
    #[test]
    fn lossless_never_diverges(
        updates in proptest::collection::vec((0usize..6, -1.0f64..1.0), 1..200),
    ) {
        let mut twin = DigitalTwin::new(1, "t", "o", 6);
        let mut channel = SyncChannel::new(SyncConfig { loss_rate: 0.0, reconcile_interval: 0 });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for (prop_idx, delta) in updates {
            channel.step(&mut twin, prop_idx, delta, &mut rng);
            prop_assert!(twin.divergence() < 1e-9);
        }
        prop_assert_eq!(channel.report().updates_lost, 0);
    }

    /// Reconciliation always zeroes divergence at the reconciliation
    /// tick, for any loss rate.
    #[test]
    fn reconciliation_zeroes_divergence(
        loss in 0.0f64..1.0,
        interval in 1u64..50,
        seed in any::<u64>(),
    ) {
        let mut twin = DigitalTwin::new(1, "t", "o", 4);
        let mut channel =
            SyncChannel::new(SyncConfig { loss_rate: loss, reconcile_interval: interval });
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Run exactly to a reconciliation tick: step index `interval`.
        for _ in 0..=interval {
            channel.step(&mut twin, 0, 1.0, &mut rng);
        }
        // The step at tick == interval reconciled before measuring.
        let report = channel.report();
        prop_assert!(report.reconciliations >= 1);
        // After the last reconciliation the replica matched the physical
        // state exactly at that point in time.
        prop_assert!(report.attestations == report.reconciliations);
    }
}
