//! Property-based tests for digital-twin invariants.

use metaverse_resilience::RetryPolicy;
use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::{DigitalTwin, TwinState};
use proptest::prelude::*;

proptest! {
    /// State digests are injective over (values, version) within
    /// generated samples, and stable.
    #[test]
    fn digest_stable_and_sensitive(
        values in proptest::collection::vec(-100.0f64..100.0, 1..20),
        version in 0u64..1000,
        perturb_index in 0usize..20,
    ) {
        let state = TwinState { values: values.clone(), version };
        prop_assert_eq!(state.digest(), state.clone().digest());
        let mut perturbed = state.clone();
        let idx = perturb_index % values.len();
        perturbed.values[idx] += 0.5;
        prop_assert_ne!(state.digest(), perturbed.digest());
        let mut bumped = state.clone();
        bumped.version += 1;
        prop_assert_ne!(state.digest(), bumped.digest());
    }

    /// Divergence is a metric-ish: non-negative, zero on self, and
    /// symmetric.
    #[test]
    fn divergence_symmetric(
        a in proptest::collection::vec(-10.0f64..10.0, 1..10),
        b in proptest::collection::vec(-10.0f64..10.0, 1..10),
    ) {
        let n = a.len().min(b.len());
        let sa = TwinState { values: a[..n].to_vec(), version: 0 };
        let sb = TwinState { values: b[..n].to_vec(), version: 0 };
        prop_assert!(sa.divergence(&sb) >= 0.0);
        prop_assert!((sa.divergence(&sb) - sb.divergence(&sa)).abs() < 1e-12);
        prop_assert!(sa.divergence(&sa) < 1e-12);
    }

    /// Lossless channels never diverge, regardless of the update
    /// pattern; a fully lossy channel with reconciliation is bounded by
    /// the inter-reconciliation drift.
    #[test]
    fn lossless_never_diverges(
        updates in proptest::collection::vec((0usize..6, -1.0f64..1.0), 1..200),
    ) {
        let mut twin = DigitalTwin::new(1, "t", "o", 6);
        let mut channel = SyncChannel::new(SyncConfig {
            loss_rate: 0.0,
            reconcile_interval: 0,
            seed: 0,
            ..SyncConfig::default()
        });
        for (prop_idx, delta) in updates {
            channel.step(&mut twin, prop_idx, delta);
            prop_assert!(twin.divergence() < 1e-9);
        }
        prop_assert_eq!(channel.report().updates_lost, 0);
    }

    /// Reconciliation always zeroes divergence at the reconciliation
    /// tick, for any loss rate.
    #[test]
    fn reconciliation_zeroes_divergence(
        loss in 0.0f64..1.0,
        interval in 1u64..50,
        seed in any::<u64>(),
    ) {
        let mut twin = DigitalTwin::new(1, "t", "o", 4);
        let mut channel = SyncChannel::new(SyncConfig {
            loss_rate: loss,
            reconcile_interval: interval,
            seed,
            ..SyncConfig::default()
        });
        // Run exactly to a reconciliation tick: step index `interval`.
        for _ in 0..=interval {
            channel.step(&mut twin, 0, 1.0);
        }
        // The step at tick == interval reconciled before measuring.
        let report = channel.report();
        prop_assert!(report.reconciliations >= 1);
        // After the last reconciliation the replica matched the physical
        // state exactly at that point in time.
        prop_assert!(report.attestations == report.reconciliations);
    }

    /// Convergence after a fault window: however lossy the channel was
    /// during the fault, once the fault clears and a reconciliation
    /// lands, divergence returns to (and stays at) zero on an
    /// otherwise-lossless channel.
    #[test]
    fn divergence_converges_to_zero_after_fault_window(
        fault_loss in 0.5f64..=1.0,
        fault_ticks in 10u64..80,
        interval in 5u64..30,
        seed in any::<u64>(),
    ) {
        let mut twin = DigitalTwin::new(1, "t", "o", 4);
        let mut channel = SyncChannel::new(SyncConfig {
            loss_rate: 0.0,
            reconcile_interval: interval,
            seed,
            retry: Some(RetryPolicy::default()),
            ..SyncConfig::default()
        });
        channel.set_fault_loss(Some(fault_loss));
        for t in 0..fault_ticks {
            channel.step(&mut twin, (t % 4) as usize, 0.5);
        }
        channel.set_fault_loss(None);
        // One full reconciliation cycle after the fault clears is enough
        // for the replica to converge; retransmission backoff never
        // exceeds the retry policy's total backoff budget.
        let settle = interval + RetryPolicy::default().total_backoff() + 1;
        for t in 0..settle {
            channel.step(&mut twin, (t % 4) as usize, 0.5);
        }
        prop_assert!(
            twin.divergence() < 1e-9,
            "diverged after fault window closed: {}",
            twin.divergence()
        );
        // And it stays converged on the now-lossless channel.
        for t in 0..(2 * interval) {
            channel.step(&mut twin, (t % 4) as usize, 0.5);
            prop_assert!(twin.divergence() < 1e-9);
        }
    }
}
