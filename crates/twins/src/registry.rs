//! Twin ownership and authenticity via ledger anchoring.
//!
//! The paper's answer to digital-twin ownership disputes is "using a
//! digital ledger such as Blockchain". The registry writes every twin
//! registration and state attestation to a
//! [`metaverse_ledger::chain::Chain`]; anyone can later verify that a
//! claimed twin state was really attested — a forged state, or a real
//! state claimed by a non-owner, fails verification.

use metaverse_ledger::chain::Chain;
use metaverse_ledger::error::LedgerError;
use metaverse_ledger::tx::{Transaction, TxPayload};

use crate::twin::{TwinId, TwinState};

/// Outcome of an authenticity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The state was attested on-chain for this twin.
    Authentic {
        /// Chain height of the attestation.
        height: u64,
    },
    /// No attestation matches the claimed state.
    Forged,
    /// The twin is not registered at all.
    UnknownTwin,
}

/// The ledger-backed twin registry.
#[derive(Debug, Default)]
pub struct TwinRegistry {
    owners: std::collections::BTreeMap<TwinId, String>,
}

impl TwinRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a twin's ownership, writing a note to the chain.
    pub fn register(
        &mut self,
        chain: &mut Chain,
        twin_id: TwinId,
        owner: &str,
    ) -> Result<(), LedgerError> {
        self.owners.insert(twin_id, owner.to_string());
        chain.submit(Transaction::new(
            owner,
            TxPayload::Note { text: format!("twin:{twin_id}:registered-to:{owner}") },
        ))?;
        Ok(())
    }

    /// The registered owner of a twin.
    pub fn owner(&self, twin_id: TwinId) -> Option<&str> {
        self.owners.get(&twin_id).map(String::as_str)
    }

    /// Number of registered twins.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True when no twins are registered.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Submits a state attestation to the chain (owner-signed intent).
    pub fn attest(
        &self,
        chain: &mut Chain,
        twin_id: TwinId,
        state: &TwinState,
        tick: u64,
    ) -> Result<(), LedgerError> {
        let owner = self.owners.get(&twin_id).cloned().unwrap_or_default();
        chain.submit(Transaction::new(
            owner,
            TxPayload::TwinAttestation { twin_id, state: state.digest(), tick },
        ))?;
        Ok(())
    }

    /// Verifies a claimed state against the chain's attestation history.
    pub fn verify(&self, chain: &Chain, twin_id: TwinId, claimed: &TwinState) -> VerifyOutcome {
        if !self.owners.contains_key(&twin_id) {
            return VerifyOutcome::UnknownTwin;
        }
        let wanted = claimed.digest();
        for block in chain.blocks() {
            for tx in &block.transactions {
                if let TxPayload::TwinAttestation { twin_id: id, state, .. } = &tx.payload {
                    if *id == twin_id && *state == wanted {
                        return VerifyOutcome::Authentic { height: block.header.height };
                    }
                }
            }
        }
        VerifyOutcome::Forged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_ledger::chain::ChainConfig;

    fn chain() -> Chain {
        Chain::poa_single("twin-validator", ChainConfig { key_tree_depth: 4, ..Default::default() })
    }

    #[test]
    fn register_and_attest_then_verify() {
        let mut chain = chain();
        let mut reg = TwinRegistry::new();
        reg.register(&mut chain, 7, "acme").unwrap();

        let mut state = TwinState::zeros(3);
        state.apply(0, 1.5);
        reg.attest(&mut chain, 7, &state, 10).unwrap();
        chain.seal_all().unwrap();

        assert_eq!(reg.owner(7), Some("acme"));
        assert!(matches!(
            reg.verify(&chain, 7, &state),
            VerifyOutcome::Authentic { height: 1 }
        ));
    }

    #[test]
    fn forged_state_rejected() {
        let mut chain = chain();
        let mut reg = TwinRegistry::new();
        reg.register(&mut chain, 7, "acme").unwrap();
        let state = TwinState::zeros(3);
        reg.attest(&mut chain, 7, &state, 0).unwrap();
        chain.seal_all().unwrap();

        let mut forged = state.clone();
        forged.apply(0, 999.0);
        assert_eq!(reg.verify(&chain, 7, &forged), VerifyOutcome::Forged);
    }

    #[test]
    fn unknown_twin() {
        let chain = chain();
        let reg = TwinRegistry::new();
        assert_eq!(
            reg.verify(&chain, 99, &TwinState::zeros(1)),
            VerifyOutcome::UnknownTwin
        );
        assert!(reg.is_empty());
    }

    #[test]
    fn attestation_for_other_twin_does_not_leak() {
        let mut chain = chain();
        let mut reg = TwinRegistry::new();
        reg.register(&mut chain, 1, "a").unwrap();
        reg.register(&mut chain, 2, "b").unwrap();
        let state = TwinState::zeros(2);
        reg.attest(&mut chain, 1, &state, 0).unwrap();
        chain.seal_all().unwrap();
        // Twin 2 never attested this state, even though twin 1 did.
        assert_eq!(reg.verify(&chain, 2, &state), VerifyOutcome::Forged);
        assert!(matches!(reg.verify(&chain, 1, &state), VerifyOutcome::Authentic { .. }));
    }
}
