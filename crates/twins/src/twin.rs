//! Twin state vectors, versioning, and divergence.

use metaverse_ledger::crypto::sha256::{sha256, Digest};
use serde::{Deserialize, Serialize};

/// Identifier of a digital twin.
pub type TwinId = u64;

/// A versioned state snapshot: a small vector of physical properties
/// (pose, temperature, battery…) plus a monotonic version counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwinState {
    /// Property values.
    pub values: Vec<f64>,
    /// Monotonic version, incremented by every physical change.
    pub version: u64,
}

impl TwinState {
    /// A zero state with the given number of properties.
    pub fn zeros(properties: usize) -> Self {
        TwinState { values: vec![0.0; properties], version: 0 }
    }

    /// Applies a delta to one property, bumping the version.
    pub fn apply(&mut self, property: usize, delta: f64) {
        if let Some(v) = self.values.get_mut(property) {
            *v += delta;
            self.version += 1;
        }
    }

    /// L2 distance to another state (property-wise).
    pub fn divergence(&self, other: &TwinState) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Content hash of the state (what gets attested on the ledger).
    pub fn digest(&self) -> Digest {
        let mut bytes = Vec::with_capacity(8 + self.values.len() * 8);
        bytes.extend_from_slice(&self.version.to_be_bytes());
        for v in &self.values {
            bytes.extend_from_slice(&v.to_be_bytes());
        }
        sha256(&bytes)
    }
}

/// A digital twin: the physical ground truth and its virtual replica.
#[derive(Debug, Clone)]
pub struct DigitalTwin {
    /// Unique id.
    pub id: TwinId,
    /// Human-readable name ("factory-robot-7", "gallery-statue").
    pub name: String,
    /// Owning account.
    pub owner: String,
    /// Ground-truth physical state.
    pub physical: TwinState,
    /// The replica the metaverse renders.
    pub virtual_replica: TwinState,
}

impl DigitalTwin {
    /// Creates a twin with both sides at the zero state.
    pub fn new(id: TwinId, name: impl Into<String>, owner: impl Into<String>, properties: usize) -> Self {
        DigitalTwin {
            id,
            name: name.into(),
            owner: owner.into(),
            physical: TwinState::zeros(properties),
            virtual_replica: TwinState::zeros(properties),
        }
    }

    /// Current physical↔virtual divergence.
    pub fn divergence(&self) -> f64 {
        self.physical.divergence(&self.virtual_replica)
    }

    /// Whether the replica is behind the physical object.
    pub fn is_stale(&self) -> bool {
        self.virtual_replica.version < self.physical.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_bumps_version_and_value() {
        let mut s = TwinState::zeros(3);
        s.apply(1, 2.5);
        assert_eq!(s.values, vec![0.0, 2.5, 0.0]);
        assert_eq!(s.version, 1);
        s.apply(9, 1.0); // out of range: ignored
        assert_eq!(s.version, 1);
    }

    #[test]
    fn divergence_l2() {
        let a = TwinState { values: vec![0.0, 0.0], version: 0 };
        let b = TwinState { values: vec![3.0, 4.0], version: 0 };
        assert_eq!(a.divergence(&b), 5.0);
        assert_eq!(a.divergence(&a), 0.0);
    }

    #[test]
    fn digest_covers_values_and_version() {
        let a = TwinState { values: vec![1.0], version: 1 };
        let mut b = a.clone();
        b.values[0] = 2.0;
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.version = 2;
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn staleness() {
        let mut t = DigitalTwin::new(1, "robot", "acme", 2);
        assert!(!t.is_stale());
        t.physical.apply(0, 1.0);
        assert!(t.is_stale());
        assert!(t.divergence() > 0.0);
        t.virtual_replica = t.physical.clone();
        assert!(!t.is_stale());
        assert_eq!(t.divergence(), 0.0);
    }
}
