//! The physical→virtual synchronization channel.
//!
//! Physical changes are shipped to the replica as incremental updates
//! over a lossy channel; a periodic reconciliation (full snapshot)
//! bounds how long loss-induced divergence can persist. Experiment E13
//! sweeps loss rate and reconciliation interval and reports divergence
//! statistics.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::twin::DigitalTwin;

/// Channel and reconciliation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SyncConfig {
    /// Probability an incremental update is lost in transit.
    pub loss_rate: f64,
    /// Full-snapshot reconciliation every this many ticks (0 = never).
    pub reconcile_interval: u64,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig { loss_rate: 0.1, reconcile_interval: 50 }
    }
}

/// Divergence statistics over a run — the E13 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncReport {
    /// Loss rate simulated.
    pub loss_rate: f64,
    /// Reconciliation interval simulated.
    pub reconcile_interval: u64,
    /// Mean divergence across ticks.
    pub mean_divergence: f64,
    /// Maximum divergence observed.
    pub max_divergence: f64,
    /// Updates lost in transit.
    pub updates_lost: u64,
    /// Snapshots shipped.
    pub reconciliations: u64,
    /// Ledger attestations emitted (one per reconciliation).
    pub attestations: u64,
}

/// The synchronization channel driving one twin.
#[derive(Debug)]
pub struct SyncChannel {
    config: SyncConfig,
    tick: u64,
    updates_lost: u64,
    reconciliations: u64,
    divergences: Vec<f64>,
    pending_attestations: Vec<(u64, metaverse_ledger::crypto::sha256::Digest, u64)>,
}

impl SyncChannel {
    /// Creates a channel.
    pub fn new(config: SyncConfig) -> Self {
        SyncChannel {
            config,
            tick: 0,
            updates_lost: 0,
            reconciliations: 0,
            divergences: Vec::new(),
            pending_attestations: Vec::new(),
        }
    }

    /// One tick: applies a physical change to the twin's ground truth,
    /// ships the delta (may be lost), reconciles on schedule, and records
    /// divergence.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        twin: &mut DigitalTwin,
        property: usize,
        delta: f64,
        rng: &mut R,
    ) {
        twin.physical.apply(property, delta);
        if rng.gen_bool(self.config.loss_rate.clamp(0.0, 1.0)) {
            self.updates_lost += 1;
        } else {
            // Incremental update applies the same delta to the replica.
            twin.virtual_replica.apply(property, delta);
            // Version tracking follows the physical version when the
            // update arrives (idempotent enough for this model).
            twin.virtual_replica.version = twin.physical.version;
        }

        if self.config.reconcile_interval > 0
            && self.tick > 0
            && self.tick % self.config.reconcile_interval == 0
        {
            twin.virtual_replica = twin.physical.clone();
            self.reconciliations += 1;
            self.pending_attestations
                .push((twin.id, twin.physical.digest(), self.tick));
        }

        self.divergences.push(twin.divergence());
        self.tick += 1;
    }

    /// Runs `ticks` random-walk ticks against the twin.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        twin: &mut DigitalTwin,
        ticks: u64,
        rng: &mut R,
    ) -> SyncReport {
        let properties = twin.physical.values.len().max(1);
        for _ in 0..ticks {
            let property = rng.gen_range(0..properties);
            let delta = rng.gen_range(-1.0..1.0);
            self.step(twin, property, delta, rng);
        }
        self.report()
    }

    /// Builds the divergence report for everything run so far.
    pub fn report(&self) -> SyncReport {
        let n = self.divergences.len().max(1) as f64;
        SyncReport {
            loss_rate: self.config.loss_rate,
            reconcile_interval: self.config.reconcile_interval,
            mean_divergence: self.divergences.iter().sum::<f64>() / n,
            max_divergence: self.divergences.iter().copied().fold(0.0, f64::max),
            updates_lost: self.updates_lost,
            reconciliations: self.reconciliations,
            attestations: self.pending_attestations.len() as u64,
        }
    }

    /// Takes the attestations accumulated since the last drain:
    /// `(twin_id, state_digest, tick)` triples the platform submits as
    /// [`metaverse_ledger::tx::TxPayload::TwinAttestation`] records.
    pub fn drain_attestations(
        &mut self,
    ) -> Vec<(u64, metaverse_ledger::crypto::sha256::Digest, u64)> {
        std::mem::take(&mut self.pending_attestations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twin::DigitalTwin;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn twin() -> DigitalTwin {
        DigitalTwin::new(1, "robot", "acme", 4)
    }

    #[test]
    fn lossless_channel_zero_divergence() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig { loss_rate: 0.0, reconcile_interval: 0 });
        let report = ch.run(&mut t, 500, &mut rng);
        assert_eq!(report.mean_divergence, 0.0);
        assert_eq!(report.updates_lost, 0);
    }

    #[test]
    fn loss_without_reconciliation_diverges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig { loss_rate: 0.2, reconcile_interval: 0 });
        let report = ch.run(&mut t, 1000, &mut rng);
        assert!(report.updates_lost > 100);
        assert!(report.max_divergence > 1.0, "divergence drifts: {report:?}");
        assert_eq!(report.reconciliations, 0);
    }

    #[test]
    fn reconciliation_bounds_divergence() {
        let run = |interval: u64| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut t = twin();
            let mut ch =
                SyncChannel::new(SyncConfig { loss_rate: 0.2, reconcile_interval: interval });
            ch.run(&mut t, 1000, &mut rng)
        };
        let never = run(0);
        let rare = run(200);
        let frequent = run(20);
        assert!(frequent.mean_divergence < rare.mean_divergence);
        assert!(rare.mean_divergence < never.mean_divergence);
        assert!(frequent.reconciliations > rare.reconciliations);
    }

    #[test]
    fn attestations_match_reconciliations() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig { loss_rate: 0.1, reconcile_interval: 25 });
        let report = ch.run(&mut t, 200, &mut rng);
        assert_eq!(report.attestations, report.reconciliations);
        let att = ch.drain_attestations();
        assert_eq!(att.len() as u64, report.reconciliations);
        assert!(ch.drain_attestations().is_empty());
        // Attested digests are snapshots of the physical state at the
        // reconciliation tick (twin id preserved).
        assert!(att.iter().all(|(id, _, _)| *id == 1));
    }

    #[test]
    fn divergence_resets_after_reconciliation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig { loss_rate: 1.0, reconcile_interval: 10 });
        for i in 0..11 {
            ch.step(&mut t, 0, 1.0, &mut rng);
            let _ = i;
        }
        // Tick 10 reconciled before recording divergence; the replica
        // differs only by the post-reconciliation... step order: apply,
        // lose update, reconcile at tick 10, so divergence there is 0.
        assert_eq!(ch.divergences[10], 0.0);
        assert!(ch.divergences[9] > 0.0);
    }
}
