//! The physical→virtual synchronization channel.
//!
//! Physical changes are shipped to the replica as incremental updates
//! over a lossy, possibly duplicating channel. Three mechanisms bound
//! the divergence loss would otherwise cause:
//!
//! * **periodic reconciliation** — a full snapshot every
//!   [`SyncConfig::reconcile_interval`] ticks;
//! * **ack + retransmission** — with a [`RetryPolicy`] configured, a
//!   lost update is retransmitted with exponential backoff in logical
//!   tick time; exhausting the retries forces an immediate
//!   reconciliation snapshot instead of silently dropping the update;
//! * **version dedup** — duplicated deliveries (a channel fault) are
//!   detected by update version and never applied twice.
//!
//! The channel owns its own seeded [`ChaCha8Rng`], so a `(config,
//! seed)` pair fully determines every loss, duplication, and random-walk
//! decision — experiment E13/E19 runs are reproducible bit-for-bit.

use std::collections::BTreeSet;

use metaverse_resilience::{RetryOutcome, RetryPolicy, RetryState};
use metaverse_telemetry::{Counter, TelemetryHub};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::twin::DigitalTwin;

/// Live counters mirrored into an attached [`TelemetryHub`]. Detached
/// channels carry no-op counters, so the sync loop never branches on
/// "is telemetry on?".
#[derive(Debug, Default)]
struct SyncTelemetry {
    updates_lost: Counter,
    retransmissions: Counter,
    recovered: Counter,
    duplicates_dropped: Counter,
    reconciliations: Counter,
    forced_reconciliations: Counter,
}

impl SyncTelemetry {
    fn attached(hub: &TelemetryHub) -> Self {
        SyncTelemetry {
            updates_lost: hub.counter("twins.sync.updates_lost"),
            retransmissions: hub.counter("twins.sync.retransmissions"),
            recovered: hub.counter("twins.sync.recovered"),
            duplicates_dropped: hub.counter("twins.sync.duplicates_dropped"),
            reconciliations: hub.counter("twins.sync.reconciliations"),
            forced_reconciliations: hub.counter("twins.sync.forced_reconciliations"),
        }
    }
}

/// Channel and reconciliation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SyncConfig {
    /// Probability an incremental update is lost in transit.
    pub loss_rate: f64,
    /// Probability a delivered update arrives twice.
    pub dup_rate: f64,
    /// Full-snapshot reconciliation every this many ticks (0 = never).
    pub reconcile_interval: u64,
    /// Seed of the channel's own RNG (loss, duplication, random walk).
    pub seed: u64,
    /// Retransmission policy for lost updates (`None` = fire and
    /// forget, the naive channel).
    pub retry: Option<RetryPolicy>,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            loss_rate: 0.1,
            dup_rate: 0.0,
            reconcile_interval: 50,
            seed: 0,
            retry: None,
        }
    }
}

/// Divergence statistics over a run — the E13 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncReport {
    /// Loss rate simulated.
    pub loss_rate: f64,
    /// Reconciliation interval simulated.
    pub reconcile_interval: u64,
    /// Mean divergence across ticks.
    pub mean_divergence: f64,
    /// Maximum divergence observed.
    pub max_divergence: f64,
    /// Updates lost in transit (first transmission).
    pub updates_lost: u64,
    /// Retransmission attempts made.
    pub retransmissions: u64,
    /// Lost updates eventually delivered by a retransmission.
    pub recovered: u64,
    /// Duplicate deliveries suppressed by version dedup.
    pub duplicates_dropped: u64,
    /// Snapshots shipped (scheduled + forced).
    pub reconciliations: u64,
    /// Reconciliations forced by retry exhaustion.
    pub forced_reconciliations: u64,
    /// Ledger attestations emitted (one per reconciliation).
    pub attestations: u64,
}

/// A lost update awaiting retransmission.
#[derive(Debug, Clone, Copy)]
struct PendingRetransmit {
    property: usize,
    delta: f64,
    version: u64,
    retry: RetryState,
}

/// The synchronization channel driving one twin.
#[derive(Debug)]
pub struct SyncChannel {
    config: SyncConfig,
    rng: ChaCha8Rng,
    tick: u64,
    updates_lost: u64,
    retransmissions: u64,
    recovered: u64,
    duplicates_dropped: u64,
    reconciliations: u64,
    forced_reconciliations: u64,
    divergences: Vec<f64>,
    pending_attestations: Vec<(u64, metaverse_ledger::crypto::sha256::Digest, u64)>,
    retransmit_queue: Vec<PendingRetransmit>,
    /// Versions delivered since the last snapshot (duplicate dedup).
    seen_versions: BTreeSet<u64>,
    /// Physical version covered by the last snapshot.
    snapshot_version: u64,
    /// Extra loss/duplication injected by an active channel fault.
    fault_loss: f64,
    fault_dup: f64,
    telemetry: SyncTelemetry,
}

impl SyncChannel {
    /// Creates a channel; its RNG is seeded from the config.
    pub fn new(config: SyncConfig) -> Self {
        SyncChannel {
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            config,
            tick: 0,
            updates_lost: 0,
            retransmissions: 0,
            recovered: 0,
            duplicates_dropped: 0,
            reconciliations: 0,
            forced_reconciliations: 0,
            divergences: Vec::new(),
            pending_attestations: Vec::new(),
            retransmit_queue: Vec::new(),
            seen_versions: BTreeSet::new(),
            snapshot_version: 0,
            fault_loss: 0.0,
            fault_dup: 0.0,
            telemetry: SyncTelemetry::default(),
        }
    }

    /// Mirrors the channel's counters into `hub` from now on (under
    /// `twins.sync.*` names). The platform shares its own hub with sync
    /// channels this way; counts accumulated before attachment stay
    /// local to [`SyncChannel::report`].
    pub fn attach_telemetry(&mut self, hub: &TelemetryHub) {
        self.telemetry = SyncTelemetry::attached(hub);
    }

    /// Sets the extra loss rate injected by an active channel fault
    /// (`None` clears it). The effective loss is the worse of the
    /// channel's base rate and the injected one.
    pub fn set_fault_loss(&mut self, loss: Option<f64>) {
        self.fault_loss = loss.unwrap_or(0.0);
    }

    /// Sets the injected duplication rate (`None` clears it).
    pub fn set_fault_dup(&mut self, dup: Option<f64>) {
        self.fault_dup = dup.unwrap_or(0.0);
    }

    fn effective_loss(&self) -> f64 {
        self.config.loss_rate.max(self.fault_loss).clamp(0.0, 1.0)
    }

    fn effective_dup(&self) -> f64 {
        self.config.dup_rate.max(self.fault_dup).clamp(0.0, 1.0)
    }

    /// One tick: retransmits overdue lost updates, applies a physical
    /// change to the twin's ground truth, ships the delta (may be lost
    /// or duplicated), reconciles on schedule, and records divergence.
    pub fn step(&mut self, twin: &mut DigitalTwin, property: usize, delta: f64) {
        self.process_retransmissions(twin);

        twin.physical.apply(property, delta);
        let version = twin.physical.version;
        let loss = self.effective_loss();
        if self.rng.gen_bool(loss) {
            self.updates_lost += 1;
            self.telemetry.updates_lost.incr();
            if let Some(policy) = self.config.retry {
                let mut retry = policy.begin(self.tick);
                match retry.record_failure(self.tick) {
                    RetryOutcome::RetryAt(_) => self.retransmit_queue.push(PendingRetransmit {
                        property,
                        delta,
                        version,
                        retry,
                    }),
                    RetryOutcome::GiveUp(_) => self.force_reconcile(twin),
                }
            }
        } else {
            self.deliver(twin, property, delta, version, false);
            if self.rng.gen_bool(self.effective_dup()) {
                // The duplicate of an already-seen version must not
                // corrupt the replica.
                self.deliver(twin, property, delta, version, false);
            }
        }

        if self.config.reconcile_interval > 0
            && self.tick > 0
            && self.tick.is_multiple_of(self.config.reconcile_interval)
        {
            self.reconcile(twin);
        }

        self.divergences.push(twin.divergence());
        self.tick += 1;
    }

    /// Applies one update delivery, deduplicating by version. Returns
    /// whether the update was actually applied.
    fn deliver(
        &mut self,
        twin: &mut DigitalTwin,
        property: usize,
        delta: f64,
        version: u64,
        retransmitted: bool,
    ) -> bool {
        if version <= self.snapshot_version || !self.seen_versions.insert(version) {
            // Covered by a snapshot, or a duplicate of a delivered
            // update: drop it.
            self.duplicates_dropped += 1;
            self.telemetry.duplicates_dropped.incr();
            return false;
        }
        twin.virtual_replica.apply(property, delta);
        // Deltas commute (property-wise addition), so the replica's
        // version is the highest delivered one.
        twin.virtual_replica.version = twin.virtual_replica.version.max(version);
        if retransmitted {
            self.recovered += 1;
            self.telemetry.recovered.incr();
        }
        true
    }

    /// Redelivers overdue lost updates; exhausted retries force a
    /// reconciliation snapshot so the update cannot be silently lost.
    fn process_retransmissions(&mut self, twin: &mut DigitalTwin) {
        if self.retransmit_queue.is_empty() {
            return;
        }
        let mut queue = std::mem::take(&mut self.retransmit_queue);
        let mut force = false;
        queue.retain_mut(|pending| {
            if pending.version <= self.snapshot_version {
                return false; // a snapshot already covered it
            }
            if !pending.retry.due(self.tick) {
                return true;
            }
            self.retransmissions += 1;
            self.telemetry.retransmissions.incr();
            if self.rng.gen_bool(self.effective_loss()) {
                match pending.retry.record_failure(self.tick) {
                    RetryOutcome::RetryAt(_) => true,
                    RetryOutcome::GiveUp(_) => {
                        force = true;
                        false
                    }
                }
            } else {
                self.deliver_retransmit(twin, *pending);
                false
            }
        });
        self.retransmit_queue = queue;
        if force {
            self.force_reconcile(twin);
        }
    }

    fn deliver_retransmit(&mut self, twin: &mut DigitalTwin, pending: PendingRetransmit) {
        self.deliver(twin, pending.property, pending.delta, pending.version, true);
    }

    /// Ships a full snapshot; pending retransmissions it covers are
    /// dropped.
    fn reconcile(&mut self, twin: &mut DigitalTwin) {
        twin.virtual_replica = twin.physical.clone();
        self.snapshot_version = twin.physical.version;
        self.seen_versions.clear();
        self.retransmit_queue.retain(|p| p.version > self.snapshot_version);
        self.reconciliations += 1;
        self.telemetry.reconciliations.incr();
        self.pending_attestations.push((twin.id, twin.physical.digest(), self.tick));
    }

    fn force_reconcile(&mut self, twin: &mut DigitalTwin) {
        self.forced_reconciliations += 1;
        self.telemetry.forced_reconciliations.incr();
        self.reconcile(twin);
    }

    /// Runs `ticks` random-walk ticks against the twin, drawing the
    /// walk from the channel's own seeded RNG.
    pub fn run(&mut self, twin: &mut DigitalTwin, ticks: u64) -> SyncReport {
        let properties = twin.physical.values.len().max(1);
        for _ in 0..ticks {
            let property = self.rng.gen_range(0..properties);
            let delta = self.rng.gen_range(-1.0..1.0);
            self.step(twin, property, delta);
        }
        self.report()
    }

    /// Builds the divergence report for everything run so far.
    pub fn report(&self) -> SyncReport {
        let n = self.divergences.len().max(1) as f64;
        SyncReport {
            loss_rate: self.config.loss_rate,
            reconcile_interval: self.config.reconcile_interval,
            mean_divergence: self.divergences.iter().sum::<f64>() / n,
            max_divergence: self.divergences.iter().copied().fold(0.0, f64::max),
            updates_lost: self.updates_lost,
            retransmissions: self.retransmissions,
            recovered: self.recovered,
            duplicates_dropped: self.duplicates_dropped,
            reconciliations: self.reconciliations,
            forced_reconciliations: self.forced_reconciliations,
            attestations: self.pending_attestations.len() as u64,
        }
    }

    /// Divergence trace so far (one sample per tick).
    pub fn divergences(&self) -> &[f64] {
        &self.divergences
    }

    /// Takes the attestations accumulated since the last drain:
    /// `(twin_id, state_digest, tick)` triples the platform submits as
    /// [`metaverse_ledger::tx::TxPayload::TwinAttestation`] records.
    pub fn drain_attestations(
        &mut self,
    ) -> Vec<(u64, metaverse_ledger::crypto::sha256::Digest, u64)> {
        std::mem::take(&mut self.pending_attestations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twin::DigitalTwin;

    fn twin() -> DigitalTwin {
        DigitalTwin::new(1, "robot", "acme", 4)
    }

    #[test]
    fn lossless_channel_zero_divergence() {
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig {
            loss_rate: 0.0,
            reconcile_interval: 0,
            seed: 1,
            ..SyncConfig::default()
        });
        let report = ch.run(&mut t, 500);
        assert_eq!(report.mean_divergence, 0.0);
        assert_eq!(report.updates_lost, 0);
    }

    #[test]
    fn loss_without_reconciliation_diverges() {
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig {
            loss_rate: 0.2,
            reconcile_interval: 0,
            seed: 2,
            ..SyncConfig::default()
        });
        let report = ch.run(&mut t, 1000);
        assert!(report.updates_lost > 100);
        assert!(report.max_divergence > 1.0, "divergence drifts: {report:?}");
        assert_eq!(report.reconciliations, 0);
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let mut t = twin();
            let mut ch = SyncChannel::new(SyncConfig {
                loss_rate: 0.3,
                dup_rate: 0.1,
                reconcile_interval: 25,
                seed,
                retry: Some(RetryPolicy::default()),
            });
            let r = ch.run(&mut t, 500);
            (r.updates_lost, r.retransmissions, r.recovered, r.mean_divergence)
        };
        assert_eq!(run(7), run(7), "same seed, same run");
        assert_ne!(run(7), run(8), "different seed, different run");
    }

    #[test]
    fn reconciliation_bounds_divergence() {
        let run = |interval: u64| {
            let mut t = twin();
            let mut ch = SyncChannel::new(SyncConfig {
                loss_rate: 0.2,
                reconcile_interval: interval,
                seed: 3,
                ..SyncConfig::default()
            });
            ch.run(&mut t, 1000)
        };
        let never = run(0);
        let rare = run(200);
        let frequent = run(20);
        assert!(frequent.mean_divergence < rare.mean_divergence);
        assert!(rare.mean_divergence < never.mean_divergence);
        assert!(frequent.reconciliations > rare.reconciliations);
    }

    #[test]
    fn retransmission_recovers_lost_updates() {
        let run = |retry: Option<RetryPolicy>| {
            let mut t = twin();
            let mut ch = SyncChannel::new(SyncConfig {
                loss_rate: 0.3,
                reconcile_interval: 0,
                seed: 11,
                retry,
                ..SyncConfig::default()
            });
            ch.run(&mut t, 1000)
        };
        let naive = run(None);
        let resilient = run(Some(RetryPolicy::default()));
        assert_eq!(naive.retransmissions, 0);
        assert!(resilient.retransmissions > 0);
        assert!(resilient.recovered > 0);
        assert!(
            resilient.mean_divergence < naive.mean_divergence,
            "retransmission must shrink divergence: {} vs {}",
            resilient.mean_divergence,
            naive.mean_divergence
        );
    }

    #[test]
    fn retry_exhaustion_forces_reconciliation() {
        // A fully lossy channel can never redeliver, so every lost
        // update's retries exhaust and force a snapshot — divergence
        // still cannot run away.
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig {
            loss_rate: 1.0,
            reconcile_interval: 0,
            seed: 4,
            retry: Some(RetryPolicy {
                max_retries: 2,
                base_backoff: 1,
                backoff_factor: 2,
                max_backoff: 4,
                timeout: 0,
            }),
            ..SyncConfig::default()
        });
        let report = ch.run(&mut t, 200);
        assert!(report.forced_reconciliations > 0);
        assert_eq!(report.recovered, 0);
        assert!(
            report.max_divergence < 10.0,
            "forced snapshots bound a 100%-lossy channel: {report:?}"
        );
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig {
            loss_rate: 0.0,
            dup_rate: 1.0,
            reconcile_interval: 0,
            seed: 5,
            ..SyncConfig::default()
        });
        let report = ch.run(&mut t, 300);
        assert_eq!(report.duplicates_dropped, 300, "every duplicate dropped");
        assert_eq!(report.mean_divergence, 0.0, "duplicates never corrupt the replica");
    }

    #[test]
    fn fault_injection_hooks_raise_loss() {
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig {
            loss_rate: 0.0,
            reconcile_interval: 0,
            seed: 6,
            ..SyncConfig::default()
        });
        ch.set_fault_loss(Some(1.0));
        for _ in 0..50 {
            ch.step(&mut t, 0, 1.0);
        }
        ch.set_fault_loss(None);
        for _ in 0..50 {
            ch.step(&mut t, 0, 1.0);
        }
        let report = ch.report();
        assert_eq!(report.updates_lost, 50, "all lost during the fault, none after");
    }

    #[test]
    fn attached_hub_mirrors_channel_counters() {
        let hub = TelemetryHub::new();
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig {
            loss_rate: 0.3,
            dup_rate: 0.2,
            reconcile_interval: 25,
            seed: 11,
            retry: Some(RetryPolicy::default()),
        });
        ch.attach_telemetry(&hub);
        let report = ch.run(&mut t, 500);
        let snap = hub.snapshot();
        assert_eq!(snap.counters["twins.sync.updates_lost"], report.updates_lost);
        assert_eq!(snap.counters["twins.sync.retransmissions"], report.retransmissions);
        assert_eq!(snap.counters["twins.sync.recovered"], report.recovered);
        assert_eq!(snap.counters["twins.sync.duplicates_dropped"], report.duplicates_dropped);
        assert_eq!(snap.counters["twins.sync.reconciliations"], report.reconciliations);
        assert!(report.updates_lost > 0 && report.retransmissions > 0);
    }

    #[test]
    fn detached_channel_runs_identically() {
        let run = |attach: bool| {
            let hub = TelemetryHub::new();
            let mut t = twin();
            let mut ch = SyncChannel::new(SyncConfig { loss_rate: 0.3, seed: 7, ..SyncConfig::default() });
            if attach {
                ch.attach_telemetry(&hub);
            }
            let r = ch.run(&mut t, 300);
            (r.updates_lost, r.reconciliations, r.mean_divergence)
        };
        assert_eq!(run(false), run(true), "telemetry must never perturb the simulation");
    }

    #[test]
    fn attestations_match_reconciliations() {
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig {
            loss_rate: 0.1,
            reconcile_interval: 25,
            seed: 4,
            ..SyncConfig::default()
        });
        let report = ch.run(&mut t, 200);
        assert_eq!(report.attestations, report.reconciliations);
        let att = ch.drain_attestations();
        assert_eq!(att.len() as u64, report.reconciliations);
        assert!(ch.drain_attestations().is_empty());
        // Attested digests are snapshots of the physical state at the
        // reconciliation tick (twin id preserved).
        assert!(att.iter().all(|(id, _, _)| *id == 1));
    }

    #[test]
    fn divergence_resets_after_reconciliation() {
        let mut t = twin();
        let mut ch = SyncChannel::new(SyncConfig {
            loss_rate: 1.0,
            reconcile_interval: 10,
            seed: 5,
            ..SyncConfig::default()
        });
        for _ in 0..11 {
            ch.step(&mut t, 0, 1.0);
        }
        // Tick 10 reconciled before recording divergence; the replica
        // differs only by the post-reconciliation... step order: apply,
        // lose update, reconcile at tick 10, so divergence there is 0.
        assert_eq!(ch.divergences[10], 0.0);
        assert!(ch.divergences[9] > 0.0);
    }
}
