//! # metaverse-twins
//!
//! Digital twins for `metaverse-kit`, implementing §IV-A:
//!
//! > "We can define digital twins as virtual objects that are created to
//! > reflect physical objects […] The metaverse will be then an evolving
//! > world that is synchronized with the physical one. There are still
//! > some challenging regarding ownership of digital twins. The most
//! > straightforward approach to protecting digital twins' authenticity
//! > and origin is using a digital ledger such as Blockchain."
//!
//! Components:
//!
//! * [`twin`] — twin state vectors, versioning, divergence metrics, and
//!   state hashing for attestation.
//! * [`sync`] — the physical→virtual update channel with loss and
//!   periodic reconciliation (experiment E13 sweeps these).
//! * [`registry`] — ownership and authenticity: ledger-anchored
//!   attestations that detect forged twin states.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod sync;
pub mod twin;

pub use registry::{TwinRegistry, VerifyOutcome};
pub use sync::{SyncChannel, SyncConfig, SyncReport};
pub use twin::{DigitalTwin, TwinId, TwinState};
