//! The determinism gate CI runs explicitly: one seeded workload must
//! (a) reproduce its settlement ledger *exactly* when replayed at the
//! same shard count, (b) produce the identical conservation audit and
//! asset-owner map at 1 shard and at 4 shards, (c) produce
//! byte-identical settlement ledgers and conservation reports whether
//! the per-shard epoch phase ran sequentially (1 worker) or in
//! parallel (N workers), at every shard count, and (d) keep all of the
//! above — plus a byte-identical trace stream — when causal tracing is
//! switched on.

use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::workload::{DriveReport, WorkloadConfig, WorkloadEngine};

const SEED: u64 = 20220701;

fn replay_traced(shards: usize, workers: usize, trace_capacity: usize) -> (ShardRouter, DriveReport) {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users: 48,
        ops: 4_000,
        seed: SEED,
        ..WorkloadConfig::default()
    });
    let mut router = ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .workers(workers)
            .tracing(trace_capacity)
            // Shallow key trees: this stream seals well under 2^7 blocks
            // per shard, and keygen dominates setup.
            .key_tree_depth(7)
            .build(),
    );
    let report = engine.drive(&mut router, 256);
    (router, report)
}

fn replay_with_workers(shards: usize, workers: usize) -> (ShardRouter, DriveReport) {
    replay_traced(shards, workers, 0)
}

fn replay(shards: usize) -> (ShardRouter, DriveReport) {
    replay_with_workers(shards, 0)
}

#[test]
fn same_seed_same_shard_count_reproduces_the_settlement_ledger() {
    let (a, ra) = replay(4);
    let (b, rb) = replay(4);
    assert_eq!(ra, rb, "drive reports diverged for identical runs");
    // Full ledger equality: every settled entry, in order, with its
    // outcome, epoch, and requeue count — plus the supply totals.
    assert_eq!(
        a.settlement_ledger(),
        b.settlement_ledger(),
        "settlement ledgers diverged for identical runs"
    );
    assert_eq!(a.conservation_report(), b.conservation_report());
}

#[test]
fn one_shard_and_four_shards_agree_on_the_global_audit() {
    let (single, _) = replay(1);
    let (sharded, _) = replay(4);
    let audit = sharded.conservation_report();
    assert!(audit.conserved, "{audit:?}");
    assert_eq!(single.conservation_report(), audit);
    // Same minted assets under the same global ids (winners of
    // contested same-epoch purchases are an ordering effect and may
    // differ; the audited totals above cannot).
    let single_ids: Vec<u64> = single.asset_owners().keys().copied().collect();
    let sharded_ids: Vec<u64> = sharded.asset_owners().keys().copied().collect();
    assert_eq!(single_ids, sharded_ids);
    // The 4-shard run actually exercised the settlement queue — the
    // equivalence above is not vacuous.
    assert!(
        sharded.settlement_ledger().applied > 0,
        "expected cross-shard traffic at 4 shards"
    );
}

#[test]
fn parallel_epochs_are_byte_identical_to_sequential_at_every_shard_count() {
    for shards in [1usize, 2, 4, 8] {
        let (sequential, seq_report) = replay_with_workers(shards, 1);
        let (parallel, par_report) = replay_with_workers(shards, shards);
        assert_eq!(
            seq_report, par_report,
            "drive reports diverged between 1 and {shards} workers at {shards} shards"
        );
        // Byte-identical: the rendered ledger (entry order, outcomes,
        // epochs, requeue counts, supply totals) must match exactly,
        // not just compare equal field-by-field.
        assert_eq!(
            format!("{:?}", sequential.settlement_ledger()),
            format!("{:?}", parallel.settlement_ledger()),
            "settlement ledgers diverged at {shards} shards"
        );
        assert_eq!(
            format!("{:?}", sequential.conservation_report()),
            format!("{:?}", parallel.conservation_report()),
            "conservation reports diverged at {shards} shards"
        );
        assert_eq!(
            sequential.asset_owners(),
            parallel.asset_owners(),
            "asset ownership diverged at {shards} shards"
        );
        assert!(sequential.conservation_report().conserved);
        assert_eq!(parallel.worker_threads(), shards);
    }
}

/// (d) The tracing regression: with the flight recorder on, the trace
/// stream itself is byte-identical between 1 worker and N workers at
/// every shard count, and switching tracing on changes *nothing* about
/// the audited outcome (ledger, conservation, drive report) relative
/// to the untraced run.
#[test]
fn traces_and_audits_survive_tracing_at_every_shard_count() {
    const CAPACITY: usize = 1 << 17; // no eviction for this stream
    for shards in [1usize, 2, 4, 8] {
        let (seq, seq_report) = replay_traced(shards, 1, CAPACITY);
        let (par, par_report) = replay_traced(shards, shards, CAPACITY);
        let (untraced, untraced_report) = replay_with_workers(shards, shards);
        assert_eq!(seq_report, par_report, "drive reports diverged at {shards} shards");
        let mut seq = seq;
        let mut par = par;
        let seq_trace = seq.trace_jsonl();
        assert!(!seq_trace.is_empty(), "tracing produced no events at {shards} shards");
        assert_eq!(
            seq_trace,
            par.trace_jsonl(),
            "trace streams diverged between 1 and {shards} workers at {shards} shards"
        );
        assert_eq!(
            format!("{:?}", seq.settlement_ledger()),
            format!("{:?}", par.settlement_ledger()),
            "settlement ledgers diverged under tracing at {shards} shards"
        );
        // Tracing is observation only: the untraced run's audit is
        // byte-identical to the traced one.
        assert_eq!(untraced_report, par_report, "tracing perturbed the drive report");
        assert_eq!(
            format!("{:?}", untraced.settlement_ledger()),
            format!("{:?}", par.settlement_ledger()),
            "tracing perturbed the settlement ledger at {shards} shards"
        );
        assert_eq!(
            untraced.conservation_report(),
            par.conservation_report(),
            "tracing perturbed the conservation audit at {shards} shards"
        );
        assert_eq!(seq.trace_stats().dropped, 0, "capacity must hold the whole stream");
    }
}

/// (e) The pipelining gate: streaming the plan loop to the shard
/// workers (`pipeline(true)`) must be byte-identical to the batched
/// epoch — settlement ledger, conservation audit, DP budget report,
/// and the full trace stream — at every shard count, on both the
/// mixed-economy stream (E21's shape) and the governance-heavy streams
/// (E26's shapes: proposal storms, biometric bursts under a DP budget,
/// moderation floods).
#[test]
fn pipelined_epochs_are_byte_identical_to_batched_at_every_shard_count() {
    const CAPACITY: usize = 1 << 17;
    let streams: Vec<(&str, WorkloadConfig)> = vec![
        (
            "mixed",
            WorkloadConfig { users: 48, ops: 4_000, seed: SEED, ..WorkloadConfig::default() },
        ),
        ("proposal_storm", WorkloadConfig::proposal_storm(48, 3_000, SEED)),
        ("biometric_burst", WorkloadConfig::biometric_burst(48, 3_000, SEED)),
        ("moderation_flood", WorkloadConfig::moderation_flood(48, 3_000, SEED)),
    ];
    for (name, config) in streams {
        for shards in [1usize, 2, 4, 8] {
            let engine = WorkloadEngine::new(config.clone());
            let build = |pipeline: bool| {
                ShardRouter::new(
                    GatewayConfig::builder()
                        .shards(shards)
                        .workers(shards)
                        .pipeline(pipeline)
                        .tracing(CAPACITY)
                        // The biometric stream must actually exhaust the
                        // budget so the refusal frontier is exercised.
                        .dp_budget_micro(5_000)
                        .key_tree_depth(7)
                        .build(),
                )
            };
            let mut batched = build(false);
            let mut pipelined = build(true);
            let batched_report = engine.drive(&mut batched, 256);
            let pipelined_report = engine.drive(&mut pipelined, 256);
            let cell = format!("stream {name} at {shards} shards");
            assert_eq!(batched_report, pipelined_report, "drive reports diverged: {cell}");
            assert_eq!(
                format!("{:?}", batched.settlement_ledger()),
                format!("{:?}", pipelined.settlement_ledger()),
                "settlement ledgers diverged: {cell}"
            );
            assert_eq!(
                format!("{:?}", batched.conservation_report()),
                format!("{:?}", pipelined.conservation_report()),
                "conservation reports diverged: {cell}"
            );
            assert_eq!(
                format!("{:?}", batched.dp_budget_report()),
                format!("{:?}", pipelined.dp_budget_report()),
                "DP budget reports diverged: {cell}"
            );
            assert_eq!(
                batched.trace_jsonl(),
                pipelined.trace_jsonl(),
                "trace streams diverged: {cell}"
            );
            assert!(batched.conservation_report().conserved, "{cell}");
            assert_eq!(batched.trace_stats().dropped, 0, "{cell}");
        }
    }
}
