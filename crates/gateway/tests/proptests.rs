//! Property-based tests for the gateway's global invariants: token
//! supply and asset ownership are conserved for *any* seeded op
//! sequence at *any* shard count, a 1-shard replay is equivalent
//! to an N-shard replay of the same stream (modulo intra-epoch
//! ordering) — the conservation audit and the per-asset owner map are
//! identical — and the wire codec is total: every [`Op`] round-trips
//! bit-exactly, and no byte string (truncated, corrupted, or random)
//! makes the decoder panic.

use metaverse_gateway::op::{Op, StatsKind, StatsQuery, StatsReply, WireError};
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_ledger::audit::{LawfulBasis, SensorClass};
use proptest::prelude::*;

/// A gateway sized for property cases: the shallowest workable
/// per-validator key trees — keygen is exponential in depth and
/// dominates a case, and these short streams seal well under 2^4
/// blocks per shard.
fn gateway(shards: usize) -> ShardRouter {
    ShardRouter::new(GatewayConfig::builder().shards(shards).key_tree_depth(4).build())
}

/// Replays the seeded stream on `shards` shards and returns the router
/// with everything drained and settled.
fn replay(seed: u64, users: usize, ops: usize, shards: usize) -> ShardRouter {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users,
        ops,
        seed,
        ..WorkloadConfig::default()
    });
    let mut router = gateway(shards);
    // Few, large epochs: per-epoch ledger sealing (Lamport signatures)
    // dominates the cost of a property case.
    engine.drive(&mut router, 128);
    router
}

/// Any `f64` bit pattern — including NaN payloads, both infinities,
/// and subnormals. Round-trip identity is asserted on *bits* (via
/// re-encoding), never on `==`, so NaN is in scope.
fn arb_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// Bounded strings over the full printable-ASCII class (the stand-in's
/// pattern subset). The codec's length prefix is `u16` and `put_str`
/// intentionally panics past 64 KiB, so strategies stay far below that.
fn arb_str() -> impl Strategy<Value = String> {
    "[ -~]{0,24}"
}

fn arb_sensor() -> impl Strategy<Value = SensorClass> {
    any::<usize>().prop_map(|i| SensorClass::ALL[i % SensorClass::ALL.len()])
}

fn arb_basis() -> impl Strategy<Value = LawfulBasis> {
    const BASES: [LawfulBasis; 5] = [
        LawfulBasis::Consent,
        LawfulBasis::Contract,
        LawfulBasis::LegitimateInterest,
        LawfulBasis::VitalInterest,
        LawfulBasis::None,
    ];
    any::<usize>().prop_map(|i| BASES[i % BASES.len()])
}

/// Every [`Op`] variant with arbitrary field values.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_str().prop_map(|user| Op::Register { user }),
        (arb_str(), arb_str(), arb_f64(), arb_f64())
            .prop_map(|(user, handle, x, y)| Op::EnterWorld { user, handle, x, y }),
        (arb_str(), any::<u64>(), arb_str(), arb_str())
            .prop_map(|(user, proposal, scope, title)| Op::Propose {
                user,
                proposal,
                scope,
                title
            }),
        (arb_str(), any::<u64>(), any::<bool>())
            .prop_map(|(user, proposal, support)| Op::Vote { user, proposal, support }),
        (arb_str(), arb_str()).prop_map(|(user, subject)| Op::Endorse { user, subject }),
        (arb_str(), arb_str()).prop_map(|(user, subject)| Op::Report { user, subject }),
        (arb_str(), any::<u64>(), arb_str(), arb_f64())
            .prop_map(|(user, asset, uri, quality)| Op::Mint { user, asset, uri, quality }),
        (arb_str(), any::<u64>(), any::<u64>())
            .prop_map(|(user, asset, price)| Op::List { user, asset, price }),
        (arb_str(), any::<u64>()).prop_map(|(user, asset)| Op::Buy { user, asset }),
        ((arb_str(), arb_str(), arb_sensor()), (arb_str(), arb_basis(), any::<u64>()))
            .prop_map(|((user, subject, sensor), (purpose, basis, bytes))| {
                Op::RecordCollection { user, subject, sensor, purpose, basis, bytes }
            }),
        (arb_str(), any::<u32>(), arb_f64())
            .prop_map(|(user, property, delta)| Op::TwinSync { user, property, delta }),
        (arb_str(), arb_str()).prop_map(|(user, delegate)| Op::Delegate { user, delegate }),
        arb_str().prop_map(|user| Op::RevokeDelegation { user }),
        (arb_str(), any::<u64>(), any::<bool>(), any::<u32>()).prop_map(
            |(user, proposal, support, votes)| Op::QuadraticVote {
                user,
                proposal,
                support,
                votes
            }
        ),
        (arb_str(), arb_sensor(), arb_f64())
            .prop_map(|(user, class, reading)| Op::SensorEvent { user, class, reading }),
        arb_str().prop_map(|user| Op::AppealModeration { user }),
    ]
}

fn arb_stats_kind() -> impl Strategy<Value = StatsKind> {
    prop_oneof![
        Just(StatsKind::Prometheus),
        Just(StatsKind::Heat),
        Just(StatsKind::Slo),
        Just(StatsKind::Latency),
    ]
}

proptest! {
    /// Round-trip identity for every variant: decode ∘ encode is the
    /// identity on the wire (bit-exact, so NaN float payloads count),
    /// and the decoded op agrees on its routing-relevant accessors.
    #[test]
    fn wire_codec_round_trips_every_op(op in arb_op()) {
        let bytes = op.encode();
        let back = Op::decode(&bytes).expect("a freshly encoded frame must decode");
        prop_assert_eq!(
            back.encode(), bytes,
            "re-encoding must reproduce the original frame bit-for-bit"
        );
        prop_assert_eq!(back.label(), op.label());
        prop_assert_eq!(back.user(), op.user());
    }

    /// Every *strict prefix* of a valid frame fails with a typed error
    /// (a frame's last field is always incomplete in a prefix), and
    /// never panics.
    #[test]
    fn truncated_frames_fail_typed(op in arb_op(), cut in any::<usize>()) {
        let bytes = op.encode();
        let cut = cut % bytes.len(); // 0 <= cut < len: strictly shorter
        let err = Op::decode(&bytes[..cut]).expect_err("a strict prefix cannot be a valid op");
        prop_assert!(
            matches!(
                err,
                WireError::UnexpectedEof
                    | WireError::BadTag(_)
                    | WireError::BadUtf8
                    | WireError::BadBool(_)
                    | WireError::BadEnum { .. }
            ),
            "unexpected error class for a truncation: {:?}", err
        );
    }

    /// Single-byte corruption never panics; when the corrupted frame
    /// still decodes, it decodes to something that re-encodes to those
    /// exact bytes (the codec has no non-canonical encodings).
    #[test]
    fn corrupted_frames_never_panic(
        op in arb_op(),
        at in any::<usize>(),
        flip in 1u8..=255u8,
    ) {
        let mut bytes = op.encode();
        let i = at % bytes.len();
        bytes[i] ^= flip;
        if let Ok(back) = Op::decode(&bytes) {
            prop_assert_eq!(back.encode(), bytes, "accepted frames must be canonical");
        }
    }

    /// Fully random byte strings: decode returns, with either a valid
    /// op or a typed error — never a panic, whatever the input.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(op) = Op::decode(&bytes) {
            prop_assert_eq!(op.encode(), bytes);
        }
    }

    /// The admin-frame pair holds the same codec invariants as ops:
    /// replies round-trip bit-exactly for arbitrary bodies, and the
    /// kind byte survives the query round trip.
    #[test]
    fn stats_frames_round_trip(
        kind in arb_stats_kind(),
        epoch in any::<u64>(),
        tick in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let query = StatsQuery { kind };
        prop_assert_eq!(StatsQuery::decode(&query.encode()).unwrap(), query);
        let reply = StatsReply { kind, epoch, tick, body };
        let bytes = reply.encode();
        let back = StatsReply::decode(&bytes).expect("a fresh reply frame must decode");
        prop_assert_eq!(back.encode(), bytes, "re-encoding must be bit-exact");
        prop_assert_eq!(back, reply);
    }

    /// Corrupting or truncating a stats reply never panics, and
    /// anything the decoder accepts re-encodes canonically — admin
    /// frames ride the same sockets as ops, so they get the same
    /// hostile-bytes discipline.
    #[test]
    fn mangled_stats_replies_never_panic(
        kind in arb_stats_kind(),
        epoch in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..64),
        at in any::<usize>(),
        flip in any::<u8>(),
        cut in any::<usize>(),
    ) {
        let mut bytes = StatsReply { kind, epoch, tick: epoch ^ 0x5a5a, body }.encode();
        let i = at % bytes.len();
        bytes[i] ^= flip;
        if let Ok(back) = StatsReply::decode(&bytes) {
            prop_assert_eq!(back.encode(), bytes, "accepted replies must be canonical");
        }
        let cut = cut % bytes.len();
        prop_assert!(StatsReply::decode(&bytes[..cut]).is_err(), "a strict prefix cannot decode");
        // Queries too: any 2-byte mutation either fails typed or
        // round-trips.
        if let Ok(q) = StatsQuery::decode(&bytes[..2.min(bytes.len())]) {
            prop_assert_eq!(&q.encode()[..], &bytes[..2]);
        }
    }

    /// Supply conservation: whatever the seed, stream length, and shard
    /// count, every minted token is in a wallet or in escrow — and
    /// after the drive's final drain, escrow is empty too. Every minted
    /// asset resolves to exactly one live owner.
    #[test]
    fn supply_and_ownership_conserved_at_any_shard_count(
        seed in 0u64..1_000_000,
        users in 2usize..10,
        ops in 0usize..200,
        shards in 1usize..9,
    ) {
        let router = replay(seed, users, ops, shards);
        let audit = router.conservation_report();
        prop_assert!(audit.conserved, "not conserved: {audit:?}");
        prop_assert_eq!(audit.users, users as u64);
        prop_assert_eq!(audit.tokens_in_flight, 0, "drain leaves escrow non-empty");
        prop_assert_eq!(
            audit.tokens_on_shards, audit.tokens_minted,
            "settled supply must sit entirely in wallets"
        );
        prop_assert_eq!(audit.assets_single_owner, audit.assets_minted);
    }

    /// Shard-count equivalence, modulo intra-epoch ordering: one shard
    /// and N shards execute the same stream to the same conservation
    /// audit — same users, same supply, all of it in wallets, every
    /// asset owned exactly once — even though at N shards purchases and
    /// ratings cross shards through the settlement queue. (Which buyer
    /// wins a *contested* same-epoch purchase is an ordering effect and
    /// legitimately differs; the audited totals cannot.)
    #[test]
    fn one_shard_is_equivalent_to_n_shards(
        seed in 0u64..1_000_000,
        users in 2usize..10,
        ops in 0usize..200,
        shards in 2usize..9,
    ) {
        let single = replay(seed, users, ops, 1);
        let sharded = replay(seed, users, ops, shards);
        prop_assert_eq!(
            single.conservation_report(),
            sharded.conservation_report(),
            "conservation audit diverged between 1 and {} shards", shards
        );
        // Both replays minted the same assets under the same global ids.
        let singles: Vec<u64> = single.asset_owners().keys().copied().collect();
        let shardeds: Vec<u64> = sharded.asset_owners().keys().copied().collect();
        prop_assert_eq!(singles, shardeds);
    }
}
