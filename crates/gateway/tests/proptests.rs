//! Property-based tests for the gateway's global invariants: token
//! supply and asset ownership are conserved for *any* seeded op
//! sequence at *any* shard count, and a 1-shard replay is equivalent
//! to an N-shard replay of the same stream (modulo intra-epoch
//! ordering) — the conservation audit and the per-asset owner map are
//! identical.

use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_ledger::chain::ChainConfig;
use proptest::prelude::*;

/// A gateway sized for property cases: the shallowest workable
/// per-validator key trees — keygen is exponential in depth and
/// dominates a case, and these short streams seal well under 2^4
/// blocks per shard.
fn gateway(shards: usize) -> ShardRouter {
    ShardRouter::new(GatewayConfig {
        shards,
        chain_config: ChainConfig { key_tree_depth: 4, ..ChainConfig::default() },
        ..GatewayConfig::default()
    })
}

/// Replays the seeded stream on `shards` shards and returns the router
/// with everything drained and settled.
fn replay(seed: u64, users: usize, ops: usize, shards: usize) -> ShardRouter {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users,
        ops,
        seed,
        ..WorkloadConfig::default()
    });
    let mut router = gateway(shards);
    // Few, large epochs: per-epoch ledger sealing (Lamport signatures)
    // dominates the cost of a property case.
    engine.drive(&mut router, 128);
    router
}

proptest! {
    /// Supply conservation: whatever the seed, stream length, and shard
    /// count, every minted token is in a wallet or in escrow — and
    /// after the drive's final drain, escrow is empty too. Every minted
    /// asset resolves to exactly one live owner.
    #[test]
    fn supply_and_ownership_conserved_at_any_shard_count(
        seed in 0u64..1_000_000,
        users in 2usize..10,
        ops in 0usize..200,
        shards in 1usize..9,
    ) {
        let router = replay(seed, users, ops, shards);
        let audit = router.conservation_report();
        prop_assert!(audit.conserved, "not conserved: {audit:?}");
        prop_assert_eq!(audit.users, users as u64);
        prop_assert_eq!(audit.tokens_in_flight, 0, "drain leaves escrow non-empty");
        prop_assert_eq!(
            audit.tokens_on_shards, audit.tokens_minted,
            "settled supply must sit entirely in wallets"
        );
        prop_assert_eq!(audit.assets_single_owner, audit.assets_minted);
    }

    /// Shard-count equivalence, modulo intra-epoch ordering: one shard
    /// and N shards execute the same stream to the same conservation
    /// audit — same users, same supply, all of it in wallets, every
    /// asset owned exactly once — even though at N shards purchases and
    /// ratings cross shards through the settlement queue. (Which buyer
    /// wins a *contested* same-epoch purchase is an ordering effect and
    /// legitimately differs; the audited totals cannot.)
    #[test]
    fn one_shard_is_equivalent_to_n_shards(
        seed in 0u64..1_000_000,
        users in 2usize..10,
        ops in 0usize..200,
        shards in 2usize..9,
    ) {
        let single = replay(seed, users, ops, 1);
        let sharded = replay(seed, users, ops, shards);
        prop_assert_eq!(
            single.conservation_report(),
            sharded.conservation_report(),
            "conservation audit diverged between 1 and {} shards", shards
        );
        // Both replays minted the same assets under the same global ids.
        let singles: Vec<u64> = single.asset_owners().keys().copied().collect();
        let shardeds: Vec<u64> = sharded.asset_owners().keys().copied().collect();
        prop_assert_eq!(singles, shardeds);
    }
}
