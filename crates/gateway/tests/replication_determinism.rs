//! The replication determinism gate CI runs explicitly: with every
//! shard's chain replicated across 3 validators, any single validator
//! crashed or partitioned mid-run (f = 1) must leave the settlement
//! ledger, the conservation audit, and the exported op-trace stream
//! **byte-identical** to the fault-free run at every shard count —
//! while every epoch still reaches quorum commit. Replication is an
//! observer of the sealed chain, never a participant in the schedule;
//! this gate is the proof.

use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::workload::{DriveReport, WorkloadConfig, WorkloadEngine};
use metaverse_replication::ReplicationConfig;
use metaverse_resilience::{FaultKind, FaultPlan};

const SEED: u64 = 20220701;
const CAPACITY: usize = 1 << 17;

/// The single-validator fault matrix: each case faults one validator
/// role per shard, inside the f = 1 tolerance of a 3-node cluster.
#[derive(Clone, Copy, Debug)]
enum FaultCase {
    None,
    LeaderCrash,
    FollowerPartition,
    AckDelay,
}

impl FaultCase {
    /// The plan to install on `shard`'s cluster. Windows open a few
    /// epochs in and close while traffic is still flowing (with
    /// `epoch_ticks = 1`, tick ≈ epoch), so the run exercises the
    /// fault *and* the recovery/catch-up path before it drains.
    fn plan(self, shard: usize) -> Option<FaultPlan> {
        let v = |index: usize| format!("s{shard}-v{index}");
        match self {
            FaultCase::None => None,
            FaultCase::LeaderCrash => Some(
                FaultPlan::new().schedule(3, 4, FaultKind::ValidatorCrash { validator: v(0) }),
            ),
            FaultCase::FollowerPartition => Some(
                FaultPlan::new()
                    .schedule(3, 4, FaultKind::ValidatorPartition { validator: v(1) }),
            ),
            FaultCase::AckDelay => Some(
                FaultPlan::new()
                    .schedule(3, 6, FaultKind::AckDelay { validator: v(2), delay: 3 })
                    .schedule(4, 3, FaultKind::AckDrop { validator: v(1) }),
            ),
        }
    }
}

fn replay(shards: usize, replicated: bool, case: FaultCase) -> (ShardRouter, DriveReport) {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users: 48,
        ops: 2_000,
        seed: SEED,
        ..WorkloadConfig::default()
    });
    let mut builder = GatewayConfig::builder()
        .shards(shards)
        .workers(1)
        .tracing(CAPACITY)
        .key_tree_depth(7);
    if replicated {
        builder = builder.replication(ReplicationConfig::default());
    }
    let mut router = ShardRouter::new(builder.build());
    for shard in 0..shards {
        if let Some(plan) = case.plan(shard) {
            router.install_validator_fault_plan(shard, plan);
        }
    }
    let report = engine.drive(&mut router, 256);
    (router, report)
}

/// The audited fingerprint the gate compares: settlement ledger,
/// conservation report, and the full op-trace stream.
fn fingerprint(router: &mut ShardRouter, report: &DriveReport) -> String {
    let trace = router.trace_jsonl();
    format!(
        "{report:?}\n{:?}\n{:?}\n{trace}",
        router.settlement_ledger(),
        router.conservation_report(),
    )
}

#[test]
fn replication_is_invisible_to_the_audit_at_every_shard_count() {
    for shards in [1usize, 2, 4, 8] {
        let (mut plain, plain_report) = replay(shards, false, FaultCase::None);
        let (mut replicated, replicated_report) = replay(shards, true, FaultCase::None);
        assert_eq!(
            fingerprint(&mut plain, &plain_report),
            fingerprint(&mut replicated, &replicated_report),
            "replication perturbed the audit at {shards} shards"
        );
        assert!(plain.replication_stats().is_none());
        let stats = replicated.replication_stats().expect("clusters installed");
        assert_eq!(
            stats.blocks_proposed, stats.blocks_committed,
            "an epoch missed quorum at {shards} shards"
        );
        assert!(stats.blocks_committed > 0, "no blocks replicated at {shards} shards");
        assert_eq!(stats.leader_elections, 0, "fault-free run elected a leader");
    }
}

#[test]
fn any_single_validator_fault_leaves_the_audit_byte_identical() {
    for shards in [1usize, 2, 4, 8] {
        let (mut baseline, baseline_report) = replay(shards, true, FaultCase::None);
        let want = fingerprint(&mut baseline, &baseline_report);
        for case in [FaultCase::LeaderCrash, FaultCase::FollowerPartition, FaultCase::AckDelay] {
            let (mut faulted, faulted_report) = replay(shards, true, case);
            assert_eq!(
                want,
                fingerprint(&mut faulted, &faulted_report),
                "{case:?} perturbed the audit at {shards} shards"
            );
            // Liveness under the fault: every proposed block still
            // reached quorum — f = 1 of 3 validators is tolerated.
            let stats = faulted.replication_stats().expect("clusters installed");
            assert_eq!(
                stats.blocks_proposed, stats.blocks_committed,
                "{case:?} cost an epoch its quorum at {shards} shards"
            );
            match case {
                FaultCase::LeaderCrash => {
                    // Only shards that sealed a block inside the crash
                    // window observe the dead leader; at least one
                    // always does.
                    assert!(stats.leader_elections >= 1, "a dead leader forces a failover");
                    assert!(stats.catch_ups > 0, "recovered leaders catch up from the log");
                }
                FaultCase::FollowerPartition => {
                    assert!(stats.acks_lost > 0, "partitioned followers cost acks");
                    assert!(stats.catch_ups > 0, "healed followers catch up from the log");
                }
                FaultCase::AckDelay => {
                    assert!(stats.acks_lost > 0, "dropped acks are counted");
                }
                FaultCase::None => unreachable!(),
            }
        }
    }
}

#[test]
fn replication_stream_is_deterministic_and_separate() {
    let (mut a, _) = replay(4, true, FaultCase::LeaderCrash);
    let (mut b, _) = replay(4, true, FaultCase::LeaderCrash);
    let stream = a.replication_jsonl();
    assert!(!stream.is_empty(), "replication tracing produced no events");
    assert_eq!(stream, b.replication_jsonl(), "replication streams diverged on replay");
    // The stream carries the protocol stages, stamped with the epochs
    // the router merged them at — and none of them leak into op traces.
    for stage in ["block_proposed", "ack_received", "quorum_committed", "leader_elected"] {
        assert!(stream.contains(&format!("\"stage\":\"{stage}\"")), "missing {stage}");
    }
    let op_trace = a.trace_jsonl();
    assert!(!op_trace.contains("block_proposed"), "replication leaked into op traces");
    // Unreplicated routers expose an empty stream, not an error.
    let (mut plain, _) = replay(1, false, FaultCase::None);
    assert!(plain.replication_jsonl().is_empty());
}
