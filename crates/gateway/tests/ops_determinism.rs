//! The ops-plane determinism gate: the observability layer must be a
//! pure function of the admitted stream, never of the execution
//! schedule. Three claims, each CI-enforced:
//!
//! * **Mode identity** — at every shard count, the full heat report,
//!   stage-latency report, and SLO snapshot are byte-identical whether
//!   the epoch phase ran sequentially (1 worker), in parallel
//!   (N workers), or pipelined (pre-route overlapped with execution).
//! * **Shard-count identity** — for a placement-free workload (no
//!   cross-shard settlements), the *global* heat view and the SLO
//!   snapshot are byte-identical at 1, 2, 4, and 8 shards, and the SLO
//!   trip/recovery trace sequence matches line for line.
//! * **Trips are auditable** — a tripped objective lands both as a
//!   `slo_tripped` trace event and as an on-ledger `HealthTransition`
//!   record on shard 0, sealed at the next epoch commit.

use metaverse_gateway::ops::OpsPlaneConfig;
use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::session::RateLimit;
use metaverse_gateway::workload::{OpMix, WorkloadConfig, WorkloadEngine};
use metaverse_ledger::TxPayload;
use metaverse_telemetry::{SloKind, SloObjective};

const SEED: u64 = 20220701;

/// Drives one seeded stream through a fresh ops-plane router.
fn drive(
    shards: usize,
    workers: usize,
    pipelined: bool,
    workload: &WorkloadConfig,
    ops: OpsPlaneConfig,
) -> ShardRouter {
    let engine = WorkloadEngine::new(workload.clone());
    let mut router = ShardRouter::new(
        GatewayConfig::builder()
            .shards(shards)
            .workers(workers)
            .tracing(1 << 15)
            .ops_plane(ops)
            .pipeline(pipelined)
            .key_tree_depth(7)
            .build(),
    );
    engine.drive(&mut router, 256);
    router
}

/// Everything the ops plane can render, concatenated: the whole view
/// must match, not just a summary statistic.
fn ops_fingerprint(router: &ShardRouter) -> String {
    format!(
        "{}\n{}\n{}",
        router.heat_report().expect("plane on").to_json(),
        router.latency_report().expect("plane on").to_json(),
        router.slo_snapshot().expect("plane on").to_json(),
    )
}

/// The SLO trip/recovery subsequence of the trace stream.
fn slo_trace_lines(router: &mut ShardRouter) -> Vec<String> {
    router
        .trace_jsonl()
        .lines()
        .filter(|l| l.contains("\"slo_tripped\"") || l.contains("\"slo_recovered\""))
        .map(str::to_owned)
        .collect()
}

/// A governance-shaped mix with **no settlement traffic**: endorse,
/// report, and purchases are the only op kinds whose escrow enqueues
/// depend on whether the subject landed on a remote shard, so zeroing
/// them makes the global heat view placement-free.
fn placement_free_workload() -> WorkloadConfig {
    WorkloadConfig {
        users: 48,
        ops: 4_000,
        seed: SEED,
        mix: OpMix {
            enter_world: 6,
            propose: 4,
            vote: 16,
            endorse: 0,
            report: 0,
            mint: 0,
            list: 0,
            buy: 0,
            record_collection: 4,
            twin_sync: 8,
            delegate: 4,
            revoke_delegation: 2,
            quadratic_vote: 10,
            sensor_event: 10,
            appeal: 0,
        },
        burst: None,
        ..WorkloadConfig::default()
    }
}

#[test]
fn heat_latency_and_slo_reports_are_mode_invariant_at_every_shard_count() {
    // The default mix *does* settle cross-shard — mode identity must
    // hold even for the richest traffic, since the schedule (not the
    // placement) is what varies here.
    let workload =
        WorkloadConfig { users: 48, ops: 4_000, seed: SEED, ..WorkloadConfig::default() };
    for shards in [1usize, 2, 4, 8] {
        let sequential = drive(shards, 1, false, &workload, OpsPlaneConfig::default());
        let parallel = drive(shards, shards, false, &workload, OpsPlaneConfig::default());
        let pipelined = drive(shards, shards, true, &workload, OpsPlaneConfig::default());
        let want = ops_fingerprint(&sequential);
        assert_eq!(
            want,
            ops_fingerprint(&parallel),
            "parallel ops view diverged at {shards} shards"
        );
        assert_eq!(
            want,
            ops_fingerprint(&pipelined),
            "pipelined ops view diverged at {shards} shards"
        );
        // Not vacuous: the window actually folded epochs and saw load.
        let heat = sequential.heat_report().unwrap();
        assert!(heat.epochs > 0, "no epochs folded at {shards} shards");
        assert!(heat.global.admitted > 0, "no admissions folded at {shards} shards");
    }
}

#[test]
fn the_global_heat_view_is_shard_count_invariant_for_placement_free_traffic() {
    let workload = placement_free_workload();
    let mut single = drive(1, 1, false, &workload, OpsPlaneConfig::default());
    let want_global = single.heat_report().unwrap().global_json();
    let want_slo = single.slo_snapshot().unwrap().to_json();
    let want_trips = slo_trace_lines(&mut single);
    for shards in [2usize, 4, 8] {
        let mut sharded = drive(shards, shards, false, &workload, OpsPlaneConfig::default());
        assert_eq!(
            want_global,
            sharded.heat_report().unwrap().global_json(),
            "global heat diverged at {shards} shards"
        );
        assert_eq!(
            want_slo,
            sharded.slo_snapshot().unwrap().to_json(),
            "SLO snapshot diverged at {shards} shards"
        );
        assert_eq!(
            want_trips,
            slo_trace_lines(&mut sharded),
            "SLO trip sequence diverged at {shards} shards"
        );
    }
}

#[test]
fn every_live_instrument_is_canonical_and_described() {
    // Metric hygiene: a driven ops-plane router must not register a
    // single instrument whose name escapes the canonical registry or
    // lacks `# HELP` text — new subsystems can't silently ship
    // undocumented telemetry.
    use metaverse_telemetry::names;
    let workload = WorkloadConfig { users: 24, ops: 800, seed: SEED, ..WorkloadConfig::default() };
    let router = drive(2, 2, false, &workload, OpsPlaneConfig::default());
    let snapshot = router.telemetry_snapshot();
    let all = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys());
    let mut checked = 0usize;
    for name in all {
        assert!(names::is_canonical(name), "non-canonical instrument: {name}");
        assert!(names::description(name).is_some(), "undescribed instrument: {name}");
        checked += 1;
    }
    assert!(checked > 20, "suspiciously few instruments: {checked}");
    // The ops-plane family is actually present, not just hygienic.
    assert!(snapshot.counters.contains_key(names::ops_plane::HEAT_EPOCHS_FOLDED));
    assert!(snapshot.gauges.contains_key(names::ops_plane::HEAT_IMBALANCE_MILLI));
}

#[test]
fn a_tripped_objective_is_traced_and_sealed_on_the_ledger() {
    // A starved token bucket refuses most offers, pushing the refusal
    // rate far past a 10% objective: the trip must fire, identically
    // under both schedules, and leave an audit trail in two places.
    let workload =
        WorkloadConfig { users: 32, ops: 3_000, seed: SEED, ..WorkloadConfig::default() };
    let ops_config = OpsPlaneConfig {
        heat_window_ticks: 16,
        objectives: vec![SloObjective {
            name: "refusal_rate",
            kind: SloKind::RefusalRateMaxMilli,
            max: 100,
        }],
    };
    let build = |workers: usize| {
        let engine = WorkloadEngine::new(workload.clone());
        let mut router = ShardRouter::new(
            GatewayConfig::builder()
                .shards(4)
                .workers(workers)
                .tracing(1 << 15)
                .ops_plane(ops_config.clone())
                .rate_limit(RateLimit { burst: 4, milli_per_tick: 2_000 })
                .key_tree_depth(7)
                .build(),
        );
        engine.drive(&mut router, 256);
        router
    };
    let mut sequential = build(1);
    let mut parallel = build(4);

    // The trip fired and is visible in the snapshot...
    let snapshot = sequential.slo_snapshot().unwrap();
    assert!(snapshot.to_json().contains("\"tripped\":true"), "{}", snapshot.to_json());
    // ...in the trace stream...
    let trips = slo_trace_lines(&mut sequential);
    assert!(
        trips.iter().any(|l| l.contains("\"slo_tripped\"") && l.contains("refusal_rate")),
        "{trips:?}"
    );
    // ...and on shard 0's ledger, sealed as a HealthTransition record
    // with the objective as the component name.
    let on_ledger = sequential
        .shard_platform(0)
        .chain()
        .iter_txs()
        .filter(|t| {
            matches!(
                &t.payload,
                TxPayload::HealthTransition { module, reason, .. }
                    if module == "refusal_rate" && reason == "slo_tripped"
            )
        })
        .count();
    assert!(on_ledger > 0, "trip never sealed on the ledger");

    // Schedule invariance holds for the trip machinery too.
    assert_eq!(ops_fingerprint(&sequential), ops_fingerprint(&parallel));
    assert_eq!(slo_trace_lines(&mut sequential), slo_trace_lines(&mut parallel));
}
