//! Golden-file checks for the dependency-free exporters: the exact
//! bytes both exporters emit are pinned, so any accidental format
//! drift (metric-name sanitization, bucket math, label escaping, JSON
//! field order) fails CI instead of silently breaking downstream
//! scrapers and trace tooling.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p metaverse-gateway --test export_golden
//! ```
//!
//! The Prometheus golden renders a hand-built snapshot (fixed counter,
//! gauge, and histogram values — live gateway histograms carry
//! wall-clock nanoseconds and cannot be pinned). The trace golden
//! replays a fixed-seed workload; every field of every trace event —
//! including the committed block ids, whose validator keys derive from
//! the validator name — is seed-deterministic.

use metaverse_gateway::router::{GatewayConfig, ShardRouter};
use metaverse_gateway::workload::{WorkloadConfig, WorkloadEngine};
use metaverse_telemetry::export;
use metaverse_telemetry::{TelemetryHub, TelemetrySnapshot};

/// Compares `actual` against the golden file, or rewrites the golden
/// when `GOLDEN_BLESS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("GOLDEN_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR")))
            .expect("create golden dir");
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path} (run with GOLDEN_BLESS=1): {e}"));
    assert_eq!(
        actual, expected,
        "exporter output drifted from {path}; if the change is intentional, \
         regenerate with GOLDEN_BLESS=1"
    );
}

/// A snapshot with every instrument kind and every formatting edge the
/// exporter handles: dots and dashes to sanitize, a leading digit, a
/// negative gauge, a zero-bound bucket, and a multi-bucket histogram.
fn synthetic_snapshot() -> TelemetrySnapshot {
    let hub = TelemetryHub::new();
    hub.counter("gateway.ops.admitted").add(1200);
    hub.counter("breaker.shard.half-open").add(3);
    hub.counter("7weird.name").add(1);
    hub.gauge("epoch.chain_height").set(42);
    hub.gauge("settlement.depth").set(-5);
    for v in [0u64, 1, 2, 3, 900, 40_000] {
        hub.histogram("gateway.shard.batch_ns").record(v);
    }
    hub.snapshot()
}

#[test]
fn prometheus_exposition_matches_golden() {
    let snap = synthetic_snapshot();
    let text = export::prometheus_labeled(
        &snap,
        &[("platform", "metaverse-kit"), ("quote", "a\"b\\c")],
    );
    check_golden("prometheus.txt", &text);
}

#[test]
fn trace_jsonl_matches_golden_for_a_fixed_seed() {
    let engine = WorkloadEngine::new(WorkloadConfig {
        users: 12,
        ops: 220,
        seed: 20220701,
        ..WorkloadConfig::default()
    });
    let mut router = ShardRouter::new(
        GatewayConfig::builder()
            .shards(2)
            .workers(1)
            .tracing(1 << 14)
            .key_tree_depth(5)
            .build(),
    );
    engine.drive(&mut router, 64);
    let jsonl = router.trace_jsonl();
    assert!(!jsonl.is_empty());
    check_golden("trace.jsonl", &jsonl);
}
