//! The gateway's typed operation surface and its wire codec.
//!
//! [`Op`] covers the platform façade one variant per user-visible
//! action. The codec is dependency-free and deliberately boring: a tag
//! byte, then fields in declaration order — strings as `u16` length +
//! UTF-8 bytes, integers fixed-width little-endian, floats as IEEE-754
//! bit patterns, enums as a single byte validated on decode. Every
//! value round-trips exactly ([`Op::decode`] ∘ [`Op::encode`] is the
//! identity), which the in-crate tests and workspace proptests enforce.
//!
//! Asset and proposal identifiers in ops are **global**: the workload
//! engine (or any other client) numbers them by creation order, and the
//! router owns the directory mapping a global id onto the shard and
//! local id where the object actually lives. That keeps a generated op
//! stream meaningful under any shard count.

use metaverse_ledger::audit::{LawfulBasis, SensorClass};

/// A typed gateway operation — one variant per platform action a
/// session can request.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Create the user's account (session, wallet grant, governance
    /// membership). Always the first op a user submits.
    Register {
        /// Account name.
        user: String,
    },
    /// Spawn the user's avatar into the shared world.
    EnterWorld {
        /// Account name.
        user: String,
        /// Avatar handle.
        handle: String,
        /// Spawn position, metres.
        x: f64,
        /// Spawn position, metres.
        y: f64,
    },
    /// Open a governance proposal in a scope; the submitter assigns
    /// the global id (creation order), like [`Op::Mint`] does for
    /// assets.
    Propose {
        /// Proposing account.
        user: String,
        /// Global proposal id (creation order).
        proposal: u64,
        /// Governance scope (e.g. `"privacy"`).
        scope: String,
        /// Proposal title.
        title: String,
    },
    /// Cast a ballot on a proposal (global id).
    Vote {
        /// Voting account.
        user: String,
        /// Global proposal id (creation order).
        proposal: u64,
        /// Yes / no.
        support: bool,
    },
    /// Endorse another user (reputation up).
    Endorse {
        /// Rating account.
        user: String,
        /// Rated account.
        subject: String,
    },
    /// Report another user (reputation down, moderation ladder).
    Report {
        /// Reporting account.
        user: String,
        /// Reported account.
        subject: String,
    },
    /// Mint an asset; the submitter assigns the global id.
    Mint {
        /// Creator account.
        user: String,
        /// Global asset id (mint order).
        asset: u64,
        /// Content URI.
        uri: String,
        /// Creator-claimed quality in `[0, 1]`.
        quality: f64,
    },
    /// List an owned asset for sale.
    List {
        /// Selling account.
        user: String,
        /// Global asset id.
        asset: u64,
        /// Ask price in tokens.
        price: u64,
    },
    /// Buy a listed asset (settled cross-shard when needed).
    Buy {
        /// Buying account.
        user: String,
        /// Global asset id.
        asset: u64,
    },
    /// Record a data-collection event against the audit registry.
    RecordCollection {
        /// Collecting party (the session owner).
        user: String,
        /// Data subject.
        subject: String,
        /// Sensor class taken.
        sensor: SensorClass,
        /// Declared purpose.
        purpose: String,
        /// Claimed lawful basis.
        basis: LawfulBasis,
        /// Approximate payload bytes.
        bytes: u64,
    },
    /// Apply one incremental update to the user's digital twin.
    TwinSync {
        /// Twin owner.
        user: String,
        /// Property index.
        property: u32,
        /// Additive delta.
        delta: f64,
    },
    /// Delegate the user's vote to another member (liquid democracy);
    /// applied across every governance scope on every shard.
    Delegate {
        /// Delegating account.
        user: String,
        /// Account receiving the delegation.
        delegate: String,
    },
    /// Revoke the user's standing delegation everywhere.
    RevokeDelegation {
        /// Account revoking its delegation.
        user: String,
    },
    /// Cast a credit-budgeted quadratic ballot: `votes` ballots cost
    /// `votes²` voice credits (routed to the proposal's shard like
    /// [`Op::Vote`]).
    QuadraticVote {
        /// Voting account.
        user: String,
        /// Global proposal id (creation order).
        proposal: u64,
        /// Yes / no.
        support: bool,
        /// Ballots bought (cost = votes², in voice credits).
        votes: u32,
    },
    /// Stream one sensor reading through the shard's PET pipeline into
    /// the audit registry, charging the global differential-privacy
    /// budget. Over-budget releases fail closed at the router.
    SensorEvent {
        /// The data subject (and session owner).
        user: String,
        /// Sensor class the reading came from.
        class: SensorClass,
        /// Raw reading before PET filtering.
        reading: f64,
    },
    /// Appeal the user's standing moderation action; adjudicated by
    /// the escalation ladder against reputation standing.
    AppealModeration {
        /// The appealing account.
        user: String,
    },
}

/// Decode failure: the byte string is not a valid [`Op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-field.
    UnexpectedEof,
    /// Unknown op tag byte.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// A bool byte was neither 0 nor 1.
    BadBool(u8),
    /// An enum byte was out of range for the named field.
    BadEnum {
        /// Which field rejected the byte.
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// Bytes remained after a complete op was decoded.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "wire: unexpected end of input"),
            WireError::BadTag(t) => write!(f, "wire: unknown op tag {t:#04x}"),
            WireError::BadUtf8 => write!(f, "wire: string field is not UTF-8"),
            WireError::BadBool(b) => write!(f, "wire: bool byte {b:#04x}"),
            WireError::BadEnum { field, value } => {
                write!(f, "wire: {field} byte {value:#04x} out of range")
            }
            WireError::TrailingBytes(n) => write!(f, "wire: {n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_REGISTER: u8 = 0x01;
const TAG_ENTER_WORLD: u8 = 0x02;
const TAG_PROPOSE: u8 = 0x03;
const TAG_VOTE: u8 = 0x04;
const TAG_ENDORSE: u8 = 0x05;
const TAG_REPORT: u8 = 0x06;
const TAG_MINT: u8 = 0x07;
const TAG_LIST: u8 = 0x08;
const TAG_BUY: u8 = 0x09;
const TAG_RECORD_COLLECTION: u8 = 0x0a;
const TAG_TWIN_SYNC: u8 = 0x0b;
const TAG_DELEGATE: u8 = 0x0c;
const TAG_REVOKE_DELEGATION: u8 = 0x0d;
const TAG_QUADRATIC_VOTE: u8 = 0x0e;
const TAG_SENSOR_EVENT: u8 = 0x0f;
const TAG_APPEAL_MODERATION: u8 = 0x10;

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("gateway strings stay under 64 KiB");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn sensor_byte(sensor: SensorClass) -> u8 {
    SensorClass::ALL
        .iter()
        .position(|s| *s == sensor)
        .expect("SensorClass::ALL is exhaustive") as u8
}

fn basis_byte(basis: LawfulBasis) -> u8 {
    match basis {
        LawfulBasis::Consent => 0,
        LawfulBasis::Contract => 1,
        LawfulBasis::LegitimateInterest => 2,
        LawfulBasis::VitalInterest => 3,
        LawfulBasis::None => 4,
        // `LawfulBasis` is non-exhaustive; unknown bases degrade to the
        // compliance-flagged bucket rather than silently minting a new
        // wire value.
        _ => 4,
    }
}

fn basis_from_byte(b: u8) -> Option<LawfulBasis> {
    Some(match b {
        0 => LawfulBasis::Consent,
        1 => LawfulBasis::Contract,
        2 => LawfulBasis::LegitimateInterest,
        3 => LawfulBasis::VitalInterest,
        4 => LawfulBasis::None,
        _ => return None,
    })
}

/// Cursor over an encoded op.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(WireError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    /// Borrows a length-prefixed UTF-8 string straight out of the
    /// input buffer — no allocation; owned decode copies later, view
    /// decode never does.
    fn str(&mut self) -> Result<&'a str, WireError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }
}

/// A borrowed decode of one wire op: every string field is a `&str`
/// view into the input buffer, so validating and inspecting a frame
/// allocates nothing. The admission hot path decodes to an `OpView`,
/// checks rate limits and directories against the borrowed fields, and
/// only materialises an owned [`Op`] (via [`OpView::into_owned`]) once
/// the op is actually accepted into a mailbox — a refused flood costs
/// zero heap traffic.
///
/// Field meanings are identical to the matching [`Op`] variants.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub enum OpView<'a> {
    Register { user: &'a str },
    EnterWorld { user: &'a str, handle: &'a str, x: f64, y: f64 },
    Propose { user: &'a str, proposal: u64, scope: &'a str, title: &'a str },
    Vote { user: &'a str, proposal: u64, support: bool },
    Endorse { user: &'a str, subject: &'a str },
    Report { user: &'a str, subject: &'a str },
    Mint { user: &'a str, asset: u64, uri: &'a str, quality: f64 },
    List { user: &'a str, asset: u64, price: u64 },
    Buy { user: &'a str, asset: u64 },
    RecordCollection {
        user: &'a str,
        subject: &'a str,
        sensor: SensorClass,
        purpose: &'a str,
        basis: LawfulBasis,
        bytes: u64,
    },
    TwinSync { user: &'a str, property: u32, delta: f64 },
    Delegate { user: &'a str, delegate: &'a str },
    RevokeDelegation { user: &'a str },
    QuadraticVote { user: &'a str, proposal: u64, support: bool, votes: u32 },
    SensorEvent { user: &'a str, class: SensorClass, reading: f64 },
    AppealModeration { user: &'a str },
}

impl<'a> OpView<'a> {
    /// Decodes one op as borrowed views into `buf`; rejects trailing
    /// bytes. Exactly [`Op::decode`]'s validation (same errors for the
    /// same inputs) without any allocation.
    pub fn decode(buf: &'a [u8]) -> Result<OpView<'a>, WireError> {
        let mut r = Reader { buf, pos: 0 };
        let op = match r.u8()? {
            TAG_REGISTER => OpView::Register { user: r.str()? },
            TAG_ENTER_WORLD => OpView::EnterWorld {
                user: r.str()?,
                handle: r.str()?,
                x: r.f64()?,
                y: r.f64()?,
            },
            TAG_PROPOSE => OpView::Propose {
                user: r.str()?,
                proposal: r.u64()?,
                scope: r.str()?,
                title: r.str()?,
            },
            TAG_VOTE => OpView::Vote { user: r.str()?, proposal: r.u64()?, support: r.bool()? },
            TAG_ENDORSE => OpView::Endorse { user: r.str()?, subject: r.str()? },
            TAG_REPORT => OpView::Report { user: r.str()?, subject: r.str()? },
            TAG_MINT => OpView::Mint {
                user: r.str()?,
                asset: r.u64()?,
                uri: r.str()?,
                quality: r.f64()?,
            },
            TAG_LIST => OpView::List { user: r.str()?, asset: r.u64()?, price: r.u64()? },
            TAG_BUY => OpView::Buy { user: r.str()?, asset: r.u64()? },
            TAG_RECORD_COLLECTION => {
                let user = r.str()?;
                let subject = r.str()?;
                let sensor_idx = r.u8()?;
                let sensor = *SensorClass::ALL
                    .get(sensor_idx as usize)
                    .ok_or(WireError::BadEnum { field: "sensor", value: sensor_idx })?;
                let purpose = r.str()?;
                let basis_idx = r.u8()?;
                let basis = basis_from_byte(basis_idx)
                    .ok_or(WireError::BadEnum { field: "basis", value: basis_idx })?;
                OpView::RecordCollection { user, subject, sensor, purpose, basis, bytes: r.u64()? }
            }
            TAG_TWIN_SYNC => {
                OpView::TwinSync { user: r.str()?, property: r.u32()?, delta: r.f64()? }
            }
            TAG_DELEGATE => OpView::Delegate { user: r.str()?, delegate: r.str()? },
            TAG_REVOKE_DELEGATION => OpView::RevokeDelegation { user: r.str()? },
            TAG_QUADRATIC_VOTE => OpView::QuadraticVote {
                user: r.str()?,
                proposal: r.u64()?,
                support: r.bool()?,
                votes: r.u32()?,
            },
            TAG_SENSOR_EVENT => {
                let user = r.str()?;
                let sensor_idx = r.u8()?;
                let class = *SensorClass::ALL
                    .get(sensor_idx as usize)
                    .ok_or(WireError::BadEnum { field: "class", value: sensor_idx })?;
                OpView::SensorEvent { user, class, reading: r.f64()? }
            }
            TAG_APPEAL_MODERATION => OpView::AppealModeration { user: r.str()? },
            tag => return Err(WireError::BadTag(tag)),
        };
        if r.pos != buf.len() {
            return Err(WireError::TrailingBytes(buf.len() - r.pos));
        }
        Ok(op)
    }

    /// The account driving this op. The returned `&str` borrows the
    /// *input buffer* (lifetime `'a`, not `&self`), so it stays valid
    /// after the view value is moved — the admission path relies on
    /// that to look up the session while the view waits to be owned.
    pub fn user(&self) -> &'a str {
        match self {
            OpView::Register { user }
            | OpView::EnterWorld { user, .. }
            | OpView::Propose { user, .. }
            | OpView::Vote { user, .. }
            | OpView::Endorse { user, .. }
            | OpView::Report { user, .. }
            | OpView::Mint { user, .. }
            | OpView::List { user, .. }
            | OpView::Buy { user, .. }
            | OpView::RecordCollection { user, .. }
            | OpView::TwinSync { user, .. }
            | OpView::Delegate { user, .. }
            | OpView::RevokeDelegation { user }
            | OpView::QuadraticVote { user, .. }
            | OpView::SensorEvent { user, .. }
            | OpView::AppealModeration { user } => user,
        }
    }

    /// Short label for metrics and logs (same strings as
    /// [`Op::label`], so traces are identical whichever decode ran).
    pub fn label(&self) -> &'static str {
        match self {
            OpView::Register { .. } => "register",
            OpView::EnterWorld { .. } => "enter_world",
            OpView::Propose { .. } => "propose",
            OpView::Vote { .. } => "vote",
            OpView::Endorse { .. } => "endorse",
            OpView::Report { .. } => "report",
            OpView::Mint { .. } => "mint",
            OpView::List { .. } => "list",
            OpView::Buy { .. } => "buy",
            OpView::RecordCollection { .. } => "record_collection",
            OpView::TwinSync { .. } => "twin_sync",
            OpView::Delegate { .. } => "delegate",
            OpView::RevokeDelegation { .. } => "revoke_delegation",
            OpView::QuadraticVote { .. } => "quadratic_vote",
            OpView::SensorEvent { .. } => "sensor_event",
            OpView::AppealModeration { .. } => "appeal",
        }
    }

    /// Materialises the owned [`Op`] — the only point the decode path
    /// copies string bytes onto the heap.
    pub fn into_owned(self) -> Op {
        match self {
            OpView::Register { user } => Op::Register { user: user.into() },
            OpView::EnterWorld { user, handle, x, y } => {
                Op::EnterWorld { user: user.into(), handle: handle.into(), x, y }
            }
            OpView::Propose { user, proposal, scope, title } => Op::Propose {
                user: user.into(),
                proposal,
                scope: scope.into(),
                title: title.into(),
            },
            OpView::Vote { user, proposal, support } => {
                Op::Vote { user: user.into(), proposal, support }
            }
            OpView::Endorse { user, subject } => {
                Op::Endorse { user: user.into(), subject: subject.into() }
            }
            OpView::Report { user, subject } => {
                Op::Report { user: user.into(), subject: subject.into() }
            }
            OpView::Mint { user, asset, uri, quality } => {
                Op::Mint { user: user.into(), asset, uri: uri.into(), quality }
            }
            OpView::List { user, asset, price } => Op::List { user: user.into(), asset, price },
            OpView::Buy { user, asset } => Op::Buy { user: user.into(), asset },
            OpView::RecordCollection { user, subject, sensor, purpose, basis, bytes } => {
                Op::RecordCollection {
                    user: user.into(),
                    subject: subject.into(),
                    sensor,
                    purpose: purpose.into(),
                    basis,
                    bytes,
                }
            }
            OpView::TwinSync { user, property, delta } => {
                Op::TwinSync { user: user.into(), property, delta }
            }
            OpView::Delegate { user, delegate } => {
                Op::Delegate { user: user.into(), delegate: delegate.into() }
            }
            OpView::RevokeDelegation { user } => Op::RevokeDelegation { user: user.into() },
            OpView::QuadraticVote { user, proposal, support, votes } => {
                Op::QuadraticVote { user: user.into(), proposal, support, votes }
            }
            OpView::SensorEvent { user, class, reading } => {
                Op::SensorEvent { user: user.into(), class, reading }
            }
            OpView::AppealModeration { user } => Op::AppealModeration { user: user.into() },
        }
    }
}

impl Op {
    /// The account driving this op — the session it is admitted
    /// against, and (for most ops) the shard it executes on.
    pub fn user(&self) -> &str {
        match self {
            Op::Register { user }
            | Op::EnterWorld { user, .. }
            | Op::Propose { user, .. }
            | Op::Vote { user, .. }
            | Op::Endorse { user, .. }
            | Op::Report { user, .. }
            | Op::Mint { user, .. }
            | Op::List { user, .. }
            | Op::Buy { user, .. }
            | Op::RecordCollection { user, .. }
            | Op::TwinSync { user, .. }
            | Op::Delegate { user, .. }
            | Op::RevokeDelegation { user }
            | Op::QuadraticVote { user, .. }
            | Op::SensorEvent { user, .. }
            | Op::AppealModeration { user } => user,
        }
    }

    /// Short label for metrics and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Op::Register { .. } => "register",
            Op::EnterWorld { .. } => "enter_world",
            Op::Propose { .. } => "propose",
            Op::Vote { .. } => "vote",
            Op::Endorse { .. } => "endorse",
            Op::Report { .. } => "report",
            Op::Mint { .. } => "mint",
            Op::List { .. } => "list",
            Op::Buy { .. } => "buy",
            Op::RecordCollection { .. } => "record_collection",
            Op::TwinSync { .. } => "twin_sync",
            Op::Delegate { .. } => "delegate",
            Op::RevokeDelegation { .. } => "revoke_delegation",
            Op::QuadraticVote { .. } => "quadratic_vote",
            Op::SensorEvent { .. } => "sensor_event",
            Op::AppealModeration { .. } => "appeal",
        }
    }

    /// Canonical byte encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Op::Register { user } => {
                out.push(TAG_REGISTER);
                put_str(&mut out, user);
            }
            Op::EnterWorld { user, handle, x, y } => {
                out.push(TAG_ENTER_WORLD);
                put_str(&mut out, user);
                put_str(&mut out, handle);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
                out.extend_from_slice(&y.to_bits().to_le_bytes());
            }
            Op::Propose { user, proposal, scope, title } => {
                out.push(TAG_PROPOSE);
                put_str(&mut out, user);
                out.extend_from_slice(&proposal.to_le_bytes());
                put_str(&mut out, scope);
                put_str(&mut out, title);
            }
            Op::Vote { user, proposal, support } => {
                out.push(TAG_VOTE);
                put_str(&mut out, user);
                out.extend_from_slice(&proposal.to_le_bytes());
                out.push(u8::from(*support));
            }
            Op::Endorse { user, subject } => {
                out.push(TAG_ENDORSE);
                put_str(&mut out, user);
                put_str(&mut out, subject);
            }
            Op::Report { user, subject } => {
                out.push(TAG_REPORT);
                put_str(&mut out, user);
                put_str(&mut out, subject);
            }
            Op::Mint { user, asset, uri, quality } => {
                out.push(TAG_MINT);
                put_str(&mut out, user);
                out.extend_from_slice(&asset.to_le_bytes());
                put_str(&mut out, uri);
                out.extend_from_slice(&quality.to_bits().to_le_bytes());
            }
            Op::List { user, asset, price } => {
                out.push(TAG_LIST);
                put_str(&mut out, user);
                out.extend_from_slice(&asset.to_le_bytes());
                out.extend_from_slice(&price.to_le_bytes());
            }
            Op::Buy { user, asset } => {
                out.push(TAG_BUY);
                put_str(&mut out, user);
                out.extend_from_slice(&asset.to_le_bytes());
            }
            Op::RecordCollection { user, subject, sensor, purpose, basis, bytes } => {
                out.push(TAG_RECORD_COLLECTION);
                put_str(&mut out, user);
                put_str(&mut out, subject);
                out.push(sensor_byte(*sensor));
                put_str(&mut out, purpose);
                out.push(basis_byte(*basis));
                out.extend_from_slice(&bytes.to_le_bytes());
            }
            Op::TwinSync { user, property, delta } => {
                out.push(TAG_TWIN_SYNC);
                put_str(&mut out, user);
                out.extend_from_slice(&property.to_le_bytes());
                out.extend_from_slice(&delta.to_bits().to_le_bytes());
            }
            Op::Delegate { user, delegate } => {
                out.push(TAG_DELEGATE);
                put_str(&mut out, user);
                put_str(&mut out, delegate);
            }
            Op::RevokeDelegation { user } => {
                out.push(TAG_REVOKE_DELEGATION);
                put_str(&mut out, user);
            }
            Op::QuadraticVote { user, proposal, support, votes } => {
                out.push(TAG_QUADRATIC_VOTE);
                put_str(&mut out, user);
                out.extend_from_slice(&proposal.to_le_bytes());
                out.push(u8::from(*support));
                out.extend_from_slice(&votes.to_le_bytes());
            }
            Op::SensorEvent { user, class, reading } => {
                out.push(TAG_SENSOR_EVENT);
                put_str(&mut out, user);
                out.push(sensor_byte(*class));
                out.extend_from_slice(&reading.to_bits().to_le_bytes());
            }
            Op::AppealModeration { user } => {
                out.push(TAG_APPEAL_MODERATION);
                put_str(&mut out, user);
            }
        }
        out
    }

    /// Decodes one op; rejects trailing bytes. Allocates owned strings;
    /// the hot wire path uses [`OpView::decode`] and materialises only
    /// accepted ops.
    pub fn decode(buf: &[u8]) -> Result<Op, WireError> {
        OpView::decode(buf).map(OpView::into_owned)
    }
}

/// Which ops-plane view a [`StatsQuery`] asks for.
///
/// The byte values are the wire encoding; decoding rejects anything
/// else with [`WireError::BadEnum`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatsKind {
    /// The full telemetry snapshot in Prometheus text exposition.
    /// Reporting-only: the body includes wall-clock histograms, so it
    /// is *not* replay-deterministic.
    Prometheus,
    /// The sliding tick-window heat report as JSON (deterministic).
    Heat,
    /// The SLO snapshot as JSON (deterministic).
    Slo,
    /// The stage-latency report as JSON (deterministic).
    Latency,
}

impl StatsKind {
    /// Every kind, in wire-byte order.
    pub const ALL: [StatsKind; 4] =
        [StatsKind::Prometheus, StatsKind::Heat, StatsKind::Slo, StatsKind::Latency];

    /// The wire byte for this kind.
    pub fn byte(self) -> u8 {
        match self {
            StatsKind::Prometheus => 0,
            StatsKind::Heat => 1,
            StatsKind::Slo => 2,
            StatsKind::Latency => 3,
        }
    }

    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<StatsKind> {
        StatsKind::ALL.get(b as usize).copied()
    }

    /// Whether a reply body of this kind is a deterministic function of
    /// the admitted op stream (and therefore digest-checked on journal
    /// replay).
    pub fn deterministic(self) -> bool {
        !matches!(self, StatsKind::Prometheus)
    }

    /// Stable lowercase label for exports and journals.
    pub fn label(self) -> &'static str {
        match self {
            StatsKind::Prometheus => "prometheus",
            StatsKind::Heat => "heat",
            StatsKind::Slo => "slo",
            StatsKind::Latency => "latency",
        }
    }
}

/// Tag byte for [`StatsQuery`] frames. Deliberately outside the
/// [`Op`] tag range (`0x01..=0x10`), so a stats frame offered to the
/// op decoder fails with `BadTag` instead of aliasing an op — and the
/// serving layer can recognise admin frames by their first byte.
pub const TAG_STATS_QUERY: u8 = 0x11;
/// Tag byte for [`StatsReply`] frames.
pub const TAG_STATS_REPLY: u8 = 0x12;

/// A live-stats request: an *admin* wire frame, not an [`Op`]. It is
/// served read-only at the connection sweep (never admitted, never
/// journaled as an offer), so observing a gateway cannot perturb the
/// deterministic op stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsQuery {
    /// Which view to serve.
    pub kind: StatsKind,
}

impl StatsQuery {
    /// Encodes to `[TAG_STATS_QUERY, kind]`.
    pub fn encode(&self) -> Vec<u8> {
        vec![TAG_STATS_QUERY, self.kind.byte()]
    }

    /// Decodes one query; rejects trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<StatsQuery, WireError> {
        let mut r = Reader { buf, pos: 0 };
        let tag = r.u8()?;
        if tag != TAG_STATS_QUERY {
            return Err(WireError::BadTag(tag));
        }
        let kind_byte = r.u8()?;
        let kind = StatsKind::from_byte(kind_byte)
            .ok_or(WireError::BadEnum { field: "stats_kind", value: kind_byte })?;
        if r.pos != buf.len() {
            return Err(WireError::TrailingBytes(buf.len() - r.pos));
        }
        Ok(StatsQuery { kind })
    }
}

/// A live-stats reply: the requested view's body, stamped with the
/// logical position (epoch, tick) it was served at. The stamp is what
/// makes replies replayable — an offline replay of the same journal
/// reaches the same (epoch, tick) and serves a byte-identical body for
/// every deterministic [`StatsKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// Which view this body is.
    pub kind: StatsKind,
    /// Router epoch at serve time.
    pub epoch: u64,
    /// Router logical tick at serve time.
    pub tick: u64,
    /// The rendered view (Prometheus text or JSON, per `kind`).
    pub body: Vec<u8>,
}

impl StatsReply {
    /// Encodes to `[TAG_STATS_REPLY, kind, epoch, tick, len, body]`
    /// (integers little-endian, body length a `u32`).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + 8 + 8 + 4 + self.body.len());
        out.push(TAG_STATS_REPLY);
        out.push(self.kind.byte());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        let len = u32::try_from(self.body.len()).expect("stats bodies stay under 4 GiB");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Decodes one reply; rejects trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<StatsReply, WireError> {
        let mut r = Reader { buf, pos: 0 };
        let tag = r.u8()?;
        if tag != TAG_STATS_REPLY {
            return Err(WireError::BadTag(tag));
        }
        let kind_byte = r.u8()?;
        let kind = StatsKind::from_byte(kind_byte)
            .ok_or(WireError::BadEnum { field: "stats_kind", value: kind_byte })?;
        let epoch = r.u64()?;
        let tick = r.u64()?;
        let len = r.u32()? as usize;
        let body = r.take(len)?.to_vec();
        if r.pos != buf.len() {
            return Err(WireError::TrailingBytes(buf.len() - r.pos));
        }
        Ok(StatsReply { kind, epoch, tick, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Op> {
        vec![
            Op::Register { user: "alice".into() },
            Op::EnterWorld { user: "alice".into(), handle: "neo".into(), x: -3.25, y: 12.5 },
            Op::Propose {
                user: "bob".into(),
                proposal: 3,
                scope: "privacy".into(),
                title: "Bigger bubbles".into(),
            },
            Op::Vote { user: "carol".into(), proposal: 7, support: true },
            Op::Vote { user: "carol".into(), proposal: u64::MAX, support: false },
            Op::Endorse { user: "alice".into(), subject: "bob".into() },
            Op::Report { user: "bob".into(), subject: "mallory".into() },
            Op::Mint { user: "ayla".into(), asset: 42, uri: "asset://42".into(), quality: 0.875 },
            Op::List { user: "ayla".into(), asset: 42, price: 360 },
            Op::Buy { user: "kei".into(), asset: 42 },
            Op::RecordCollection {
                user: "svc".into(),
                subject: "alice".into(),
                sensor: SensorClass::Gaze,
                purpose: "analytics".into(),
                basis: LawfulBasis::Consent,
                bytes: 4096,
            },
            Op::TwinSync { user: "alice".into(), property: 3, delta: -0.5 },
            Op::Delegate { user: "alice".into(), delegate: "bob".into() },
            Op::RevokeDelegation { user: "alice".into() },
            Op::QuadraticVote { user: "carol".into(), proposal: 7, support: true, votes: 3 },
            Op::QuadraticVote {
                user: "carol".into(),
                proposal: u64::MAX,
                support: false,
                votes: u32::MAX,
            },
            Op::SensorEvent { user: "alice".into(), class: SensorClass::Gaze, reading: 0.7 },
            Op::SensorEvent {
                user: "kei".into(),
                class: SensorClass::HeartRate,
                reading: f64::NEG_INFINITY,
            },
            Op::AppealModeration { user: "mallory".into() },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for op in samples() {
            let bytes = op.encode();
            assert_eq!(Op::decode(&bytes).unwrap(), op, "round-trip of {op:?}");
        }
    }

    #[test]
    fn every_sensor_and_basis_round_trips() {
        for sensor in SensorClass::ALL {
            for basis in [
                LawfulBasis::Consent,
                LawfulBasis::Contract,
                LawfulBasis::LegitimateInterest,
                LawfulBasis::VitalInterest,
                LawfulBasis::None,
            ] {
                let op = Op::RecordCollection {
                    user: "u".into(),
                    subject: "s".into(),
                    sensor,
                    purpose: "p".into(),
                    basis,
                    bytes: 1,
                };
                assert_eq!(Op::decode(&op.encode()).unwrap(), op);
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert_eq!(Op::decode(&[]), Err(WireError::UnexpectedEof));
        assert_eq!(Op::decode(&[0xff]), Err(WireError::BadTag(0xff)));
        // Truncated string length prefix.
        assert_eq!(Op::decode(&[TAG_REGISTER, 5]), Err(WireError::UnexpectedEof));
        // String body shorter than its declared length.
        assert_eq!(Op::decode(&[TAG_REGISTER, 5, 0, b'a']), Err(WireError::UnexpectedEof));
        // Non-UTF-8 string.
        assert_eq!(Op::decode(&[TAG_REGISTER, 1, 0, 0xff]), Err(WireError::BadUtf8));
        // Bad bool byte on a vote.
        let mut vote = Op::Vote { user: "v".into(), proposal: 1, support: true }.encode();
        *vote.last_mut().unwrap() = 9;
        assert_eq!(Op::decode(&vote), Err(WireError::BadBool(9)));
        // Trailing garbage.
        let mut reg = Op::Register { user: "a".into() }.encode();
        reg.extend_from_slice(&[0, 0]);
        assert_eq!(Op::decode(&reg), Err(WireError::TrailingBytes(2)));
        // Out-of-range enum bytes.
        let rec = Op::RecordCollection {
            user: "u".into(),
            subject: "s".into(),
            sensor: SensorClass::Audio,
            purpose: "p".into(),
            basis: LawfulBasis::None,
            bytes: 0,
        };
        let mut bytes = rec.encode();
        // sensor byte sits after two strings: 1 + (2+1) + (2+1).
        bytes[7] = 200;
        assert!(matches!(
            Op::decode(&bytes),
            Err(WireError::BadEnum { field: "sensor", .. })
        ));
        // Out-of-range sensor class on a sensor event: the class byte
        // sits right after the user string: 1 + (2+1).
        let mut sensor_event =
            Op::SensorEvent { user: "u".into(), class: SensorClass::Gaze, reading: 1.0 }.encode();
        sensor_event[4] = 200;
        assert!(matches!(
            Op::decode(&sensor_event),
            Err(WireError::BadEnum { field: "class", .. })
        ));
        // Bad bool byte on a quadratic vote (support sits before votes).
        let mut qv =
            Op::QuadraticVote { user: "v".into(), proposal: 1, support: true, votes: 2 }.encode();
        let support_at = qv.len() - 5;
        qv[support_at] = 7;
        assert_eq!(Op::decode(&qv), Err(WireError::BadBool(7)));
        // Truncated quadratic vote (votes field cut off).
        let qv = Op::QuadraticVote { user: "v".into(), proposal: 1, support: true, votes: 2 }
            .encode();
        assert_eq!(Op::decode(&qv[..qv.len() - 2]), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn view_decode_agrees_with_owned_decode_on_every_variant() {
        for op in samples() {
            let bytes = op.encode();
            let view = OpView::decode(&bytes).unwrap();
            assert_eq!(view.into_owned(), op, "view round-trip of {op:?}");
            assert_eq!(view.user(), op.user());
            assert_eq!(view.label(), op.label());
        }
    }

    #[test]
    fn view_decode_rejects_exactly_what_owned_decode_rejects() {
        // Every malformed frame must yield the same typed error from
        // both decode paths — the wire contract has one set of rules.
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0xff],
            vec![TAG_REGISTER, 5],
            vec![TAG_REGISTER, 5, 0, b'a'],
            vec![TAG_REGISTER, 1, 0, 0xff],
            {
                let mut reg = Op::Register { user: "a".into() }.encode();
                reg.extend_from_slice(&[0, 0]);
                reg
            },
        ];
        for bytes in cases {
            assert_eq!(
                Op::decode(&bytes).unwrap_err(),
                OpView::decode(&bytes).unwrap_err(),
                "error mismatch for {bytes:?}"
            );
        }
    }

    #[test]
    fn view_user_outlives_the_moved_view() {
        let bytes = Op::Endorse { user: "alice".into(), subject: "bob".into() }.encode();
        let view = OpView::decode(&bytes).unwrap();
        let user = view.user();
        // `user` borrows the buffer, not the view: moving the view into
        // `into_owned` must leave it usable (the admission path does
        // exactly this).
        let owned = view.into_owned();
        assert_eq!(user, "alice");
        assert_eq!(owned.user(), "alice");
    }

    #[test]
    fn float_bit_patterns_survive() {
        for v in [0.0, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, f64::MAX, f64::NEG_INFINITY] {
            let op = Op::TwinSync { user: "u".into(), property: 0, delta: v };
            let back = Op::decode(&op.encode()).unwrap();
            match back {
                Op::TwinSync { delta, .. } => assert_eq!(delta.to_bits(), v.to_bits()),
                other => panic!("wrong variant {other:?}"),
            }
        }
    }

    #[test]
    fn stats_query_round_trips_every_kind() {
        for kind in StatsKind::ALL {
            let q = StatsQuery { kind };
            assert_eq!(StatsQuery::decode(&q.encode()), Ok(q));
            assert_eq!(StatsKind::from_byte(kind.byte()), Some(kind));
        }
        assert!(StatsKind::Heat.deterministic());
        assert!(!StatsKind::Prometheus.deterministic());
    }

    #[test]
    fn stats_reply_round_trips() {
        let reply = StatsReply {
            kind: StatsKind::Slo,
            epoch: 42,
            tick: u64::MAX,
            body: b"{\"objectives\":[]}".to_vec(),
        };
        assert_eq!(StatsReply::decode(&reply.encode()), Ok(reply.clone()));
        let empty = StatsReply { kind: StatsKind::Heat, epoch: 0, tick: 0, body: Vec::new() };
        assert_eq!(StatsReply::decode(&empty.encode()), Ok(empty));
    }

    #[test]
    fn stats_frames_reject_malformed_input() {
        // A stats tag is not a valid op, and vice versa.
        assert_eq!(
            Op::decode(&StatsQuery { kind: StatsKind::Heat }.encode()),
            Err(WireError::BadTag(TAG_STATS_QUERY))
        );
        assert_eq!(
            StatsQuery::decode(&Op::Register { user: "a".into() }.encode()),
            Err(WireError::BadTag(TAG_REGISTER))
        );
        // Out-of-range kind byte.
        assert_eq!(
            StatsQuery::decode(&[TAG_STATS_QUERY, 9]),
            Err(WireError::BadEnum { field: "stats_kind", value: 9 })
        );
        // Trailing bytes after a complete frame.
        let mut q = StatsQuery { kind: StatsKind::Heat }.encode();
        q.push(0);
        assert_eq!(StatsQuery::decode(&q), Err(WireError::TrailingBytes(1)));
        // Truncated reply body.
        let mut r = StatsReply {
            kind: StatsKind::Latency,
            epoch: 1,
            tick: 2,
            body: b"abcdef".to_vec(),
        }
        .encode();
        r.truncate(r.len() - 2);
        assert_eq!(StatsReply::decode(&r), Err(WireError::UnexpectedEof));
    }
}
