//! The shard router: consistent hashing, batched execution, and
//! cross-shard settlement.
//!
//! A [`ShardRouter`] owns N independent [`MetaversePlatform`] shards
//! and a consistent-hash ring (virtual nodes over FNV-1a) that pins
//! every user to a home shard, where their wallet, reputation account,
//! avatar, and firewall live. Admitted ops accumulate in session
//! mailboxes; at each **epoch boundary** ([`ShardRouter::execute_epoch`])
//! the router drains mailboxes into per-shard batches, executes each
//! batch in global admission order, advances and commits every shard's
//! ledger, and then settles cross-shard effects.
//!
//! Two effects can cross shards and both go through the settlement
//! queue so they conserve global quantities:
//!
//! * **purchases** — the buyer's funds are withdrawn on their home
//!   shard (escrow), shipped to the asset's shard, deposited, and the
//!   sale executed there; any failure refunds the escrow to the buyer's
//!   home shard, so total token supply never changes;
//! * **ratings** — endorsements and reports whose subject lives
//!   elsewhere apply on the subject's shard via the platform's
//!   module-guarded remote-rating entry point, requeueing while the
//!   target module is down.
//!
//! Each shard also gets a router-side [`CircuitBreaker`] in epoch time:
//! a shard whose ledger commits keep failing (e.g. a rogue validator
//! fault) trips the breaker, new ops for it are refused with
//! [`AdmissionError::ShardUnavailable`], its queued batch is held, and
//! settlement entries targeting it are requeued — while every other
//! shard keeps committing. Governance membership is deliberately
//! global (a registration joins every shard's DAOs): decision-making
//! spans the whole platform even though resources are sharded.

use std::collections::{BTreeMap, VecDeque};

use metaverse_assets::nft::NftId;
use metaverse_core::platform::MetaversePlatform;
use metaverse_core::resilience::ResilienceConfig;
use metaverse_core::CoreError;
use metaverse_ledger::audit::DataCollectionEvent;
use metaverse_ledger::chain::ChainConfig;
use metaverse_resilience::breaker::BreakerTransition;
use metaverse_resilience::{BreakerConfig, BreakerState, CircuitBreaker, FaultPlan};
use metaverse_telemetry::{names, Counter, Gauge, Histogram, TelemetryHub, TelemetrySnapshot};
use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::DigitalTwin;
use metaverse_world::geometry::Vec2;

use crate::error::AdmissionError;
use crate::op::Op;
use crate::session::{Session, SessionConfig};

/// Router construction knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Number of independent platform shards.
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Admission policy stamped onto every new session.
    pub session: SessionConfig,
    /// Platform ticks advanced on every shard per epoch.
    pub epoch_ticks: u64,
    /// Router-side per-shard breaker tuning (in epoch time).
    pub breaker: BreakerConfig,
    /// Resilience config handed to each shard platform.
    pub resilience: ResilienceConfig,
    /// Ledger tuning handed to each shard platform.
    pub chain_config: ChainConfig,
    /// Whether the gateway (and its shards) record telemetry.
    pub telemetry: bool,
    /// Tokens granted to each successfully registered user.
    pub initial_grant: u64,
    /// Settlement attempts against a down module before giving up.
    pub max_settlement_requeues: u32,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            shards: 4,
            vnodes: 16,
            session: SessionConfig::default(),
            epoch_ticks: 1,
            breaker: BreakerConfig::default(),
            resilience: ResilienceConfig::default(),
            // Full-depth key trees (2^10 blocks per validator): a
            // gateway shard seals blocks every epoch for the whole run,
            // so the shallow trees the experiments use for fast setup
            // would exhaust mid-workload and latch the breaker open.
            chain_config: ChainConfig::default(),
            telemetry: true,
            initial_grant: 10_000,
            max_settlement_requeues: 3,
        }
    }
}

/// The ring's dependency-free hash: FNV-1a with a murmur-style
/// finalizer. Bare FNV-1a leaves the high bits dominated by the shared
/// key prefix (`shard-…`, `user-…`), which collapses the ring into one
/// arc per shard; the avalanche pass restores uniform placement.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Where a globally-numbered asset actually lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AssetLocation {
    shard: usize,
    local: NftId,
}

/// A cross-shard effect waiting in the settlement queue.
#[derive(Debug, Clone, PartialEq)]
pub enum SettlementEffect {
    /// Escrowed funds buying an asset on another shard.
    Purchase {
        /// Buying account.
        buyer: String,
        /// Global asset id.
        asset: u64,
        /// Buyer's home shard (refund target).
        from_shard: usize,
        /// Asset's shard (execution target).
        to_shard: usize,
        /// Escrowed price.
        price: u64,
    },
    /// A rating whose subject lives on another shard.
    Rating {
        /// Rated account.
        subject: String,
        /// Subject's home shard (execution target).
        to_shard: usize,
        /// Endorse (`true`) or report (`false`).
        positive: bool,
    },
}

/// Terminal fate of a settlement entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettlementOutcome {
    /// Applied on the target shard.
    Applied,
    /// Purchase failed; escrow returned to the buyer's home shard.
    Refunded,
    /// Rating abandoned (target module stayed down past the requeue
    /// budget, or the subject was unknown).
    Dropped,
}

/// One settled entry, in settlement order.
#[derive(Debug, Clone, PartialEq)]
pub struct SettledEntry {
    /// What crossed shards.
    pub effect: SettlementEffect,
    /// How it ended.
    pub outcome: SettlementOutcome,
    /// Epoch the entry reached its terminal state.
    pub epoch: u64,
    /// Times it was requeued before settling.
    pub requeues: u32,
}

/// The cross-shard settlement ledger: every terminal entry plus the
/// escrow and supply accounting that [`ConservationReport`] audits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SettlementLedger {
    /// Terminal entries, in settlement order.
    pub entries: Vec<SettledEntry>,
    /// Tokens minted by registration grants.
    pub tokens_minted: u64,
    /// Purchase funds currently in flight between shards.
    pub escrow: u64,
    /// Entries ever enqueued.
    pub enqueued: u64,
    /// Entries applied.
    pub applied: u64,
    /// Entries refunded or dropped.
    pub rejected: u64,
}

/// Shard-count-invariant audit of global quantities. For one seed this
/// report is identical whether the same op stream ran on 1 shard or 8 —
/// the determinism gate CI enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservationReport {
    /// Registered users across all shards.
    pub users: u64,
    /// Tokens minted by registration grants.
    pub tokens_minted: u64,
    /// Tokens sitting in shard wallets.
    pub tokens_on_shards: u64,
    /// Tokens in settlement escrow.
    pub tokens_in_flight: u64,
    /// Assets successfully minted.
    pub assets_minted: u64,
    /// Minted assets resolvable to exactly one live owner.
    pub assets_single_owner: u64,
    /// Whether supply and ownership balance exactly.
    pub conserved: bool,
}

/// What one epoch did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: u64,
    /// Ops that executed successfully.
    pub committed: u64,
    /// Ops that reached a shard and failed.
    pub failed: u64,
    /// Settlement entries applied this epoch.
    pub settled: u64,
    /// Settlement entries requeued this epoch.
    pub requeued: u64,
    /// Shards skipped because their breaker was open.
    pub skipped_shards: Vec<usize>,
    /// Shards whose ledger commit failed this epoch.
    pub commit_failures: Vec<usize>,
}

/// Gateway instruments, registered under [`names::gateway`].
struct GatewayMetrics {
    ops_submitted: Counter,
    ops_accepted: Counter,
    ops_committed: Counter,
    ops_failed: Counter,
    rejected_rate_limited: Counter,
    rejected_mailbox_full: Counter,
    rejected_shard_down: Counter,
    rejected_unknown_user: Counter,
    settlement_enqueued: Counter,
    settlement_applied: Counter,
    settlement_rejected: Counter,
    settlement_requeued: Counter,
    settlement_depth: Gauge,
    epochs: Counter,
    sessions: Gauge,
    batch_size: Histogram,
    shard_commit_failures: Counter,
    shard_epochs_skipped: Counter,
    shard_batch_ns: Vec<Histogram>,
    shard_queue_depth: Vec<Gauge>,
}

impl GatewayMetrics {
    fn new(hub: &TelemetryHub, shards: usize) -> Self {
        use names::gateway as g;
        GatewayMetrics {
            ops_submitted: hub.counter(g::OPS_SUBMITTED),
            ops_accepted: hub.counter(g::OPS_ACCEPTED),
            ops_committed: hub.counter(g::OPS_COMMITTED),
            ops_failed: hub.counter(g::OPS_FAILED),
            rejected_rate_limited: hub.counter(g::REJECTED_RATE_LIMITED),
            rejected_mailbox_full: hub.counter(g::REJECTED_MAILBOX_FULL),
            rejected_shard_down: hub.counter(g::REJECTED_SHARD_DOWN),
            rejected_unknown_user: hub.counter(g::REJECTED_UNKNOWN_USER),
            settlement_enqueued: hub.counter(g::SETTLEMENT_ENQUEUED),
            settlement_applied: hub.counter(g::SETTLEMENT_APPLIED),
            settlement_rejected: hub.counter(g::SETTLEMENT_REJECTED),
            settlement_requeued: hub.counter(g::SETTLEMENT_REQUEUED),
            settlement_depth: hub.gauge(g::SETTLEMENT_DEPTH),
            epochs: hub.counter(g::EPOCHS),
            sessions: hub.gauge(g::SESSIONS),
            batch_size: hub.histogram(g::BATCH_SIZE),
            shard_commit_failures: hub.counter(g::SHARD_COMMIT_FAILURES),
            shard_epochs_skipped: hub.counter(g::SHARD_EPOCHS_SKIPPED),
            shard_batch_ns: (0..shards).map(|i| hub.histogram(&g::shard_batch_ns(i))).collect(),
            shard_queue_depth: (0..shards).map(|i| hub.gauge(&g::shard_queue_depth(i))).collect(),
        }
    }
}

/// One shard: an independent platform plus router-side state.
struct Shard {
    platform: MetaversePlatform,
    queue: VecDeque<(u64, Op)>,
    breaker: CircuitBreaker,
    twin: DigitalTwin,
    channel: SyncChannel,
}

/// An in-flight settlement entry.
#[derive(Debug, Clone)]
struct PendingSettlement {
    effect: SettlementEffect,
    requeues: u32,
}

/// The sharded session gateway.
pub struct ShardRouter {
    config: GatewayConfig,
    hub: TelemetryHub,
    metrics: GatewayMetrics,
    ring: BTreeMap<u64, usize>,
    shards: Vec<Shard>,
    sessions: BTreeMap<String, Session>,
    assets: BTreeMap<u64, AssetLocation>,
    proposals: BTreeMap<u64, (usize, String, u64)>,
    settlement: VecDeque<PendingSettlement>,
    ledger: SettlementLedger,
    epoch: u64,
    now: u64,
    seq: u64,
}

impl ShardRouter {
    /// Builds a router with `config.shards` fresh platforms.
    pub fn new(config: GatewayConfig) -> Self {
        assert!(config.shards > 0, "gateway needs at least one shard");
        let hub = if config.telemetry { TelemetryHub::new() } else { TelemetryHub::disabled() };
        let metrics = GatewayMetrics::new(&hub, config.shards);
        let mut ring = BTreeMap::new();
        for shard in 0..config.shards {
            for vnode in 0..config.vnodes.max(1) {
                ring.insert(ring_hash(format!("shard-{shard}-vnode-{vnode}").as_bytes()), shard);
            }
        }
        let shards = (0..config.shards)
            .map(|i| {
                let platform = MetaversePlatform::builder()
                    .chain_config(config.chain_config.clone())
                    .validators([format!("validator-{i}")])
                    .resilience(config.resilience.clone())
                    .telemetry(config.telemetry)
                    .build();
                Shard {
                    platform,
                    queue: VecDeque::new(),
                    breaker: CircuitBreaker::new(config.breaker),
                    twin: DigitalTwin::new(i as u64, format!("shard-{i}"), "gateway", 8),
                    channel: SyncChannel::new(SyncConfig {
                        loss_rate: 0.0,
                        dup_rate: 0.0,
                        reconcile_interval: 25,
                        seed: i as u64,
                        retry: None,
                    }),
                }
            })
            .collect();
        ShardRouter {
            config,
            hub,
            metrics,
            ring,
            shards,
            sessions: BTreeMap::new(),
            assets: BTreeMap::new(),
            proposals: BTreeMap::new(),
            settlement: VecDeque::new(),
            ledger: SettlementLedger::default(),
            epoch: 0,
            now: 0,
            seq: 0,
        }
    }

    /// The home shard the ring assigns to `user`.
    pub fn home_shard(&self, user: &str) -> usize {
        let h = ring_hash(user.as_bytes());
        let shard = self
            .ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, s)| *s)
            .expect("ring is never empty");
        shard
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Connected sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The gateway's own telemetry hub (distinct from each shard's).
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.hub
    }

    /// Snapshot of the gateway's instruments.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.hub.snapshot()
    }

    /// Read access to one shard's platform.
    pub fn shard_platform(&self, shard: usize) -> &MetaversePlatform {
        &self.shards[shard].platform
    }

    /// Router-side breaker state for one shard.
    pub fn shard_breaker_state(&self, shard: usize) -> BreakerState {
        self.shards[shard].breaker.state()
    }

    /// The settlement ledger (terminal entries + supply accounting).
    pub fn settlement_ledger(&self) -> &SettlementLedger {
        &self.ledger
    }

    /// Installs a fault schedule on one shard's platform (the E21 /
    /// test hook for stalling a single shard).
    pub fn install_shard_fault_plan(&mut self, shard: usize, plan: FaultPlan) {
        self.shards[shard].platform.install_fault_plan(plan);
    }

    /// Offers an encoded op to the gateway (decode, then admit).
    pub fn submit_wire(&mut self, bytes: &[u8]) -> Result<u64, crate::error::GatewayError> {
        let op = Op::decode(bytes)?;
        self.submit(op).map_err(Into::into)
    }

    /// Offers an op to its owner's session. On success the op waits in
    /// the session mailbox for the next epoch; the returned sequence
    /// number is its global admission order.
    pub fn submit(&mut self, op: Op) -> Result<u64, AdmissionError> {
        self.metrics.ops_submitted.incr();
        let user = op.user().to_string();
        let is_register = matches!(op, Op::Register { .. });
        if is_register && !self.sessions.contains_key(&user) {
            let shard = self.home_shard(&user);
            if !self.shards[shard].breaker.allows_request(self.epoch) {
                self.metrics.rejected_shard_down.incr();
                return Err(AdmissionError::ShardUnavailable { shard });
            }
            let mut session = Session::new(&user, shard, self.config.session);
            let seq = self.seq;
            session
                .offer(seq, op, self.now)
                .expect("a fresh session admits its first op");
            self.sessions.insert(user, session);
            self.metrics.sessions.set(self.sessions.len() as i64);
            self.metrics.ops_accepted.incr();
            self.seq += 1;
            return Ok(seq);
        }
        let Some(session) = self.sessions.get_mut(&user) else {
            self.metrics.rejected_unknown_user.incr();
            return Err(AdmissionError::UnknownUser { user });
        };
        let shard = session.shard();
        if !self.shards[shard].breaker.allows_request(self.epoch) {
            self.metrics.rejected_shard_down.incr();
            return Err(AdmissionError::ShardUnavailable { shard });
        }
        let seq = self.seq;
        match session.offer(seq, op, self.now) {
            Ok(()) => {
                self.metrics.ops_accepted.incr();
                self.seq += 1;
                Ok(seq)
            }
            Err(e) => {
                match &e {
                    AdmissionError::RateLimited { .. } => {
                        self.metrics.rejected_rate_limited.incr()
                    }
                    AdmissionError::MailboxFull { .. } => {
                        self.metrics.rejected_mailbox_full.incr()
                    }
                    _ => {}
                }
                Err(e)
            }
        }
    }

    /// Drains every mailbox, executes per-shard batches, commits every
    /// healthy shard's ledger, and settles cross-shard effects.
    pub fn execute_epoch(&mut self) -> EpochReport {
        let mut report = EpochReport { epoch: self.epoch, ..EpochReport::default() };
        self.metrics.epochs.incr();

        // 1. Mailboxes → shard queues; votes route to the proposal's
        //    shard and buys are resolved during execution, so routing
        //    here is simply "the shard that owns the op's target".
        let mut drained: Vec<(u64, Op)> = Vec::new();
        for session in self.sessions.values_mut() {
            drained.extend(session.drain());
        }
        drained.sort_by_key(|(seq, _)| *seq);
        for (seq, op) in drained {
            let shard = self.target_shard(&op);
            self.shards[shard].queue.push_back((seq, op));
        }
        for shard in &mut self.shards {
            shard.queue.make_contiguous().sort_by_key(|(seq, _)| *seq);
        }

        // 2. Per-shard batches, skipping tripped shards.
        for i in 0..self.shards.len() {
            for t in self.poll_breaker(i) {
                let _ = t;
            }
            if !self.shards[i].breaker.allows_request(self.epoch) {
                self.metrics.shard_epochs_skipped.incr();
                report.skipped_shards.push(i);
                continue;
            }
            let batch: Vec<(u64, Op)> = self.shards[i].queue.drain(..).collect();
            self.metrics.batch_size.record(batch.len() as u64);
            let span = self.metrics.shard_batch_ns[i].start_span();
            for (_, op) in batch {
                match self.execute_on_shard(i, op) {
                    Ok(()) => {
                        self.metrics.ops_committed.incr();
                        report.committed += 1;
                    }
                    Err(_) => {
                        self.metrics.ops_failed.incr();
                        report.failed += 1;
                    }
                }
            }
            drop(span);
            self.shards[i].platform.advance_ticks(self.config.epoch_ticks);
            match self.shards[i].platform.commit_epoch() {
                Ok(_) => {
                    let transitions = self.shards[i].breaker.record_success(self.epoch);
                    self.mirror_breaker(i, transitions.into_iter());
                }
                Err(_) => {
                    self.metrics.shard_commit_failures.incr();
                    report.commit_failures.push(i);
                    let transitions = self.shards[i].breaker.record_failure(self.epoch);
                    self.mirror_breaker(i, transitions.into_iter());
                }
            }
        }

        // 3. Settle cross-shard effects.
        let (settled, requeued) = self.settle();
        report.settled = settled;
        report.requeued = requeued;

        // 4. Gauges + clock.
        self.metrics.settlement_depth.set(self.settlement.len() as i64);
        for i in 0..self.shards.len() {
            self.metrics.shard_queue_depth[i].set(self.shards[i].queue.len() as i64);
        }
        self.epoch += 1;
        self.now += self.config.epoch_ticks.max(1);
        report
    }

    /// Work admitted but not yet terminal: mailboxed ops, queued
    /// batches on held shards, and in-flight settlement entries.
    pub fn pending_ops(&self) -> usize {
        let mailboxed: usize = self.sessions.values().map(Session::pending).sum();
        let queued: usize = self.shards.iter().map(|s| s.queue.len()).sum();
        mailboxed + queued + self.settlement.len()
    }

    /// Runs epochs until [`ShardRouter::pending_ops`] reaches zero (or
    /// `max_epochs` passes). Returns epochs run.
    pub fn drain(&mut self, max_epochs: u64) -> u64 {
        let mut ran = 0;
        while ran < max_epochs && self.pending_ops() > 0 {
            self.execute_epoch();
            ran += 1;
        }
        ran
    }

    /// Audits global supply and ownership; see [`ConservationReport`].
    pub fn conservation_report(&self) -> ConservationReport {
        let users = self.shards.iter().map(|s| s.platform.user_count() as u64).sum();
        let tokens_on_shards =
            self.shards.iter().map(|s| s.platform.market().total_balance()).sum();
        let assets_single_owner = self
            .assets
            .values()
            .filter(|loc| {
                self.shards[loc.shard]
                    .platform
                    .assets()
                    .get(loc.local)
                    .is_some_and(|nft| !nft.owner.is_empty())
            })
            .count() as u64;
        let assets_minted = self.assets.len() as u64;
        let tokens_in_flight = self.ledger.escrow;
        let conserved = self.ledger.tokens_minted == tokens_on_shards + tokens_in_flight
            && assets_single_owner == assets_minted;
        ConservationReport {
            users,
            tokens_minted: self.ledger.tokens_minted,
            tokens_on_shards,
            tokens_in_flight,
            assets_minted,
            assets_single_owner,
            conserved,
        }
    }

    /// Global asset id → current owner, resolved across shards. Every
    /// minted asset appears exactly once (the invariant
    /// [`Self::conservation_report`] audits); *which* buyer won a
    /// contested same-epoch purchase depends on batch interleaving and
    /// so may differ between shard counts.
    pub fn asset_owners(&self) -> BTreeMap<u64, String> {
        self.assets
            .iter()
            .filter_map(|(gid, loc)| {
                self.shards[loc.shard]
                    .platform
                    .assets()
                    .get(loc.local)
                    .map(|nft| (*gid, nft.owner.clone()))
            })
            .collect()
    }

    // ---- internals -----------------------------------------------------

    /// The shard an op executes on: votes go to the proposal's shard,
    /// everything else to the acting user's home shard. (Cross-shard
    /// buys and ratings start on the home shard and finish through the
    /// settlement queue.)
    fn target_shard(&self, op: &Op) -> usize {
        if let Op::Vote { proposal, .. } = op {
            if let Some((shard, _, _)) = self.proposals.get(proposal) {
                return *shard;
            }
        }
        self.sessions
            .get(op.user())
            .map(Session::shard)
            .unwrap_or_else(|| self.home_shard(op.user()))
    }

    fn poll_breaker(&mut self, shard: usize) -> Vec<BreakerTransition> {
        let t = self.shards[shard].breaker.poll(self.epoch);
        let ts: Vec<_> = t.into_iter().collect();
        self.mirror_breaker(shard, ts.iter().cloned());
        ts
    }

    fn mirror_breaker(
        &self,
        shard: usize,
        transitions: impl Iterator<Item = BreakerTransition>,
    ) {
        for t in transitions {
            self.hub.incr(&names::gateway::shard_breaker(shard, t.to.label()));
        }
    }

    fn execute_on_shard(&mut self, shard: usize, op: Op) -> Result<(), CoreError> {
        match op {
            Op::Register { user } => {
                self.shards[shard].platform.register_user(&user)?;
                self.shards[shard].platform.deposit(&user, self.config.initial_grant);
                self.ledger.tokens_minted += self.config.initial_grant;
                // Governance is global: join every other shard's DAOs.
                for (i, other) in self.shards.iter_mut().enumerate() {
                    if i != shard {
                        let _ = other.platform.with_governance(|g| g.join_all(&user));
                    }
                }
                Ok(())
            }
            Op::EnterWorld { user, handle, x, y } => {
                self.shards[shard].platform.enter_world(&user, &handle, Vec2::new(x, y))?;
                Ok(())
            }
            Op::Propose { user, proposal, scope, title } => {
                let local =
                    self.shards[shard].platform.propose(&scope, &user, &title)?;
                self.proposals.insert(proposal, (shard, scope, local));
                Ok(())
            }
            Op::Vote { user, proposal, support } => {
                // A vote admitted in the same epoch as its proposal may
                // have been routed before the directory entry existed;
                // execute against the proposal's true shard either way.
                let (pshard, scope, local) =
                    self.proposals.get(&proposal).cloned().ok_or_else(|| {
                        CoreError::Platform(format!("unknown proposal {proposal}"))
                    })?;
                self.shards[pshard].platform.vote(&scope, &user, local, support)?;
                Ok(())
            }
            Op::Endorse { user, subject } => self.rate(shard, &user, &subject, true),
            Op::Report { user, subject } => self.rate(shard, &user, &subject, false),
            Op::Mint { user, asset, uri, quality } => {
                let local = self.shards[shard].platform.mint_asset(
                    &user,
                    &uri,
                    uri.as_bytes(),
                    quality,
                )?;
                self.assets.insert(asset, AssetLocation { shard, local });
                Ok(())
            }
            Op::List { user, asset, price } => {
                let loc = self.lookup_asset(asset)?;
                // Listings execute on the asset's shard regardless of
                // where the seller is homed — ownership lives there.
                self.shards[loc.shard].platform.list_asset(&user, loc.local, price)?;
                Ok(())
            }
            Op::Buy { user, asset } => self.buy(shard, &user, asset),
            Op::RecordCollection { user, subject, sensor, purpose, basis, bytes } => {
                let tick = self.shards[shard].platform.tick();
                self.shards[shard].platform.record_collection(DataCollectionEvent {
                    collector: user,
                    subject,
                    sensor,
                    purpose,
                    basis,
                    tick,
                    bytes,
                });
                Ok(())
            }
            Op::TwinSync { user, property, delta } => {
                let _ = user;
                let s = &mut self.shards[shard];
                s.channel.step(&mut s.twin, property as usize % 8, delta);
                Ok(())
            }
        }
    }

    fn lookup_asset(&self, asset: u64) -> Result<AssetLocation, CoreError> {
        self.assets
            .get(&asset)
            .copied()
            .ok_or_else(|| CoreError::Platform(format!("unknown asset {asset}")))
    }

    /// Endorse/report: local subjects apply directly; remote subjects
    /// go through settlement.
    fn rate(
        &mut self,
        shard: usize,
        rater: &str,
        subject: &str,
        positive: bool,
    ) -> Result<(), CoreError> {
        let subject_shard =
            self.sessions.get(subject).map(Session::shard).unwrap_or_else(|| {
                self.home_shard(subject)
            });
        if subject_shard == shard {
            if positive {
                self.shards[shard].platform.endorse(rater, subject)?;
            } else {
                self.shards[shard].platform.report(rater, subject)?;
            }
            return Ok(());
        }
        self.enqueue_settlement(SettlementEffect::Rating {
            subject: subject.to_string(),
            to_shard: subject_shard,
            positive,
        });
        Ok(())
    }

    /// Buy on the buyer's home shard: local assets buy directly; remote
    /// assets escrow the price and settle on the asset's shard.
    fn buy(&mut self, shard: usize, buyer: &str, asset: u64) -> Result<(), CoreError> {
        let loc = self.lookup_asset(asset)?;
        if loc.shard == shard {
            return self.shards[shard].platform.buy_asset(buyer, loc.local);
        }
        let price = self.shards[loc.shard]
            .platform
            .market()
            .listing(loc.local)
            .map(|l| l.price)
            .ok_or_else(|| CoreError::Platform(format!("asset {asset} not listed")))?;
        self.shards[shard].platform.withdraw(buyer, price)?;
        self.ledger.escrow += price;
        self.enqueue_settlement(SettlementEffect::Purchase {
            buyer: buyer.to_string(),
            asset,
            from_shard: shard,
            to_shard: loc.shard,
            price,
        });
        Ok(())
    }

    fn enqueue_settlement(&mut self, effect: SettlementEffect) {
        self.metrics.settlement_enqueued.incr();
        self.ledger.enqueued += 1;
        self.settlement.push_back(PendingSettlement { effect, requeues: 0 });
    }

    /// Applies the settlement queue once; entries whose target shard or
    /// module is unavailable requeue (bounded), purchases that cannot
    /// complete refund. Returns `(settled, requeued)`.
    fn settle(&mut self) -> (u64, u64) {
        let mut settled = 0;
        let mut requeued = 0;
        let pending: Vec<PendingSettlement> = self.settlement.drain(..).collect();
        for entry in pending {
            let target = match &entry.effect {
                SettlementEffect::Purchase { to_shard, .. } => *to_shard,
                SettlementEffect::Rating { to_shard, .. } => *to_shard,
            };
            if !self.shards[target].breaker.allows_request(self.epoch) {
                self.requeue_or_terminate(entry, &mut settled, &mut requeued);
                continue;
            }
            match entry.effect.clone() {
                SettlementEffect::Purchase { buyer, price, to_shard, asset, .. } => {
                    let loc = self.assets[&asset];
                    self.shards[to_shard].platform.deposit(&buyer, price);
                    match self.shards[to_shard].platform.buy_asset(&buyer, loc.local) {
                        Ok(()) => {
                            self.ledger.escrow -= price;
                            self.finish(entry, SettlementOutcome::Applied);
                            settled += 1;
                        }
                        Err(e) => {
                            // Pull the deposit back into escrow before
                            // deciding between requeue and refund.
                            self.shards[to_shard]
                                .platform
                                .withdraw(&buyer, price)
                                .expect("escrow deposit is still unspent");
                            if matches!(e, CoreError::ModuleUnavailable { .. }) {
                                self.requeue_or_terminate(entry, &mut settled, &mut requeued);
                            } else {
                                self.refund(entry);
                            }
                        }
                    }
                }
                SettlementEffect::Rating { subject, to_shard, positive } => {
                    match self.shards[to_shard].platform.apply_remote_rating(&subject, positive)
                    {
                        Ok(_) => {
                            self.finish(entry, SettlementOutcome::Applied);
                            settled += 1;
                        }
                        Err(CoreError::ModuleUnavailable { .. }) => {
                            self.requeue_or_terminate(entry, &mut settled, &mut requeued);
                        }
                        Err(_) => {
                            self.finish(entry, SettlementOutcome::Dropped);
                            self.metrics.settlement_rejected.incr();
                            self.ledger.rejected += 1;
                        }
                    }
                }
            }
        }
        (settled, requeued)
    }

    /// Requeues an entry if it has budget left, otherwise terminates it
    /// (refunding purchases, dropping ratings).
    fn requeue_or_terminate(
        &mut self,
        mut entry: PendingSettlement,
        settled: &mut u64,
        requeued: &mut u64,
    ) {
        let _ = settled;
        if entry.requeues < self.config.max_settlement_requeues {
            entry.requeues += 1;
            self.metrics.settlement_requeued.incr();
            *requeued += 1;
            self.settlement.push_back(entry);
            return;
        }
        match entry.effect {
            SettlementEffect::Purchase { .. } => self.refund(entry),
            SettlementEffect::Rating { .. } => {
                self.finish(entry, SettlementOutcome::Dropped);
                self.metrics.settlement_rejected.incr();
                self.ledger.rejected += 1;
            }
        }
    }

    /// Returns a purchase's escrow to the buyer's home shard.
    fn refund(&mut self, entry: PendingSettlement) {
        if let SettlementEffect::Purchase { ref buyer, from_shard, price, .. } = entry.effect {
            self.shards[from_shard].platform.deposit(buyer, price);
            self.ledger.escrow -= price;
        }
        self.metrics.settlement_rejected.incr();
        self.ledger.rejected += 1;
        self.finish(entry, SettlementOutcome::Refunded);
    }

    fn finish(&mut self, entry: PendingSettlement, outcome: SettlementOutcome) {
        if outcome == SettlementOutcome::Applied {
            self.metrics.settlement_applied.incr();
            self.ledger.applied += 1;
        }
        self.ledger.entries.push(SettledEntry {
            effect: entry.effect,
            outcome,
            epoch: self.epoch,
            requeues: entry.requeues,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaverse_resilience::FaultKind;

    fn config(shards: usize) -> GatewayConfig {
        GatewayConfig {
            shards,
            breaker: BreakerConfig {
                failure_threshold: 2,
                failure_window: 10,
                cooldown: 3,
                probation_successes: 1,
            },
            // Shallow key trees keep per-test keygen cheap; these
            // workloads seal far fewer than 2^6 blocks per shard.
            chain_config: ChainConfig { key_tree_depth: 6, ..ChainConfig::default() },
            ..GatewayConfig::default()
        }
    }

    fn register_all(router: &mut ShardRouter, users: &[&str]) {
        for u in users {
            router.submit(Op::Register { user: (*u).into() }).unwrap();
        }
        router.execute_epoch();
    }

    #[test]
    fn ring_is_stable_and_covers_all_shards() {
        let router = ShardRouter::new(config(4));
        let mut seen = [false; 4];
        for i in 0..256 {
            let shard = router.home_shard(&format!("user-{i}"));
            assert!(shard < 4);
            seen[shard] = true;
            assert_eq!(shard, router.home_shard(&format!("user-{i}")), "stable");
        }
        assert!(seen.iter().all(|s| *s), "256 users should land on every shard");
    }

    #[test]
    fn register_grants_tokens_and_joins_governance_everywhere() {
        let mut router = ShardRouter::new(config(2));
        register_all(&mut router, &["alice", "bob", "carol", "dave"]);
        let report = router.conservation_report();
        assert_eq!(report.users, 4);
        assert_eq!(report.tokens_minted, 4 * router.config.initial_grant);
        assert_eq!(report.tokens_on_shards, report.tokens_minted);
        assert!(report.conserved);
        // A proposal on any shard accepts votes from users homed on the
        // other shard (global governance membership).
        let shard_of = |r: &ShardRouter, u: &str| r.sessions[u].shard();
        let (a, b) = ("alice", "bob");
        if shard_of(&router, a) != shard_of(&router, b) {
            router
                .submit(Op::Propose {
                    user: a.into(),
                    proposal: 0,
                    scope: "root".into(),
                    title: "cross-shard ballot".into(),
                })
                .unwrap();
            router.execute_epoch();
            router.submit(Op::Vote { user: b.into(), proposal: 0, support: true }).unwrap();
            let report = router.execute_epoch();
            assert_eq!(report.failed, 0, "cross-shard vote must land");
        }
    }

    #[test]
    fn unknown_user_is_refused_with_typed_error() {
        let mut router = ShardRouter::new(config(2));
        let err = router
            .submit(Op::Endorse { user: "ghost".into(), subject: "alice".into() })
            .unwrap_err();
        assert!(matches!(err, AdmissionError::UnknownUser { .. }));
        let snap = router.telemetry_snapshot();
        assert_eq!(snap.counters[names::gateway::REJECTED_UNKNOWN_USER], 1);
    }

    #[test]
    fn cross_shard_purchase_conserves_tokens() {
        let mut router = ShardRouter::new(config(4));
        // Find two users on different shards.
        let users: Vec<String> = (0..32).map(|i| format!("trader-{i}")).collect();
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        register_all(&mut router, &refs);
        let creator = users
            .iter()
            .find(|u| router.sessions[*u].shard() != router.sessions[&users[0]].shard())
            .expect("32 users span at least two shards")
            .clone();
        let buyer = users[0].clone();
        router
            .submit(Op::Mint {
                user: creator.clone(),
                asset: 0,
                uri: "asset://0".into(),
                quality: 0.9,
            })
            .unwrap();
        router.execute_epoch();
        router.submit(Op::List { user: creator.clone(), asset: 0, price: 500 }).unwrap();
        router.execute_epoch();
        router.submit(Op::Buy { user: buyer.clone(), asset: 0 }).unwrap();
        router.execute_epoch();
        router.drain(8);
        let ledger = router.settlement_ledger();
        assert_eq!(ledger.applied, 1, "purchase settles: {:?}", ledger.entries);
        assert_eq!(ledger.escrow, 0);
        let report = router.conservation_report();
        assert!(report.conserved, "{report:?}");
        // Ownership actually moved.
        let loc = router.assets[&0];
        assert_eq!(router.shards[loc.shard].platform.assets().get(loc.local).unwrap().owner, buyer);
    }

    #[test]
    fn stalled_shard_trips_breaker_and_other_shards_keep_committing() {
        let mut router = ShardRouter::new(GatewayConfig {
            resilience: ResilienceConfig { enabled: false, ..ResilienceConfig::default() },
            ..config(2)
        });
        let users: Vec<String> = (0..16).map(|i| format!("user-{i}")).collect();
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        register_all(&mut router, &refs);
        // A rogue validator stalls shard 0's commits for a long window.
        router.install_shard_fault_plan(
            0,
            FaultPlan::new().schedule(
                0,
                10_000,
                FaultKind::RogueValidator { validator: "validator-0".into() },
            ),
        );
        let victim = users.iter().find(|u| router.sessions[*u].shard() == 0).unwrap().clone();
        let survivor = users.iter().find(|u| router.sessions[*u].shard() == 1).unwrap().clone();
        let peer = users
            .iter()
            .find(|u| router.sessions[*u].shard() == 0 && **u != victim)
            .unwrap()
            .clone();
        // Seed shard 0's mempool with one ledger record: the aborted
        // commit keeps it queued, so every later epoch re-attempts the
        // commit and fails again until the breaker opens (threshold 2).
        router
            .submit(Op::Endorse { user: victim.clone(), subject: peer })
            .unwrap();
        let mut tripped = false;
        for _ in 0..4 {
            let report = router.execute_epoch();
            if !report.commit_failures.is_empty() {
                tripped = matches!(router.shard_breaker_state(0), BreakerState::Open { .. });
                if tripped {
                    break;
                }
            }
        }
        assert!(tripped, "shard 0 breaker should open after repeated commit failures");
        // New ops for shard 0 are refused with the typed error...
        let err = router
            .submit(Op::TwinSync { user: victim, property: 0, delta: 1.0 })
            .unwrap_err();
        assert!(matches!(err, AdmissionError::ShardUnavailable { shard: 0 }));
        // ...while shard 1 still accepts and commits.
        router
            .submit(Op::TwinSync { user: survivor, property: 0, delta: 1.0 })
            .unwrap();
        let report = router.execute_epoch();
        assert!(report.skipped_shards.contains(&0));
        assert_eq!(report.committed, 1);
        let snap = router.telemetry_snapshot();
        assert!(snap.counters[names::gateway::REJECTED_SHARD_DOWN] >= 1);
        assert!(snap.counters[names::gateway::SHARD_EPOCHS_SKIPPED] >= 1);
    }

    #[test]
    fn single_shard_runs_everything_locally() {
        let mut router = ShardRouter::new(config(1));
        register_all(&mut router, &["solo-a", "solo-b"]);
        router
            .submit(Op::Mint {
                user: "solo-a".into(),
                asset: 0,
                uri: "asset://0".into(),
                quality: 0.8,
            })
            .unwrap();
        router.execute_epoch();
        router.submit(Op::List { user: "solo-a".into(), asset: 0, price: 100 }).unwrap();
        router.execute_epoch();
        router.submit(Op::Buy { user: "solo-b".into(), asset: 0 }).unwrap();
        router.execute_epoch();
        assert_eq!(router.settlement_ledger().enqueued, 0, "no cross-shard traffic on 1 shard");
        assert!(router.conservation_report().conserved);
    }
}
