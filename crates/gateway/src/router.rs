//! The shard router: consistent hashing, batched execution, and
//! cross-shard settlement.
//!
//! A [`ShardRouter`] owns N independent [`MetaversePlatform`] shards
//! and a consistent-hash ring (virtual nodes over FNV-1a) that pins
//! every user to a home shard, where their wallet, reputation account,
//! avatar, and firewall live. Admitted ops accumulate in session
//! mailboxes; at each **epoch boundary** ([`ShardRouter::execute_epoch`])
//! the router drains mailboxes into per-shard batches, executes each
//! batch in global admission order, advances and commits every shard's
//! ledger, and then settles cross-shard effects.
//!
//! Two effects can cross shards and both go through the settlement
//! queue so they conserve global quantities:
//!
//! * **purchases** — the buyer's funds are withdrawn on their home
//!   shard (escrow), shipped to the asset's shard, deposited, and the
//!   sale executed there; any failure refunds the escrow to the buyer's
//!   home shard, so total token supply never changes;
//! * **ratings** — endorsements and reports whose subject lives
//!   elsewhere apply on the subject's shard via the platform's
//!   module-guarded remote-rating entry point, requeueing while the
//!   target module is down.
//!
//! **Parallel epochs:** the per-shard phase fans out across scoped
//! worker threads ([`GatewayConfig::workers`]). A pre-routing step
//! resolves every op's target against the cross-shard directories
//! *before* fan-out, so each worker touches nothing but its own shard;
//! cross-shard effects come back as values and are merged in admission
//! `seq` order, never in thread-completion order, and the settlement
//! pass stays sequential. The same seed therefore produces
//! byte-identical settlement ledgers and conservation reports whether
//! an epoch ran on 1 worker or N.
//!
//! Each shard also gets a router-side [`CircuitBreaker`] in epoch time:
//! a shard whose ledger commits keep failing (e.g. a rogue validator
//! fault) trips the breaker, new ops for it are refused with
//! [`AdmissionError::ShardUnavailable`], its queued batch is held, and
//! settlement entries targeting it are requeued — while every other
//! shard keeps committing. Governance membership is deliberately
//! global (a registration joins every shard's DAOs): decision-making
//! spans the whole platform even though resources are sharded.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{mpsc, Arc};

use metaverse_assets::nft::NftId;
use metaverse_core::platform::MetaversePlatform;
use metaverse_core::resilience::ResilienceConfig;
use metaverse_core::CoreError;
use metaverse_ledger::audit::{DataCollectionEvent, LawfulBasis, SensorClass};
use metaverse_ledger::chain::ChainConfig;
use metaverse_ledger::tx::TxPayload;
use metaverse_moderation::{AppealVerdict, ModAction};
use metaverse_privacy::{PetPipeline, SensorSample};
use rand::SeedableRng;
use metaverse_replication::{ReplicationCluster, ReplicationConfig, ReplicationStats};
use metaverse_resilience::breaker::BreakerTransition;
use metaverse_resilience::{BreakerConfig, BreakerState, CircuitBreaker, FaultPlan};
use metaverse_resilience::HealthState;
use metaverse_telemetry::{
    export, names, Counter, EpochHeatSample, FlightRecorder, Gauge, HeatReport, Histogram,
    LatencyReport, RecorderStats, ShardHeatSample, SloInput, SloSnapshot, TelemetryHub,
    TelemetrySnapshot, TraceEvent, TraceQuery, TraceStage,
};
use metaverse_twins::sync::{SyncChannel, SyncConfig};
use metaverse_twins::twin::DigitalTwin;
use metaverse_world::geometry::Vec2;

use crate::error::AdmissionError;
use crate::op::{Op, OpView, StatsKind, StatsReply};
use crate::ops::{OpsPlane, OpsPlaneConfig};
use crate::session::{Session, SessionConfig};

/// Router construction knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Number of independent platform shards.
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Admission policy stamped onto every new session.
    pub session: SessionConfig,
    /// Platform ticks advanced on every shard per epoch.
    pub epoch_ticks: u64,
    /// Router-side per-shard breaker tuning (in epoch time).
    pub breaker: BreakerConfig,
    /// Resilience config handed to each shard platform.
    pub resilience: ResilienceConfig,
    /// Ledger tuning handed to each shard platform.
    pub chain_config: ChainConfig,
    /// Whether the gateway (and its shards) record telemetry.
    pub telemetry: bool,
    /// Tokens granted to each successfully registered user.
    pub initial_grant: u64,
    /// Settlement attempts against a down module before giving up.
    pub max_settlement_requeues: u32,
    /// Worker threads for the per-shard epoch phase: `0` sizes to the
    /// host (`std::thread::available_parallelism`, capped at the shard
    /// count), `1` runs the shards inline on the caller's thread, and
    /// any other value is capped at the shard count. Results are
    /// identical at every setting; only wall-clock changes.
    pub workers: usize,
    /// Flight-recorder capacity in trace events; `0` (the default)
    /// disables causal tracing entirely — no ring storage, no event
    /// construction, one branch on the hot path. When enabled, the
    /// router ring holds this many merged events and each shard gets a
    /// same-sized staging ring (drained into the router every epoch).
    pub trace_capacity: usize,
    /// When set, every shard platform gets a quorum-commit replication
    /// cluster over its sealed chain (`None`, the default, runs the
    /// chains unreplicated). Replication is a pure observer of the
    /// commit path: enabling it — or faulting validators within the
    /// f = 1 tolerance — changes no audit, report, or op-trace byte.
    pub replication: Option<ReplicationConfig>,
    /// Global differential-privacy budget for sensor-event ingestion,
    /// in micro-epsilon (1e-6 ε). The router debits this ledger in
    /// admission-`seq` order *before* fan-out, so the spend sequence —
    /// and which events are refused once the budget runs dry — is
    /// byte-identical at every shard and worker count.
    pub dp_budget_micro: u64,
    /// Micro-epsilon charged per admitted `SensorEvent`. An event whose
    /// charge would overdraw [`GatewayConfig::dp_budget_micro`] fails
    /// closed: it is refused (traced as `budget_refused`), never
    /// reaching a shard's PET pipeline.
    pub dp_epsilon_per_event_micro: u64,
    /// Base seed for PET-pipeline noise. Each sensor event derives its
    /// own stream as `pet_noise_seed ^ seq`, so the noise a given
    /// admission draws never depends on shard or worker count.
    pub pet_noise_seed: u64,
    /// Stream the sequential plan loop (pre-route + DP debits) to the
    /// shard workers as each op is planned, instead of planning the
    /// whole epoch before fan-out. The plan loop then overlaps shard
    /// execution — the Amdahl wall E22 measured — while every
    /// router-side decision (DP spend order, directory reads, merge
    /// items) still happens sequentially in admission-`seq` order on
    /// the router thread, so audits and traces are byte-identical to
    /// the batched path. Off by default; has no effect below 2 shards
    /// or 2 workers (there is nothing to overlap).
    pub pipeline: bool,
    /// Opt-in ops plane: per-shard heat accounting, stage-latency
    /// attribution, and SLO evaluation folded at every epoch barrier
    /// (see [`crate::ops`]). `None` (the default) disables the plane
    /// entirely; the hot path then pays one `Option` check per epoch.
    pub ops_plane: Option<OpsPlaneConfig>,
    /// Construction-path marker. Naming this field (i.e. writing a full
    /// `GatewayConfig { .. }` literal) is deprecated: the field set
    /// grows with every subsystem, and each growth breaks every bare
    /// literal. Use [`GatewayConfig::builder`]; literals that end in
    /// `..GatewayConfig::default()` keep compiling for one release.
    #[doc(hidden)]
    #[deprecated(
        since = "0.1.0",
        note = "construct via GatewayConfig::builder() instead of a struct literal"
    )]
    pub struct_literal: (),
}

impl Default for GatewayConfig {
    #[allow(deprecated)]
    fn default() -> Self {
        GatewayConfig {
            shards: 4,
            vnodes: 16,
            session: SessionConfig::default(),
            epoch_ticks: 1,
            breaker: BreakerConfig::default(),
            resilience: ResilienceConfig::default(),
            // Full-depth key trees (2^10 blocks per validator): a
            // gateway shard seals blocks every epoch for the whole run,
            // so the shallow trees the experiments use for fast setup
            // would exhaust mid-workload and latch the breaker open.
            chain_config: ChainConfig::default(),
            telemetry: true,
            initial_grant: 10_000,
            max_settlement_requeues: 3,
            workers: 0,
            trace_capacity: 0,
            replication: None,
            dp_budget_micro: 1_000_000_000,
            dp_epsilon_per_event_micro: 1_000,
            pet_noise_seed: 0,
            pipeline: false,
            ops_plane: None,
            struct_literal: (),
        }
    }
}

/// The ring's dependency-free hash: FNV-1a with a murmur-style
/// finalizer. Bare FNV-1a leaves the high bits dominated by the shared
/// key prefix (`shard-…`, `user-…`), which collapses the ring into one
/// arc per shard; the avalanche pass restores uniform placement.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// The consistent-hash ring as a sorted point array: routing a user is
/// one `partition_point` binary search over a flat `Vec` instead of a
/// `BTreeMap::range` walk — the ring is built once at construction and
/// never mutated, so the admission hot path pays no tree overhead.
#[derive(Debug, Clone)]
struct Ring {
    points: Vec<(u64, usize)>,
}

impl Ring {
    fn build(shards: usize, vnodes: usize) -> Self {
        // Built through a BTreeMap so vnode hash collisions keep the
        // exact overwrite semantics (and sorted order) the map-based
        // ring had.
        let mut map = BTreeMap::new();
        for shard in 0..shards {
            for vnode in 0..vnodes.max(1) {
                map.insert(ring_hash(format!("shard-{shard}-vnode-{vnode}").as_bytes()), shard);
            }
        }
        Ring { points: map.into_iter().collect() }
    }

    /// First point at or clockwise of the user's hash, wrapping to the
    /// start. Total: an (unreachable) empty ring routes to shard 0.
    fn shard_for(&self, user: &str) -> usize {
        let h = ring_hash(user.as_bytes());
        let i = self.points.partition_point(|&(point, _)| point < h);
        match self.points.get(i).or_else(|| self.points.first()) {
            Some(&(_, shard)) => shard,
            None => 0,
        }
    }
}

/// The session directory: user names interned to dense `u32` ids with
/// the sessions themselves in a flat `Vec`. Admission does one hash
/// lookup (plus one `Vec` index) instead of a `BTreeMap` string
/// comparison walk, and the epoch drain iterates the `Vec` directly.
/// The interner map is *lookup-only* — nothing ever iterates it — so
/// `HashMap`'s nondeterministic iteration order can never reach an
/// audit, trace, or ledger byte.
#[derive(Debug, Default)]
struct SessionTable {
    ids: HashMap<String, u32>,
    sessions: Vec<Session>,
}

impl SessionTable {
    fn len(&self) -> usize {
        self.sessions.len()
    }

    fn contains(&self, user: &str) -> bool {
        self.ids.contains_key(user)
    }

    fn id_of(&self, user: &str) -> Option<u32> {
        self.ids.get(user).copied()
    }

    fn get(&self, user: &str) -> Option<&Session> {
        self.ids.get(user).map(|&id| &self.sessions[id as usize])
    }

    fn by_id(&self, id: u32) -> &Session {
        &self.sessions[id as usize]
    }

    fn by_id_mut(&mut self, id: u32) -> &mut Session {
        &mut self.sessions[id as usize]
    }

    /// Interns the session's user and appends it; ids are dense
    /// registration-order indexes.
    fn insert(&mut self, session: Session) -> u32 {
        let id = self.sessions.len() as u32;
        self.ids.insert(session.user().to_string(), id);
        self.sessions.push(session);
        id
    }

    fn values(&self) -> impl Iterator<Item = &Session> {
        self.sessions.iter()
    }

    fn values_mut(&mut self) -> impl Iterator<Item = &mut Session> {
        self.sessions.iter_mut()
    }
}

impl std::ops::Index<&str> for SessionTable {
    type Output = Session;

    fn index(&self, user: &str) -> &Session {
        self.get(user).expect("unknown user")
    }
}

/// A directory keyed by `u64` ids that are dense in practice: the
/// workload layers allocate global asset/proposal ids in creation
/// order, so lookups on the per-op hot path become one bounds check
/// and a `Vec` index. A `BTreeMap` spill keeps the API total over
/// arbitrary (sparse) ids. Invariant: every spill key is strictly
/// greater than `dense.len()`, so `iter` — dense index order, then
/// spill key order — is globally key-ordered, exactly like the
/// `BTreeMap` these directories replaced.
#[derive(Debug, Clone, Default)]
struct DenseDir<V> {
    dense: Vec<Option<V>>,
    dense_len: usize,
    spill: BTreeMap<u64, V>,
}

impl<V> DenseDir<V> {
    fn new() -> Self {
        DenseDir { dense: Vec::new(), dense_len: 0, spill: BTreeMap::new() }
    }

    fn len(&self) -> usize {
        self.dense_len + self.spill.len()
    }

    fn get(&self, id: u64) -> Option<&V> {
        match usize::try_from(id) {
            Ok(i) if i < self.dense.len() => self.dense[i].as_ref(),
            _ => self.spill.get(&id),
        }
    }

    fn insert(&mut self, id: u64, value: V) {
        match usize::try_from(id) {
            Ok(i) if i < self.dense.len() => {
                if self.dense[i].replace(value).is_none() {
                    self.dense_len += 1;
                }
            }
            Ok(i) if i == self.dense.len() => {
                self.dense.push(Some(value));
                self.dense_len += 1;
                self.absorb();
            }
            _ => {
                self.spill.insert(id, value);
            }
        }
    }

    /// Migrates spill entries that became contiguous with the dense
    /// prefix, restoring the key-ordering invariant of `iter`.
    fn absorb(&mut self) {
        while let Some(value) = self.spill.remove(&(self.dense.len() as u64)) {
            self.dense.push(Some(value));
            self.dense_len += 1;
        }
    }

    fn values(&self) -> impl Iterator<Item = &V> {
        self.dense.iter().flatten().chain(self.spill.values())
    }

    fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.dense
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (i as u64, v)))
            .chain(self.spill.iter().map(|(k, v)| (*k, v)))
    }
}

impl<V> std::ops::Index<&u64> for DenseDir<V> {
    type Output = V;

    fn index(&self, id: &u64) -> &V {
        self.get(*id).expect("unknown id")
    }
}

/// A proposal directory entry: owning shard, governance scope, and the
/// shard-local proposal id. The scope is `Arc<str>` so the per-vote
/// clone on the plan hot path is a refcount bump, not a heap copy.
type ProposalEntry = (usize, Arc<str>, u64);

/// Where a globally-numbered asset actually lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AssetLocation {
    shard: usize,
    local: NftId,
}

/// A cross-shard effect waiting in the settlement queue.
#[derive(Debug, Clone, PartialEq)]
pub enum SettlementEffect {
    /// Escrowed funds buying an asset on another shard.
    Purchase {
        /// Buying account.
        buyer: String,
        /// Global asset id.
        asset: u64,
        /// Buyer's home shard (refund target).
        from_shard: usize,
        /// Asset's shard (execution target).
        to_shard: usize,
        /// Escrowed price.
        price: u64,
    },
    /// A rating whose subject lives on another shard.
    Rating {
        /// Rated account.
        subject: String,
        /// Subject's home shard (execution target).
        to_shard: usize,
        /// Endorse (`true`) or report (`false`).
        positive: bool,
    },
}

/// Terminal fate of a settlement entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettlementOutcome {
    /// Applied on the target shard.
    Applied,
    /// Purchase failed; escrow returned to the buyer's home shard.
    Refunded,
    /// Rating abandoned (target module stayed down past the requeue
    /// budget, or the subject was unknown).
    Dropped,
}

/// One settled entry, in settlement order.
#[derive(Debug, Clone, PartialEq)]
pub struct SettledEntry {
    /// What crossed shards.
    pub effect: SettlementEffect,
    /// How it ended.
    pub outcome: SettlementOutcome,
    /// Epoch the entry reached its terminal state.
    pub epoch: u64,
    /// Times it was requeued before settling.
    pub requeues: u32,
}

/// The cross-shard settlement ledger: every terminal entry plus the
/// escrow and supply accounting that [`ConservationReport`] audits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SettlementLedger {
    /// Terminal entries, in settlement order.
    pub entries: Vec<SettledEntry>,
    /// Tokens minted by registration grants.
    pub tokens_minted: u64,
    /// Purchase funds currently in flight between shards.
    pub escrow: u64,
    /// Entries ever enqueued.
    pub enqueued: u64,
    /// Entries applied.
    pub applied: u64,
    /// Entries refunded or dropped.
    pub rejected: u64,
}

/// Shard-count-invariant audit of global quantities. For one seed this
/// report is identical whether the same op stream ran on 1 shard or 8 —
/// the determinism gate CI enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservationReport {
    /// Registered users across all shards.
    pub users: u64,
    /// Tokens minted by registration grants.
    pub tokens_minted: u64,
    /// Tokens sitting in shard wallets.
    pub tokens_on_shards: u64,
    /// Tokens in settlement escrow.
    pub tokens_in_flight: u64,
    /// Assets successfully minted.
    pub assets_minted: u64,
    /// Minted assets resolvable to exactly one live owner.
    pub assets_single_owner: u64,
    /// Whether supply and ownership balance exactly.
    pub conserved: bool,
}

/// Router-side accounting for the global differential-privacy budget:
/// debited sequentially at pre-route time, reconciled at the merge
/// barrier when a shard worker reports the event released.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DpLedger {
    spent_micro: u64,
    reconciled_micro: u64,
    admitted: u64,
    refused: u64,
}

/// Shard-count-invariant audit of the global epsilon budget — the DP
/// counterpart of [`ConservationReport`], compared byte-for-byte across
/// shard counts by the determinism gates.
///
/// `spent_micro` is debited in admission-`seq` order before fan-out;
/// `reconciled_micro` accumulates at the merge barrier as workers
/// report released events. In a fault-free run the two are equal. When
/// a privacy module is faulted mid-epoch an admitted event can fail on
/// its shard after its charge was taken; the charge is deliberately
/// *not* refunded (fail closed — the conservative direction for a
/// privacy budget), so `spent_micro >= reconciled_micro` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpBudgetReport {
    /// Configured global budget, in micro-epsilon.
    pub budget_micro: u64,
    /// Micro-epsilon debited for admitted sensor events.
    pub spent_micro: u64,
    /// Micro-epsilon confirmed released by shard workers.
    pub reconciled_micro: u64,
    /// Sensor events that executed on a shard.
    pub admitted_events: u64,
    /// Sensor events refused because the budget was exhausted.
    pub refused_events: u64,
    /// `spent_micro <= budget_micro` — the ledger never over-spends.
    pub within_budget: bool,
    /// `spent_micro == reconciled_micro` — every debit reached a shard.
    pub reconciled: bool,
}

/// What one epoch did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: u64,
    /// Ops that executed successfully.
    pub committed: u64,
    /// Ops that reached a shard and failed.
    pub failed: u64,
    /// Settlement entries applied this epoch.
    pub settled: u64,
    /// Settlement entries requeued this epoch.
    pub requeued: u64,
    /// Shards skipped because their breaker was open.
    pub skipped_shards: Vec<usize>,
    /// Shards whose ledger commit failed this epoch.
    pub commit_failures: Vec<usize>,
}

/// Gateway instruments, registered under [`names::gateway`].
struct GatewayMetrics {
    ops_submitted: Counter,
    ops_accepted: Counter,
    ops_committed: Counter,
    ops_failed: Counter,
    rejected_rate_limited: Counter,
    rejected_mailbox_full: Counter,
    rejected_shard_down: Counter,
    rejected_unknown_user: Counter,
    rejected_duplicate_register: Counter,
    settlement_enqueued: Counter,
    settlement_applied: Counter,
    settlement_rejected: Counter,
    settlement_requeued: Counter,
    settlement_depth: Gauge,
    epochs: Counter,
    sessions: Gauge,
    batch_size: Histogram,
    shard_commit_failures: Counter,
    shard_epochs_skipped: Counter,
    dp_spent_micro: Counter,
    dp_admitted: Counter,
    dp_refused: Counter,
    governance_delegations: Counter,
    governance_quadratic_votes: Counter,
    governance_appeals: Counter,
    shard_batch_ns: Vec<Histogram>,
    shard_queue_depth: Vec<Gauge>,
    trace_recorded: Counter,
    trace_dropped: Counter,
    trace_buffer: Gauge,
    trace_capacity: Gauge,
    heat_epochs_folded: Counter,
    heat_imbalance_milli: Gauge,
    slo_trips: Counter,
    slo_recoveries: Counter,
    slo_tripped: Gauge,
    stats_queries: Counter,
}

impl GatewayMetrics {
    fn new(hub: &TelemetryHub, shards: usize) -> Self {
        use names::gateway as g;
        GatewayMetrics {
            ops_submitted: hub.counter(g::OPS_SUBMITTED),
            ops_accepted: hub.counter(g::OPS_ACCEPTED),
            ops_committed: hub.counter(g::OPS_COMMITTED),
            ops_failed: hub.counter(g::OPS_FAILED),
            rejected_rate_limited: hub.counter(g::REJECTED_RATE_LIMITED),
            rejected_mailbox_full: hub.counter(g::REJECTED_MAILBOX_FULL),
            rejected_shard_down: hub.counter(g::REJECTED_SHARD_DOWN),
            rejected_unknown_user: hub.counter(g::REJECTED_UNKNOWN_USER),
            rejected_duplicate_register: hub.counter(g::REJECTED_DUPLICATE_REGISTER),
            settlement_enqueued: hub.counter(g::SETTLEMENT_ENQUEUED),
            settlement_applied: hub.counter(g::SETTLEMENT_APPLIED),
            settlement_rejected: hub.counter(g::SETTLEMENT_REJECTED),
            settlement_requeued: hub.counter(g::SETTLEMENT_REQUEUED),
            settlement_depth: hub.gauge(g::SETTLEMENT_DEPTH),
            epochs: hub.counter(g::EPOCHS),
            sessions: hub.gauge(g::SESSIONS),
            batch_size: hub.histogram(g::BATCH_SIZE),
            shard_commit_failures: hub.counter(g::SHARD_COMMIT_FAILURES),
            shard_epochs_skipped: hub.counter(g::SHARD_EPOCHS_SKIPPED),
            dp_spent_micro: hub.counter(g::DP_SPENT_MICRO),
            dp_admitted: hub.counter(g::DP_ADMITTED),
            dp_refused: hub.counter(g::DP_REFUSED),
            governance_delegations: hub.counter(g::GOVERNANCE_DELEGATIONS),
            governance_quadratic_votes: hub.counter(g::GOVERNANCE_QUADRATIC_VOTES),
            governance_appeals: hub.counter(g::GOVERNANCE_APPEALS),
            shard_batch_ns: (0..shards).map(|i| hub.histogram(&g::shard_batch_ns(i))).collect(),
            shard_queue_depth: (0..shards).map(|i| hub.gauge(&g::shard_queue_depth(i))).collect(),
            trace_recorded: hub.counter(names::TRACE_EVENTS_RECORDED),
            trace_dropped: hub.counter(names::TRACE_EVENTS_DROPPED),
            trace_buffer: hub.gauge(names::TRACE_BUFFER_LEN),
            trace_capacity: hub.gauge(names::TRACE_BUFFER_CAPACITY),
            heat_epochs_folded: hub.counter(names::ops_plane::HEAT_EPOCHS_FOLDED),
            heat_imbalance_milli: hub.gauge(names::ops_plane::HEAT_IMBALANCE_MILLI),
            slo_trips: hub.counter(names::ops_plane::SLO_TRIPS),
            slo_recoveries: hub.counter(names::ops_plane::SLO_RECOVERIES),
            slo_tripped: hub.gauge(names::ops_plane::SLO_TRIPPED),
            stats_queries: hub.counter(names::ops_plane::STATS_QUERIES),
        }
    }
}

/// One shard: an independent platform plus router-side state. The
/// `recorder` is the shard's trace staging ring: written only by the
/// shard's worker (through `&mut`, no locks), drained into the router
/// ring at the merge barrier in admission-`seq` order.
struct Shard {
    platform: MetaversePlatform,
    queue: VecDeque<(u64, Op)>,
    breaker: CircuitBreaker,
    twin: DigitalTwin,
    channel: SyncChannel,
    recorder: FlightRecorder,
    /// PET stage fronting sensor ingestion: every admitted
    /// `SensorEvent` passes through noise + quantisation before its
    /// collection event is recorded. Noise draws from a per-event
    /// stream (`pet_noise_seed ^ seq`), never from shard-local state.
    pet: PetPipeline,
}

// The epoch fan-out moves each `&mut Shard` into a scoped worker thread
// and shares one `&GatewayMetrics` across all of them; these bounds are
// the compile-time contract that keeps that sound. (`MetaversePlatform:
// Send` is asserted in `metaverse_core` next to the type itself.)
const _: () = {
    const fn require_send<T: Send>() {}
    const fn require_sync<T: Sync>() {}
    require_send::<Shard>();
    require_sync::<GatewayMetrics>();
};

/// An in-flight settlement entry, tagged with the admission seq of the
/// op that produced it so settlement traces join the op's causal chain.
#[derive(Debug, Clone)]
struct PendingSettlement {
    seq: u64,
    effect: SettlementEffect,
    requeues: u32,
}

/// What to look for in the target shard's chain when resolving a
/// settled entry to its committing block.
#[derive(Debug, Clone, PartialEq)]
enum ProvenanceKey {
    /// Match the `AssetTransfer` record of an applied purchase.
    Purchase { asset_local: NftId, buyer: String, price: u64 },
    /// Match the `ReputationDelta` record of an applied remote rating.
    Rating { subject: String },
}

impl ProvenanceKey {
    /// Does this ledger record carry the settlement this key describes?
    fn matches(&self, payload: &TxPayload) -> bool {
        match (self, payload) {
            (
                ProvenanceKey::Purchase { asset_local, buyer, price },
                TxPayload::AssetTransfer { asset_id, to, price: tx_price, .. },
            ) => asset_id == asset_local && to == buyer && tx_price == price,
            (ProvenanceKey::Rating { subject }, TxPayload::ReputationDelta { subject: s, .. }) => {
                s == subject
            }
            _ => false,
        }
    }
}

/// An unresolved provenance row: where an applied settlement's ledger
/// records will seal (the target shard's chain, above `floor`).
#[derive(Debug, Clone, PartialEq)]
struct ProvenanceRow {
    seq: u64,
    shard: usize,
    epoch: u64,
    floor: u64,
    key: ProvenanceKey,
}

/// One applied cross-shard settlement linked to the ledger block that
/// committed its records — the navigable audit trail
/// [`ShardRouter::provenance_report`] produces.
///
/// Settlement runs *after* the epoch's shard commits, so an applied
/// entry's records seal at the target shard's **next** commit: `height`
/// and `block` stay `None` until that commit happens (drive one more
/// epoch to resolve them).
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// Admission seq of the op that produced the settlement entry.
    pub seq: u64,
    /// Target shard whose chain holds the entry's ledger records.
    pub shard: usize,
    /// Epoch the entry applied.
    pub epoch: u64,
    /// Target chain height when the entry applied (records seal above
    /// this floor).
    pub floor_height: u64,
    /// Height of the committing block, once sealed.
    pub height: Option<u64>,
    /// Header digest of the committing block, once sealed.
    pub block: Option<[u8; 32]>,
}

/// What admission needs to know about an op *before* committing to
/// materialise it. Implemented by the owned [`Op`] (a no-op
/// materialisation) and by the borrowed wire [`OpView`] (which only
/// allocates its owned `Op` once the mailbox has accepted the slot),
/// so both front doors share one admission path byte-for-byte.
trait AdmitSource {
    fn user(&self) -> &str;
    fn label(&self) -> &'static str;
    fn is_register(&self) -> bool;
    fn into_op(self) -> Op;
}

impl AdmitSource for Op {
    fn user(&self) -> &str {
        Op::user(self)
    }

    fn label(&self) -> &'static str {
        Op::label(self)
    }

    fn is_register(&self) -> bool {
        matches!(self, Op::Register { .. })
    }

    fn into_op(self) -> Op {
        self
    }
}

impl AdmitSource for OpView<'_> {
    fn user(&self) -> &str {
        OpView::user(self)
    }

    fn label(&self) -> &'static str {
        OpView::label(self)
    }

    fn is_register(&self) -> bool {
        matches!(self, OpView::Register { .. })
    }

    fn into_op(self) -> Op {
        self.into_owned()
    }
}

/// The sharded session gateway.
pub struct ShardRouter {
    config: GatewayConfig,
    hub: TelemetryHub,
    metrics: GatewayMetrics,
    ring: Ring,
    shards: Vec<Shard>,
    sessions: SessionTable,
    assets: DenseDir<AssetLocation>,
    proposals: DenseDir<ProposalEntry>,
    settlement: VecDeque<PendingSettlement>,
    ledger: SettlementLedger,
    dp: DpLedger,
    epoch: u64,
    now: u64,
    seq: u64,
    worker_threads: usize,
    /// Router-level flight recorder: the merged, admission-`seq`-ordered
    /// causal event stream (disabled when `trace_capacity` is 0).
    recorder: FlightRecorder,
    /// The merged replication event stream (proposals, acks, quorum
    /// commits, elections), kept *separate* from the op-trace ring so
    /// the op stream stays byte-identical whether or not replication is
    /// installed or faulted. Disabled unless both `trace_capacity > 0`
    /// and `replication` is configured.
    replication_recorder: FlightRecorder,
    /// Applied settlements awaiting block resolution (tracing only).
    provenance: Vec<ProvenanceRow>,
    /// Deferred-op executions awaiting their shard's next commit, so
    /// their `committed_in_epoch` event names the block that actually
    /// sealed their records.
    deferred_commits: Vec<(u64, usize)>,
    /// Totals already flushed into the trace counters (instrument
    /// counters are monotone; recorder stats are lifetime totals).
    trace_counted: (u64, u64),
    /// Live ops-plane state (heat window, stage-latency profiler, SLO
    /// engine); `None` unless `config.ops_plane` is set. All folds
    /// happen at the epoch barrier on the router thread.
    ops: Option<OpsPlane>,
}

impl ShardRouter {
    /// Builds a router with `config.shards` fresh platforms.
    pub fn new(config: GatewayConfig) -> Self {
        assert!(config.shards > 0, "gateway needs at least one shard");
        let hub = if config.telemetry { TelemetryHub::new() } else { TelemetryHub::disabled() };
        let metrics = GatewayMetrics::new(&hub, config.shards);
        let ring = Ring::build(config.shards, config.vnodes);
        let shards = (0..config.shards)
            .map(|i| {
                let mut platform = MetaversePlatform::builder()
                    .chain_config(config.chain_config.clone())
                    .validators([format!("validator-{i}")])
                    .resilience(config.resilience.clone())
                    .telemetry(config.telemetry)
                    .build();
                if let Some(replication) = &config.replication {
                    let mut cluster = ReplicationCluster::new(i as u32, *replication);
                    if config.trace_capacity > 0 {
                        cluster.enable_tracing(config.trace_capacity);
                    }
                    platform.install_replication(cluster);
                }
                Shard {
                    platform,
                    queue: VecDeque::new(),
                    breaker: CircuitBreaker::new(config.breaker),
                    recorder: FlightRecorder::new(config.trace_capacity),
                    pet: PetPipeline::new().noise(0.05).quantize(0.01),
                    twin: DigitalTwin::new(i as u64, format!("shard-{i}"), "gateway", 8),
                    channel: SyncChannel::new(SyncConfig {
                        loss_rate: 0.0,
                        dup_rate: 0.0,
                        reconcile_interval: 25,
                        seed: i as u64,
                        retry: None,
                    }),
                }
            })
            .collect();
        let worker_threads = match config.workers {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(config.shards),
            n => n.min(config.shards),
        }
        .max(1);
        let recorder = FlightRecorder::new(config.trace_capacity);
        let replication_recorder = if config.replication.is_some() {
            FlightRecorder::new(config.trace_capacity)
        } else {
            FlightRecorder::disabled()
        };
        let ops = config.ops_plane.as_ref().map(OpsPlane::new);
        metrics.trace_capacity.set(config.trace_capacity as i64);
        ShardRouter {
            config,
            hub,
            metrics,
            ring,
            shards,
            sessions: SessionTable::default(),
            assets: DenseDir::new(),
            proposals: DenseDir::new(),
            settlement: VecDeque::new(),
            ledger: SettlementLedger::default(),
            dp: DpLedger::default(),
            epoch: 0,
            now: 0,
            seq: 0,
            worker_threads,
            recorder,
            replication_recorder,
            provenance: Vec::new(),
            deferred_commits: Vec::new(),
            trace_counted: (0, 0),
            ops,
        }
    }

    /// The home shard the ring assigns to `user`. Total: construction
    /// asserts at least one shard and seeds at least one vnode per
    /// shard, and the unreachable empty-ring arm routes to shard 0
    /// rather than panicking in the admission hot path.
    pub fn home_shard(&self, user: &str) -> usize {
        self.ring.shard_for(user)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Connected sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The router's logical clock (admission tick time). Advances by
    /// the same clamped delta as every shard platform's tick, so the
    /// two stay in lockstep even at `epoch_ticks = 0` and across
    /// breaker-skipped epochs.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Worker threads the per-shard epoch phase fans out across
    /// (resolved from [`GatewayConfig::workers`] at construction).
    pub fn worker_threads(&self) -> usize {
        self.worker_threads
    }

    /// The gateway's own telemetry hub (distinct from each shard's).
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.hub
    }

    /// Snapshot of the gateway's instruments.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.hub.snapshot()
    }

    /// Read access to one shard's platform.
    pub fn shard_platform(&self, shard: usize) -> &MetaversePlatform {
        &self.shards[shard].platform
    }

    /// Router-side breaker state for one shard.
    pub fn shard_breaker_state(&self, shard: usize) -> BreakerState {
        self.shards[shard].breaker.state()
    }

    /// The settlement ledger (terminal entries + supply accounting).
    pub fn settlement_ledger(&self) -> &SettlementLedger {
        &self.ledger
    }

    /// Audits the global epsilon budget; see [`DpBudgetReport`]. Like
    /// [`Self::conservation_report`], identical for one seed at every
    /// shard and worker count.
    pub fn dp_budget_report(&self) -> DpBudgetReport {
        DpBudgetReport {
            budget_micro: self.config.dp_budget_micro,
            spent_micro: self.dp.spent_micro,
            reconciled_micro: self.dp.reconciled_micro,
            admitted_events: self.dp.admitted,
            refused_events: self.dp.refused,
            within_budget: self.dp.spent_micro <= self.config.dp_budget_micro,
            reconciled: self.dp.spent_micro == self.dp.reconciled_micro,
        }
    }

    /// Query view over the merged trace ring (empty when tracing is
    /// disabled, i.e. `trace_capacity == 0`).
    pub fn trace_query(&mut self) -> TraceQuery<'_> {
        self.recorder.query()
    }

    /// The complete causal chain recorded for one admission sequence
    /// number, oldest stage first — admission through refusal, or
    /// through execution, settlement, and ledger commit.
    pub fn trace_of(&mut self, seq: u64) -> Vec<TraceEvent> {
        self.trace_query().trace_of(seq).into_iter().cloned().collect()
    }

    /// Every merged trace event serialized as JSON Lines (one event per
    /// line, in admission-seq order within each epoch). Byte-identical
    /// for identical workloads regardless of worker-thread count.
    pub fn trace_jsonl(&mut self) -> String {
        export::trace_jsonl(self.recorder.query().events().iter())
    }

    /// Lifetime recorded/dropped counts and current occupancy of the
    /// router-level flight recorder.
    pub fn trace_stats(&self) -> RecorderStats {
        self.recorder.stats()
    }

    /// The gateway's telemetry snapshot rendered in Prometheus text
    /// exposition format.
    pub fn prometheus(&self) -> String {
        export::prometheus(&self.hub.snapshot())
    }

    /// Whether the ops plane is installed (`config.ops_plane` was set).
    pub fn ops_plane_enabled(&self) -> bool {
        self.ops.is_some()
    }

    /// The sliding tick-window heat report: global and per-shard load,
    /// refusal classes, escrow pressure, DP burn, and the imbalance /
    /// skew signal ROADMAP item 3's split/merge policy keys off.
    /// `None` when the ops plane is off. Byte-identical JSON for
    /// identical workloads at any shard or worker count.
    pub fn heat_report(&self) -> Option<HeatReport> {
        self.ops.as_ref().map(|ops| ops.window.report())
    }

    /// Stage-latency attribution folded from the flight recorder's
    /// trace events: per-stage tick budgets, log₂ histograms, and the
    /// slowest-ops exemplar table. `None` when the ops plane is off.
    /// Empty (but present) until `trace_capacity > 0` feeds the
    /// profiler events to fold.
    pub fn latency_report(&self) -> Option<LatencyReport> {
        self.ops.as_ref().map(|ops| ops.profiler.report())
    }

    /// Current SLO state: every objective with its last measured value,
    /// burn rate, tripped flag, and lifetime trip/recovery counts.
    /// `None` when the ops plane is off.
    pub fn slo_snapshot(&self) -> Option<SloSnapshot> {
        self.ops.as_ref().map(|ops| ops.slo.snapshot())
    }

    /// Serves one live-stats query, bumping the
    /// `ops_plane.stats.queries` counter. The reply is stamped with the
    /// current epoch and logical tick; the body depends on `kind`:
    /// Prometheus text exposition, heat-report JSON, SLO-snapshot JSON,
    /// or latency-report JSON. Heat, SLO, and latency bodies are
    /// deterministic functions of the admitted stream; the Prometheus
    /// body includes wall-clock histograms and is reporting-only.
    pub fn stats_reply(&self, kind: StatsKind) -> StatsReply {
        self.metrics.stats_queries.incr();
        let body = match kind {
            StatsKind::Prometheus => self.prometheus(),
            StatsKind::Heat => self
                .heat_report()
                .map(|r| r.to_json())
                .unwrap_or_else(|| "{\"ops_plane\":\"off\"}".into()),
            StatsKind::Slo => self
                .slo_snapshot()
                .map(|s| s.to_json())
                .unwrap_or_else(|| "{\"ops_plane\":\"off\"}".into()),
            StatsKind::Latency => self
                .latency_report()
                .map(|r| r.to_json())
                .unwrap_or_else(|| "{\"ops_plane\":\"off\"}".into()),
        };
        StatsReply { kind, epoch: self.epoch, tick: self.now, body: body.into_bytes() }
    }

    /// Provenance of every *applied* cross-shard settlement: which
    /// ledger block on the target shard carries the settlement's
    /// records. `height`/`block` stay `None` until the target shard's
    /// next successful commit seals them (drive one more epoch).
    ///
    /// Rows only accumulate while tracing is enabled
    /// (`trace_capacity > 0`), keeping the disabled path free.
    pub fn provenance_report(&self) -> Vec<ProvenanceRecord> {
        self.provenance
            .iter()
            .map(|row| {
                let chain = self.shards[row.shard].platform.chain();
                let mut height = None;
                let mut block = None;
                'scan: for b in chain.blocks() {
                    if b.header.height <= row.floor {
                        continue;
                    }
                    for tx in &b.transactions {
                        if row.key.matches(&tx.payload) {
                            height = Some(b.header.height);
                            block = Some(b.id().0);
                            break 'scan;
                        }
                    }
                }
                ProvenanceRecord {
                    seq: row.seq,
                    shard: row.shard,
                    epoch: row.epoch,
                    floor_height: row.floor,
                    height,
                    block,
                }
            })
            .collect()
    }

    /// Installs a fault schedule on one shard's platform (the E21 /
    /// test hook for stalling a single shard).
    pub fn install_shard_fault_plan(&mut self, shard: usize, plan: FaultPlan) {
        self.shards[shard].platform.install_fault_plan(plan);
    }

    /// Installs a validator-scoped fault schedule (crashes, partitions,
    /// ack loss) on one shard's replication cluster. No-op when
    /// replication is not configured. Fault windows are in platform
    /// ticks; validator ids follow the cluster's `s{shard}-v{index}`
    /// naming.
    pub fn install_validator_fault_plan(&mut self, shard: usize, plan: FaultPlan) {
        self.shards[shard].platform.install_validator_fault_plan(plan);
    }

    /// Replication stats summed over every shard's cluster; `None`
    /// when the gateway runs unreplicated.
    pub fn replication_stats(&self) -> Option<ReplicationStats> {
        let mut total: Option<ReplicationStats> = None;
        for shard in &self.shards {
            if let Some(stats) = shard.platform.replication_stats() {
                let t = total.get_or_insert_with(ReplicationStats::default);
                t.blocks_proposed += stats.blocks_proposed;
                t.blocks_committed += stats.blocks_committed;
                t.acks_delivered += stats.acks_delivered;
                t.acks_lost += stats.acks_lost;
                t.leader_elections += stats.leader_elections;
                t.catch_ups += stats.catch_ups;
            }
        }
        total
    }

    /// One shard's replication cluster, when installed.
    pub fn shard_replication(&self, shard: usize) -> Option<&ReplicationCluster> {
        self.shards[shard].platform.replication()
    }

    /// Query view over the merged replication event stream (empty
    /// unless both tracing and replication are enabled).
    pub fn replication_query(&mut self) -> TraceQuery<'_> {
        self.replication_recorder.query()
    }

    /// The merged replication event stream as JSON Lines — proposals,
    /// acks, quorum commits, and elections in shard order within each
    /// epoch. Deterministic for identical workloads and fault plans.
    pub fn replication_jsonl(&mut self) -> String {
        export::trace_jsonl(self.replication_recorder.query().events().iter())
    }

    /// Offers an encoded op to the gateway (decode, then admit).
    #[deprecated(
        since = "0.1.0",
        note = "use the `Ingress` trait: `ingress_wire` carries the same semantics behind the \
                unified front-door surface"
    )]
    pub fn submit_wire(&mut self, bytes: &[u8]) -> Result<u64, crate::error::GatewayError> {
        let op = Op::decode(bytes)?;
        self.admit(op).map_err(Into::into)
    }

    /// Offers an op to its owner's session.
    #[deprecated(
        since = "0.1.0",
        note = "use the `Ingress` trait: `ingress` returns the unified `GatewayError` surface"
    )]
    pub fn submit(&mut self, op: Op) -> Result<u64, AdmissionError> {
        self.admit(op)
    }

    /// Offers an op to its owner's session. On success the op waits in
    /// the session mailbox for the next epoch; the returned sequence
    /// number is its global admission order. This is the single
    /// admission path — the public surface is the `Ingress` trait (and,
    /// for one release, the deprecated `submit`/`submit_wire` shims).
    pub(crate) fn admit(&mut self, op: Op) -> Result<u64, AdmissionError> {
        self.admit_from(op)
    }

    /// Admits a borrowed wire view: the same checks and refusals as
    /// [`Self::admit`], but the owned [`Op`] (and its `String`
    /// allocations) only materialises once the mailbox has actually
    /// accepted the slot — refused floods decode and bounce without a
    /// single heap allocation on the success path.
    pub(crate) fn admit_view(&mut self, view: OpView<'_>) -> Result<u64, AdmissionError> {
        self.admit_from(view)
    }

    fn admit_from<S: AdmitSource>(&mut self, src: S) -> Result<u64, AdmissionError> {
        self.metrics.ops_submitted.incr();
        let label = src.label();
        if src.is_register() {
            if self.sessions.contains(src.user()) {
                // Refused at the door: a duplicate register would only
                // occupy a mailbox slot and a shard batch slot to fail
                // on the shard, inflating `ops_failed`.
                let e = AdmissionError::AlreadyRegistered { user: src.user().to_string() };
                self.count_refusal(&e);
                self.trace_refusal(label, &e);
                return Err(e);
            }
            let shard = self.home_shard(src.user());
            if !self.shards[shard].breaker.allows_request(self.epoch) {
                let e = AdmissionError::ShardUnavailable { shard };
                self.count_refusal(&e);
                self.trace_refusal(label, &e);
                return Err(e);
            }
            let mut session = Session::new(src.user(), shard, self.config.session);
            let seq = self.seq;
            // A `burst: 0` policy refuses even the first op of a fresh
            // session. The session is not retained on refusal, so a
            // later register under a saner policy is not misread as a
            // duplicate.
            if let Err(e) = session.offer_with(seq, self.now, || src.into_op()) {
                self.count_refusal(&e);
                self.trace_refusal(label, &e);
                return Err(e);
            }
            self.sessions.insert(session);
            self.metrics.sessions.set(self.sessions.len() as i64);
            self.metrics.ops_accepted.incr();
            self.trace(seq, TraceStage::Admitted { op: label, shard: shard as u32 });
            self.seq += 1;
            return Ok(seq);
        }
        let Some(id) = self.sessions.id_of(src.user()) else {
            let e = AdmissionError::UnknownUser { user: src.user().to_string() };
            self.count_refusal(&e);
            self.trace_refusal(label, &e);
            return Err(e);
        };
        let shard = self.sessions.by_id(id).shard();
        if !self.shards[shard].breaker.allows_request(self.epoch) {
            let e = AdmissionError::ShardUnavailable { shard };
            self.count_refusal(&e);
            self.trace_refusal(label, &e);
            return Err(e);
        }
        let seq = self.seq;
        match self.sessions.by_id_mut(id).offer_with(seq, self.now, || src.into_op()) {
            Ok(()) => {
                self.metrics.ops_accepted.incr();
                self.trace(seq, TraceStage::Admitted { op: label, shard: shard as u32 });
                self.seq += 1;
                Ok(seq)
            }
            Err(e) => {
                self.count_refusal(&e);
                self.trace_refusal(label, &e);
                Err(e)
            }
        }
    }

    /// Records one causal event into the router-level recorder, stamped
    /// with the current epoch and logical tick. One branch and no work
    /// when tracing is disabled.
    fn trace(&mut self, seq: u64, stage: TraceStage) {
        self.recorder.record(TraceEvent { seq, epoch: self.epoch, tick: self.now, stage });
    }

    /// Trace an admission refusal. Refusals never consume a sequence
    /// number, so the event borrows the next unassigned seq — recording
    /// what was turned away at that point in the admission stream (see
    /// the `TraceId` docs in `metaverse-telemetry`).
    fn trace_refusal(&mut self, op: &'static str, e: &AdmissionError) {
        if !self.recorder.is_enabled() {
            return;
        }
        let stage = match e {
            AdmissionError::RateLimited { retry_in_ticks, .. } => {
                TraceStage::RateLimited { op, retry_in_ticks: *retry_in_ticks }
            }
            other => TraceStage::Refused { op, cause: other.label() },
        };
        let seq = self.seq;
        self.trace(seq, stage);
    }

    /// Bumps the per-cause refusal counter for an admission error, and
    /// (when the ops plane is on) the heat window's pending per-class
    /// accumulator for the current epoch.
    fn count_refusal(&mut self, e: &AdmissionError) {
        match e {
            AdmissionError::RateLimited { .. } => self.metrics.rejected_rate_limited.incr(),
            AdmissionError::MailboxFull { .. } => self.metrics.rejected_mailbox_full.incr(),
            AdmissionError::UnknownUser { .. } => self.metrics.rejected_unknown_user.incr(),
            AdmissionError::AlreadyRegistered { .. } => {
                self.metrics.rejected_duplicate_register.incr()
            }
            AdmissionError::ShardUnavailable { .. } => self.metrics.rejected_shard_down.incr(),
        }
        if let Some(ops) = self.ops.as_mut() {
            ops.pending_refused[crate::ops::refusal_class(e)] += 1;
        }
    }

    /// Drains every mailbox, executes per-shard batches (fanned out
    /// across worker threads), commits every healthy shard's ledger,
    /// and settles cross-shard effects.
    ///
    /// The epoch runs in five phases. Phases 1–3 and 5–6 are
    /// sequential; only phase 4 (the per-shard hot path) is parallel,
    /// and everything it returns is merged in admission-`seq` order:
    ///
    /// 1. mailboxes → shard queues (routing by target shard);
    /// 2. breaker polls and skip decisions;
    /// 3. **pre-route**: resolve every drained op against the
    ///    cross-shard directories into a single-shard [`ShardOp`], a
    ///    merge-phase item, or a requeue;
    /// 4. **fan-out**: each shard's batch + `advance_ticks` +
    ///    `commit_epoch` runs as one unit of work on a scoped worker
    ///    thread (skipped shards only advance their clock);
    /// 5. **merge**: worker results and cross-shard effects apply in
    ///    `seq` order, then settlement, gauges, and the clock.
    pub fn execute_epoch(&mut self) -> EpochReport {
        let mut report = EpochReport { epoch: self.epoch, ..EpochReport::default() };
        self.metrics.epochs.incr();
        // One clamped delta drives the router clock *and* every shard
        // platform (including skipped ones), so admission tick time and
        // platform-stamped audit events can never drift apart.
        let tick_delta = self.config.epoch_ticks.max(1);

        // 1. Mailboxes → shard queues; votes route to the proposal's
        //    shard, everything else to the acting user's home shard.
        let mut drained: Vec<(u64, Op, u64)> = Vec::new();
        for session in self.sessions.values_mut() {
            drained.extend(session.drain());
        }
        drained.sort_by_key(|(seq, _, _)| *seq);
        for (seq, op, admitted) in drained {
            let shard = self.target_shard(&op);
            if self.recorder.is_enabled() {
                self.trace(
                    seq,
                    TraceStage::RoutedToShard {
                        shard: shard as u32,
                        waited_ticks: self.now.saturating_sub(admitted),
                    },
                );
            }
            self.shards[shard].queue.push_back((seq, op));
        }

        // 2. Breaker polls + skip decisions, in shard order.
        let mut skipped = vec![false; self.shards.len()];
        for (i, skip) in skipped.iter_mut().enumerate() {
            self.poll_breaker(i);
            if !self.shards[i].breaker.allows_request(self.epoch) {
                *skip = true;
                self.metrics.shard_epochs_skipped.incr();
                report.skipped_shards.push(i);
            }
        }

        // 3+4. Plan + execute. Both paths run the identical sequential
        //    plan loop (pre-route against the directories, DP debits in
        //    admission order, merge-item collection, requeues): the
        //    batched path plans the whole epoch and then fans out,
        //    while the pipelined path (`GatewayConfig::pipeline`)
        //    streams each planned op to its shard's worker as it is
        //    made, overlapping the plan loop with shard execution.
        //    Per-shard delivery order is the same `seq`-order
        //    subsequence either way, so results, audits, and traces
        //    are byte-identical across both paths.
        let mut pending: Vec<(u64, Op)> = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if !skipped[i] {
                pending.extend(shard.queue.drain(..));
            }
        }
        pending.sort_by_key(|(seq, _)| *seq);
        let ctx = EpochCtx {
            tick_delta,
            grant: self.config.initial_grant,
            epoch: self.epoch,
            now: self.now,
        };
        let mut merge: BTreeMap<u64, MergeItem> = BTreeMap::new();
        let pipelined =
            self.config.pipeline && self.worker_threads > 1 && self.shards.len() > 1;
        let outcomes = if pipelined {
            self.run_pipelined(pending, &skipped, ctx, &mut merge, &mut report)
        } else {
            self.run_batched(pending, &skipped, ctx, &mut merge, &mut report)
        };

        // 5. Merge, in shard order for breaker bookkeeping, then in
        //    global `seq` order for every per-op result and effect.
        let mut committed_shards = vec![false; self.shards.len()];
        let mut shard_heats = vec![ShardHeatSample::default(); self.shards.len()];
        for outcome in outcomes {
            let i = outcome.shard;
            shard_heats[i] = outcome.heat;
            if outcome.skipped {
                continue;
            }
            committed_shards[i] = outcome.commit_ok;
            if outcome.commit_ok {
                let transitions = self.shards[i].breaker.record_success(self.epoch);
                self.mirror_breaker(i, transitions.into_iter());
            } else {
                self.metrics.shard_commit_failures.incr();
                report.commit_failures.push(i);
                let transitions = self.shards[i].breaker.record_failure(self.epoch);
                self.mirror_breaker(i, transitions.into_iter());
            }
            for (seq, result) in outcome.results {
                merge.insert(seq, MergeItem::Executed { shard: i, result });
            }
        }
        if self.recorder.is_enabled() {
            // Merge the per-shard trace streams: drain in shard order,
            // stable-sort by admission seq (all of one seq's shard
            // events live on a single shard, so the sort preserves
            // their relative order), and append to the router ring.
            // The result is byte-identical at 1 worker or N.
            let mut shard_events: Vec<TraceEvent> = Vec::new();
            for shard in &mut self.shards {
                shard_events.append(&mut shard.recorder.drain());
            }
            shard_events.sort_by_key(|e| e.seq);
            for event in shard_events {
                self.recorder.record(event);
            }
            // Deferred ops executed after last epoch's commit barrier:
            // their ledger records sealed in *this* epoch's commit, so
            // their `committed_in_epoch` event names this commit.
            for (seq, shard) in std::mem::take(&mut self.deferred_commits) {
                if !committed_shards[shard] {
                    self.deferred_commits.push((seq, shard));
                    continue;
                }
                let (height, block) = sealed_head(&self.shards[shard].platform);
                self.trace(
                    seq,
                    TraceStage::CommittedInEpoch { shard: shard as u32, height, block },
                );
            }
        }
        if self.replication_recorder.is_enabled() {
            // Merge the per-shard replication streams in shard order.
            // Clusters stamp events with epoch 0 and seq = chain height;
            // the router rewrites the epoch here, at the same barrier
            // that merges op traces — but into its own ring, so the op
            // stream's bytes never depend on replication.
            for shard in &mut self.shards {
                for mut event in shard.platform.drain_replication_events() {
                    event.epoch = self.epoch;
                    self.replication_recorder.record(event);
                }
            }
        }
        for (seq, item) in merge {
            match item {
                MergeItem::Executed { shard, result } => match result {
                    Ok(effect) => {
                        if let Some(effect) = effect {
                            self.apply_effect(shard, seq, effect);
                        }
                        self.metrics.ops_committed.incr();
                        report.committed += 1;
                    }
                    Err(_) => {
                        self.metrics.ops_failed.incr();
                        report.failed += 1;
                    }
                },
                MergeItem::RateRemote { subject, to_shard, positive } => {
                    self.enqueue_settlement(
                        seq,
                        SettlementEffect::Rating { subject, to_shard, positive },
                    );
                    self.metrics.ops_committed.incr();
                    report.committed += 1;
                }
                MergeItem::Delegation { user, delegate } => {
                    // Membership is global, so delegation is too: apply
                    // to every shard's governance replica. The replicas
                    // hold identical delegation graphs (all delegation
                    // flows through this barrier), so the cycle check
                    // accepts or rejects uniformly across shards.
                    let mut result = Ok(());
                    for sh in &mut self.shards {
                        let r = sh.platform.set_delegation(&user, delegate.as_deref());
                        if r.is_err() {
                            result = r;
                        }
                    }
                    match result {
                        Ok(()) => {
                            self.metrics.governance_delegations.incr();
                            self.metrics.ops_committed.incr();
                            report.committed += 1;
                            if self.recorder.is_enabled() {
                                let home = self.session_shard(&user);
                                self.trace(
                                    seq,
                                    TraceStage::Delegated {
                                        shard: home as u32,
                                        revoked: delegate.is_none(),
                                    },
                                );
                            }
                        }
                        Err(_) => {
                            self.metrics.ops_failed.incr();
                            report.failed += 1;
                        }
                    }
                }
                MergeItem::Deferred(op) => {
                    self.execute_deferred(seq, op, &skipped, &mut report)
                }
            }
        }

        // 6. Settle cross-shard effects, then gauges + clock.
        let (settled, requeued) = self.settle();
        report.settled = settled;
        report.requeued = requeued;
        self.metrics.settlement_depth.set(self.settlement.len() as i64);
        for i in 0..self.shards.len() {
            self.metrics.shard_queue_depth[i].set(self.shards[i].queue.len() as i64);
        }
        self.fold_ops_plane(&report, shard_heats, tick_delta);
        if self.recorder.is_enabled() {
            let stats = self.recorder.stats();
            let dropped = stats.dropped
                + self.shards.iter().map(|s| s.recorder.stats().dropped).sum::<u64>();
            let (seen_recorded, seen_dropped) = self.trace_counted;
            self.metrics.trace_recorded.add(stats.recorded.saturating_sub(seen_recorded));
            self.metrics.trace_dropped.add(dropped.saturating_sub(seen_dropped));
            self.trace_counted = (stats.recorded, dropped);
            self.metrics.trace_buffer.set(stats.len as i64);
        }
        self.epoch += 1;
        self.now += tick_delta;
        report
    }

    /// The ops-plane barrier fold, phase 6 of `execute_epoch` (no-op
    /// when the plane is off). Runs on the router thread *after* the
    /// merge barrier, so every input is the same logical state a
    /// single-shard, single-worker run would see:
    ///
    /// * per-shard heat samples from the shard outcomes, topped up with
    ///   barrier-time queue depths (requeue timing differs between the
    ///   batched and pipelined paths *inside* the epoch, but both have
    ///   requeued by the barrier);
    /// * this epoch's slice of the merged trace rings, folded into the
    ///   stage-latency profiler (admission events stamped with the
    ///   *next* epoch are folded by that epoch's barrier);
    /// * monotone ledger deltas (admission seq, DP spend/refusals,
    ///   escrow enqueues) via the plane's watermarks.
    ///
    /// SLO transitions computed from the folded window become trace
    /// events (borrowing the next unassigned seq, like refusals) and
    /// on-ledger `HealthTransition` records on shard 0 — sealed into
    /// that shard's next block, so trips are auditable replayable
    /// history, not just gauges.
    fn fold_ops_plane(
        &mut self,
        report: &EpochReport,
        mut shard_heats: Vec<ShardHeatSample>,
        tick_delta: u64,
    ) {
        if self.ops.is_none() {
            return;
        }
        let epoch = self.epoch;
        for (i, heat) in shard_heats.iter_mut().enumerate() {
            heat.queue_depth = self.shards[i].queue.len() as u64;
        }
        let op_events: Vec<TraceEvent> =
            self.recorder.events().filter(|e| e.epoch == epoch).cloned().collect();
        let repl_events: Vec<TraceEvent> =
            self.replication_recorder.events().filter(|e| e.epoch == epoch).cloned().collect();
        let ops = self.ops.as_mut().expect("ops plane checked above");
        for event in &op_events {
            ops.profiler.fold(event);
        }
        for event in &repl_events {
            ops.profiler.fold_replication(event);
        }
        // Classes 0–4 accumulate at admission; class 5 (budget_refused)
        // is the DP ledger's own refusal counter, taken as a delta.
        let mut refused_by_class = std::mem::take(&mut ops.pending_refused);
        refused_by_class[5] = self.dp.refused - ops.last_dp_refused;
        let sample = EpochHeatSample {
            epoch,
            tick: self.now + tick_delta,
            ticks: tick_delta,
            admitted: self.seq - ops.last_seq,
            refused_by_class,
            dp_spent_micro: self.dp.spent_micro - ops.last_dp_spent_micro,
            escrow_enqueued: self.ledger.enqueued - ops.last_escrow_enqueued,
            escrow_depth: self.settlement.len() as u64,
            settled: report.settled,
            requeued: report.requeued,
            shards: shard_heats,
        };
        ops.last_seq = self.seq;
        ops.last_dp_spent_micro = self.dp.spent_micro;
        ops.last_dp_refused = self.dp.refused;
        ops.last_escrow_enqueued = self.ledger.enqueued;
        ops.window.fold(sample);
        let heat = ops.window.report();
        let input = SloInput {
            admission_p99_ticks: ops.profiler.report().admission_p99_ticks(),
            refusal_rate_milli: heat.global.refusal_rate_milli,
            dp_burn_micro_per_epoch: heat.global.dp_burn_micro_per_epoch,
        };
        let transitions = ops.slo.evaluate(&input);
        for transition in &transitions {
            ops.tripped_count += if transition.tripped { 1 } else { -1 };
        }
        let tripped_count = ops.tripped_count;
        self.metrics.heat_epochs_folded.incr();
        self.metrics.heat_imbalance_milli.set(heat.imbalance_milli as i64);
        self.metrics.slo_tripped.set(tripped_count);
        for t in transitions {
            let seq = self.seq;
            if t.tripped {
                self.metrics.slo_trips.incr();
                self.trace(
                    seq,
                    TraceStage::SloTripped {
                        objective: t.objective,
                        measured: t.measured,
                        threshold: t.threshold,
                        burn_milli: t.burn_milli,
                    },
                );
                self.shards[0].platform.record_component_health(
                    t.objective,
                    HealthState::Healthy,
                    HealthState::from_burn_milli(t.burn_milli),
                    "slo_tripped",
                );
            } else {
                self.metrics.slo_recoveries.incr();
                self.trace(
                    seq,
                    TraceStage::SloRecovered {
                        objective: t.objective,
                        measured: t.measured,
                        threshold: t.threshold,
                    },
                );
                self.shards[0].platform.record_component_health(
                    t.objective,
                    HealthState::Failed,
                    HealthState::Healthy,
                    "slo_recovered",
                );
            }
        }
    }

    /// Work admitted but not yet terminal: mailboxed ops, queued
    /// batches on held shards, and in-flight settlement entries.
    pub fn pending_ops(&self) -> usize {
        let mailboxed: usize = self.sessions.values().map(Session::pending).sum();
        let queued: usize = self.shards.iter().map(|s| s.queue.len()).sum();
        mailboxed + queued + self.settlement.len()
    }

    /// Runs epochs until [`ShardRouter::pending_ops`] reaches zero (or
    /// `max_epochs` passes). Returns epochs run.
    pub fn drain(&mut self, max_epochs: u64) -> u64 {
        let mut ran = 0;
        while ran < max_epochs && self.pending_ops() > 0 {
            self.execute_epoch();
            ran += 1;
        }
        ran
    }

    /// Audits global supply and ownership; see [`ConservationReport`].
    pub fn conservation_report(&self) -> ConservationReport {
        let users = self.shards.iter().map(|s| s.platform.user_count() as u64).sum();
        let tokens_on_shards =
            self.shards.iter().map(|s| s.platform.market().total_balance()).sum();
        let assets_single_owner = self
            .assets
            .values()
            .filter(|loc| {
                self.shards[loc.shard]
                    .platform
                    .assets()
                    .get(loc.local)
                    .is_some_and(|nft| !nft.owner.is_empty())
            })
            .count() as u64;
        let assets_minted = self.assets.len() as u64;
        let tokens_in_flight = self.ledger.escrow;
        let conserved = self.ledger.tokens_minted == tokens_on_shards + tokens_in_flight
            && assets_single_owner == assets_minted;
        ConservationReport {
            users,
            tokens_minted: self.ledger.tokens_minted,
            tokens_on_shards,
            tokens_in_flight,
            assets_minted,
            assets_single_owner,
            conserved,
        }
    }

    /// Global asset id → current owner, resolved across shards. Every
    /// minted asset appears exactly once (the invariant
    /// [`Self::conservation_report`] audits); *which* buyer won a
    /// contested same-epoch purchase depends on batch interleaving and
    /// so may differ between shard counts.
    pub fn asset_owners(&self) -> BTreeMap<u64, String> {
        self.assets
            .iter()
            .filter_map(|(gid, loc)| {
                self.shards[loc.shard]
                    .platform
                    .assets()
                    .get(loc.local)
                    .map(|nft| (gid, nft.owner.clone()))
            })
            .collect()
    }

    // ---- internals -----------------------------------------------------

    /// The shard an op executes on: votes go to the proposal's shard,
    /// everything else to the acting user's home shard. (Cross-shard
    /// buys and ratings start on the home shard and finish through the
    /// settlement queue.)
    fn target_shard(&self, op: &Op) -> usize {
        if let Op::Vote { proposal, .. } | Op::QuadraticVote { proposal, .. } = op {
            if let Some((shard, _, _)) = self.proposals.get(*proposal) {
                return *shard;
            }
        }
        self.sessions
            .get(op.user())
            .map(Session::shard)
            .unwrap_or_else(|| self.home_shard(op.user()))
    }

    fn poll_breaker(&mut self, shard: usize) {
        let transitions: Vec<_> =
            self.shards[shard].breaker.poll(self.epoch).into_iter().collect();
        self.mirror_breaker(shard, transitions.into_iter());
    }

    fn mirror_breaker(
        &self,
        shard: usize,
        transitions: impl Iterator<Item = BreakerTransition>,
    ) {
        for t in transitions {
            self.hub.incr(&names::gateway::shard_breaker(shard, t.to.label()));
        }
    }

    /// The shard a session (or, for unregistered users, the ring)
    /// homes `user` on.
    fn session_shard(&self, user: &str) -> usize {
        self.sessions
            .get(user)
            .map(Session::shard)
            .unwrap_or_else(|| self.home_shard(user))
    }

    /// The batched plan + fan-out: the plan loop resolves every op
    /// before any worker starts (the original epoch shape, and the
    /// baseline the pipelining determinism gate compares against).
    fn run_batched(
        &mut self,
        pending: Vec<(u64, Op)>,
        skipped: &[bool],
        ctx: EpochCtx,
        merge: &mut BTreeMap<u64, MergeItem>,
        report: &mut EpochReport,
    ) -> Vec<ShardOutcome> {
        let worker_threads = self.worker_threads;
        // Split `&mut self` into disjoint field borrows: the plan
        // context reads the directories while the buy-price closure
        // reads the shards, and the plan state mutates the DP ledger
        // and recorder — none of which overlap.
        let ShardRouter {
            ring, sessions, assets, proposals, shards, dp, recorder, metrics, config, ..
        } = self;
        let plan_ctx = PlanCtx {
            ring,
            sessions,
            assets,
            proposals,
            dp_epsilon_per_event_micro: config.dp_epsilon_per_event_micro,
        };
        let mut batches: Vec<Vec<(u64, ShardOp)>> =
            (0..shards.len()).map(|_| Vec::new()).collect();
        let mut requeues: Vec<(usize, u64, Op)> = Vec::new();
        {
            let shards_view: &[Shard] = shards;
            let buy_price = |asset: u64| -> Option<u64> {
                let loc = assets.get(asset)?;
                shards_view[loc.shard].platform.market().listing(loc.local).map(|l| l.price)
            };
            let mut state = PlanState {
                dp,
                recorder,
                metrics,
                dp_budget_micro: config.dp_budget_micro,
                pet_noise_seed: config.pet_noise_seed,
                epoch: ctx.epoch,
                now: ctx.now,
            };
            for (seq, op) in pending {
                let plan = plan_ctx.pre_route(op, skipped, &buy_price);
                if let Some((shard, op)) = state.route(seq, plan, merge, &mut requeues, report)
                {
                    batches[shard].push((seq, op));
                }
            }
        }
        for (shard, seq, op) in requeues {
            shards[shard].queue.push_back((seq, op));
        }
        let work: Vec<ShardWork> = skipped
            .iter()
            .zip(batches)
            .map(|(&skip, batch)| ShardWork { skip, batch })
            .collect();
        run_shard_phase(shards, work, worker_threads, ctx, metrics)
    }

    /// The pipelined epoch: workers own the shards for the whole
    /// phase, consuming planned ops from per-worker channels while the
    /// plan loop is still running on the router thread. Everything
    /// order-sensitive (DP debits, directory reads, merge items,
    /// traces) stays on the router thread in admission-`seq` order;
    /// each shard receives its ops in the same `seq`-order subsequence
    /// the batched path would have handed it, so the two paths commit
    /// byte-identical state.
    fn run_pipelined(
        &mut self,
        pending: Vec<(u64, Op)>,
        skipped: &[bool],
        ctx: EpochCtx,
        merge: &mut BTreeMap<u64, MergeItem>,
        report: &mut EpochReport,
    ) -> Vec<ShardOutcome> {
        let workers = self.worker_threads;
        // Remote-buy price pre-pass: the plan loop cannot read shard
        // markets once the workers own the shards, so resolve every
        // listed `Buy` target now. Directories and listings cannot
        // change between here and the plan loop (both run before any
        // merge), so these are exactly the prices the batched plan
        // loop reads mid-loop.
        let mut buy_prices: BTreeMap<u64, u64> = BTreeMap::new();
        for (_, op) in &pending {
            if let Op::Buy { asset, .. } = op {
                if !buy_prices.contains_key(asset) {
                    if let Some(&loc) = self.assets.get(*asset) {
                        if let Some(price) = self.shards[loc.shard]
                            .platform
                            .market()
                            .listing(loc.local)
                            .map(|l| l.price)
                        {
                            buy_prices.insert(*asset, price);
                        }
                    }
                }
            }
        }
        let ShardRouter {
            ring, sessions, assets, proposals, shards, dp, recorder, metrics, config, ..
        } = self;
        let plan_ctx = PlanCtx {
            ring,
            sessions,
            assets,
            proposals,
            dp_epsilon_per_event_micro: config.dp_epsilon_per_event_micro,
        };
        let metrics: &GatewayMetrics = metrics;
        let chunk = shards.len().div_ceil(workers);
        let mut requeues: Vec<(usize, u64, Op)> = Vec::new();
        let mut outcomes = std::thread::scope(|scope| {
            let mut senders: Vec<mpsc::Sender<(usize, u64, ShardOp)>> = Vec::new();
            let mut handles = Vec::new();
            let mut base = 0usize;
            for shard_chunk in shards.chunks_mut(chunk) {
                let (tx, rx) = mpsc::channel::<(usize, u64, ShardOp)>();
                senders.push(tx);
                let start = base;
                base += shard_chunk.len();
                let skip_chunk = &skipped[start..start + shard_chunk.len()];
                handles.push(scope.spawn(move || {
                    stream_shard_chunk(start, shard_chunk, skip_chunk, rx, ctx, metrics)
                }));
            }
            {
                let buy_price = |asset: u64| buy_prices.get(&asset).copied();
                let mut state = PlanState {
                    dp,
                    recorder,
                    metrics,
                    dp_budget_micro: config.dp_budget_micro,
                    pet_noise_seed: config.pet_noise_seed,
                    epoch: ctx.epoch,
                    now: ctx.now,
                };
                for (seq, op) in pending {
                    let plan = plan_ctx.pre_route(op, skipped, &buy_price);
                    if let Some((shard, op)) =
                        state.route(seq, plan, merge, &mut requeues, report)
                    {
                        // A send only fails if the worker already died;
                        // its panic resurfaces at the join below.
                        let _ = senders[shard / chunk].send((shard % chunk, seq, op));
                    }
                }
            }
            drop(senders);
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect::<Vec<ShardOutcome>>()
        });
        outcomes.sort_by_key(|o| o.shard);
        for (shard, seq, op) in requeues {
            shards[shard].queue.push_back((seq, op));
        }
        outcomes
    }

    /// Applies a worker-returned cross-shard effect (merge phase, `seq`
    /// order).
    fn apply_effect(&mut self, shard: usize, seq: u64, effect: WorkerEffect) {
        match effect {
            WorkerEffect::Registered { user } => {
                self.ledger.tokens_minted += self.config.initial_grant;
                // Governance is global: join every other shard's DAOs.
                for (i, other) in self.shards.iter_mut().enumerate() {
                    if i != shard {
                        let _ = other.platform.with_governance(|g| g.join_all(&user));
                    }
                }
            }
            WorkerEffect::ProposalCreated { global, scope, local } => {
                self.proposals.insert(global, (shard, scope.into(), local));
            }
            WorkerEffect::AssetMinted { global, local } => {
                self.assets.insert(global, AssetLocation { shard, local });
            }
            WorkerEffect::SensorReleased { micro } => {
                self.dp.reconciled_micro += micro;
                self.dp.admitted += 1;
                self.metrics.dp_spent_micro.add(micro);
                self.metrics.dp_admitted.incr();
            }
            WorkerEffect::RemoteBuy { buyer, asset, to_shard, price } => {
                self.ledger.escrow += price;
                self.trace(
                    seq,
                    TraceStage::Escrowed {
                        from_shard: shard as u32,
                        to_shard: to_shard as u32,
                        price,
                    },
                );
                self.enqueue_settlement(
                    seq,
                    SettlementEffect::Purchase {
                        buyer,
                        asset,
                        from_shard: shard,
                        to_shard,
                        price,
                    },
                );
            }
        }
    }

    /// Executes an op whose target did not exist at pre-route time: the
    /// directories are current now (every same-epoch create has been
    /// merged), so Vote / List / Buy resolve sequentially after the
    /// worker barrier. Targets on a skipped shard requeue for the next
    /// epoch instead of executing; still-unknown targets fail, matching
    /// the sequential router's behavior.
    fn execute_deferred(
        &mut self,
        seq: u64,
        op: Op,
        skipped: &[bool],
        report: &mut EpochReport,
    ) {
        let (exec_shard, result) = match op {
            Op::Vote { user, proposal, support } => match self.proposals.get(proposal).cloned()
            {
                Some((pshard, scope, local)) => {
                    if skipped[pshard] {
                        self.trace(seq, TraceStage::Requeued { shard: pshard as u32 });
                        self.shards[pshard]
                            .queue
                            .push_back((seq, Op::Vote { user, proposal, support }));
                        return;
                    }
                    (pshard, self.shards[pshard].platform.vote(&scope, &user, local, support))
                }
                None => {
                    let home = self.session_shard(&user);
                    (home, Err(CoreError::Platform(format!("unknown proposal {proposal}"))))
                }
            },
            Op::QuadraticVote { user, proposal, support, votes } => {
                match self.proposals.get(proposal).cloned() {
                    Some((pshard, scope, local)) => {
                        if skipped[pshard] {
                            self.trace(seq, TraceStage::Requeued { shard: pshard as u32 });
                            self.shards[pshard]
                                .queue
                                .push_back((seq, Op::QuadraticVote { user, proposal, support, votes }));
                            return;
                        }
                        self.metrics.governance_quadratic_votes.incr();
                        (
                            pshard,
                            self.shards[pshard].platform.vote_quadratic(
                                &scope,
                                &user,
                                local,
                                support,
                                u64::from(votes),
                            ),
                        )
                    }
                    None => {
                        let home = self.session_shard(&user);
                        (home, Err(CoreError::Platform(format!("unknown proposal {proposal}"))))
                    }
                }
            }
            Op::List { user, asset, price } => match self.assets.get(asset).copied() {
                Some(loc) => {
                    if skipped[loc.shard] {
                        self.trace(seq, TraceStage::Requeued { shard: loc.shard as u32 });
                        self.shards[loc.shard]
                            .queue
                            .push_back((seq, Op::List { user, asset, price }));
                        return;
                    }
                    (
                        loc.shard,
                        self.shards[loc.shard].platform.list_asset(&user, loc.local, price),
                    )
                }
                None => {
                    let home = self.session_shard(&user);
                    (home, Err(CoreError::Platform(format!("unknown asset {asset}"))))
                }
            },
            Op::Buy { user, asset } => {
                let home = self.session_shard(&user);
                (home, self.deferred_buy(seq, &user, asset))
            }
            other => {
                let home = self.session_shard(other.user());
                (home, Err(CoreError::Platform(format!("op {} cannot be deferred", other.label()))))
            }
        };
        let ok = result.is_ok();
        if self.recorder.is_enabled() {
            self.trace(seq, TraceStage::Executed { shard: exec_shard as u32, ok });
            if ok {
                // A deferred op runs after this epoch's commit barrier;
                // its ledger records seal at `exec_shard`'s next
                // commit, which stamps the `committed_in_epoch` event.
                self.deferred_commits.push((seq, exec_shard));
            }
        }
        match result {
            Ok(()) => {
                self.metrics.ops_committed.incr();
                report.committed += 1;
            }
            Err(_) => {
                self.metrics.ops_failed.incr();
                report.failed += 1;
            }
        }
    }

    /// A deferred buy, resolved against the now-current asset
    /// directory: local assets buy directly; remote assets escrow the
    /// price and settle on the asset's shard.
    fn deferred_buy(&mut self, seq: u64, buyer: &str, asset: u64) -> Result<(), CoreError> {
        let loc = self
            .assets
            .get(asset)
            .copied()
            .ok_or_else(|| CoreError::Platform(format!("unknown asset {asset}")))?;
        let home = self.session_shard(buyer);
        if loc.shard == home {
            return self.shards[home].platform.buy_asset(buyer, loc.local);
        }
        let price = self.shards[loc.shard]
            .platform
            .market()
            .listing(loc.local)
            .map(|l| l.price)
            .ok_or_else(|| CoreError::Platform(format!("asset {asset} not listed")))?;
        self.shards[home].platform.withdraw(buyer, price)?;
        self.ledger.escrow += price;
        self.trace(
            seq,
            TraceStage::Escrowed {
                from_shard: home as u32,
                to_shard: loc.shard as u32,
                price,
            },
        );
        self.enqueue_settlement(
            seq,
            SettlementEffect::Purchase {
                buyer: buyer.to_string(),
                asset,
                from_shard: home,
                to_shard: loc.shard,
                price,
            },
        );
        Ok(())
    }

    fn enqueue_settlement(&mut self, seq: u64, effect: SettlementEffect) {
        self.metrics.settlement_enqueued.incr();
        self.ledger.enqueued += 1;
        self.settlement.push_back(PendingSettlement { seq, effect, requeues: 0 });
    }

    /// Applies the settlement queue once; entries whose target shard or
    /// module is unavailable requeue (bounded), purchases that cannot
    /// complete refund. Returns `(settled, requeued)`.
    fn settle(&mut self) -> (u64, u64) {
        let mut settled = 0;
        let mut requeued = 0;
        let pending: Vec<PendingSettlement> = self.settlement.drain(..).collect();
        for entry in pending {
            let target = match &entry.effect {
                SettlementEffect::Purchase { to_shard, .. } => *to_shard,
                SettlementEffect::Rating { to_shard, .. } => *to_shard,
            };
            if !self.shards[target].breaker.allows_request(self.epoch) {
                self.requeue_or_terminate(entry, &mut settled, &mut requeued);
                continue;
            }
            match entry.effect.clone() {
                SettlementEffect::Purchase { buyer, price, to_shard, asset, .. } => {
                    // An asset missing from the directory can no longer
                    // be bought anywhere: return the escrow rather than
                    // panicking on the index.
                    let Some(loc) = self.assets.get(asset).copied() else {
                        self.refund(entry);
                        continue;
                    };
                    self.shards[to_shard].platform.deposit(&buyer, price);
                    match self.shards[to_shard].platform.buy_asset(&buyer, loc.local) {
                        Ok(()) => {
                            self.ledger.escrow -= price;
                            self.finish(entry, SettlementOutcome::Applied);
                            settled += 1;
                        }
                        Err(e) => {
                            // Pull the deposit back into escrow before
                            // deciding between requeue and refund. If
                            // the pull-back itself fails the funds are
                            // already with the buyer on the target
                            // shard: close the entry there (supply is
                            // conserved) instead of unwinding
                            // mid-settlement.
                            if self.shards[to_shard]
                                .platform
                                .withdraw(&buyer, price)
                                .is_err()
                            {
                                self.ledger.escrow -= price;
                                self.metrics.settlement_rejected.incr();
                                self.ledger.rejected += 1;
                                self.finish(entry, SettlementOutcome::Refunded);
                            } else if matches!(e, CoreError::ModuleUnavailable { .. }) {
                                self.requeue_or_terminate(entry, &mut settled, &mut requeued);
                            } else {
                                self.refund(entry);
                            }
                        }
                    }
                }
                SettlementEffect::Rating { subject, to_shard, positive } => {
                    match self.shards[to_shard].platform.apply_remote_rating(&subject, positive)
                    {
                        Ok(_) => {
                            self.finish(entry, SettlementOutcome::Applied);
                            settled += 1;
                        }
                        Err(CoreError::ModuleUnavailable { .. }) => {
                            self.requeue_or_terminate(entry, &mut settled, &mut requeued);
                        }
                        Err(_) => {
                            self.finish(entry, SettlementOutcome::Dropped);
                            self.metrics.settlement_rejected.incr();
                            self.ledger.rejected += 1;
                        }
                    }
                }
            }
        }
        (settled, requeued)
    }

    /// Requeues an entry if it has budget left, otherwise terminates it
    /// (refunding purchases, dropping ratings).
    fn requeue_or_terminate(
        &mut self,
        mut entry: PendingSettlement,
        settled: &mut u64,
        requeued: &mut u64,
    ) {
        let _ = settled;
        if entry.requeues < self.config.max_settlement_requeues {
            entry.requeues += 1;
            self.metrics.settlement_requeued.incr();
            *requeued += 1;
            if self.recorder.is_enabled() {
                let target = match &entry.effect {
                    SettlementEffect::Purchase { to_shard, .. } => *to_shard,
                    SettlementEffect::Rating { to_shard, .. } => *to_shard,
                };
                self.trace(entry.seq, TraceStage::Requeued { shard: target as u32 });
            }
            self.settlement.push_back(entry);
            return;
        }
        match entry.effect {
            SettlementEffect::Purchase { .. } => self.refund(entry),
            SettlementEffect::Rating { .. } => {
                self.finish(entry, SettlementOutcome::Dropped);
                self.metrics.settlement_rejected.incr();
                self.ledger.rejected += 1;
            }
        }
    }

    /// Returns a purchase's escrow to the buyer's home shard.
    fn refund(&mut self, entry: PendingSettlement) {
        if let SettlementEffect::Purchase { ref buyer, from_shard, price, .. } = entry.effect {
            self.shards[from_shard].platform.deposit(buyer, price);
            self.ledger.escrow -= price;
        }
        self.metrics.settlement_rejected.incr();
        self.ledger.rejected += 1;
        self.finish(entry, SettlementOutcome::Refunded);
    }

    fn finish(&mut self, entry: PendingSettlement, outcome: SettlementOutcome) {
        if outcome == SettlementOutcome::Applied {
            self.metrics.settlement_applied.incr();
            self.ledger.applied += 1;
        }
        if self.recorder.is_enabled() {
            let label = match outcome {
                SettlementOutcome::Applied => "applied",
                SettlementOutcome::Refunded => "refunded",
                SettlementOutcome::Dropped => "dropped",
            };
            self.trace(
                entry.seq,
                TraceStage::Settled { outcome: label, requeues: entry.requeues },
            );
            if outcome == SettlementOutcome::Applied {
                // Settlement runs after this epoch's commits, so the
                // entry's ledger records seal above the target chain's
                // current height; `provenance_report` resolves the
                // committing block from this floor.
                let row = match &entry.effect {
                    SettlementEffect::Purchase { buyer, asset, to_shard, price, .. } => {
                        // A directory miss means there is no committing
                        // block to resolve; skip the provenance row
                        // rather than panicking on the index.
                        self.assets.get(*asset).map(|loc| {
                            (
                                *to_shard,
                                ProvenanceKey::Purchase {
                                    asset_local: loc.local,
                                    buyer: buyer.clone(),
                                    price: *price,
                                },
                            )
                        })
                    }
                    SettlementEffect::Rating { subject, to_shard, .. } => {
                        Some((*to_shard, ProvenanceKey::Rating { subject: subject.clone() }))
                    }
                };
                if let Some((shard, key)) = row {
                    self.provenance.push(ProvenanceRow {
                        seq: entry.seq,
                        shard,
                        epoch: self.epoch,
                        floor: self.shards[shard].platform.chain().height(),
                        key,
                    });
                }
            }
        }
        self.ledger.entries.push(SettledEntry {
            effect: entry.effect,
            outcome,
            epoch: self.epoch,
            requeues: entry.requeues,
        });
    }
}

// ---- parallel epoch internals ------------------------------------------

/// An op resolved to exactly one shard: everything a worker needs, with
/// every cross-shard lookup (directories, remote listing prices)
/// already done by pre-routing.
#[derive(Debug)]
enum ShardOp {
    Register { user: String },
    EnterWorld { user: String, handle: String, x: f64, y: f64 },
    Propose { user: String, global: u64, scope: String, title: String },
    Vote { user: String, scope: Arc<str>, local: u64, support: bool },
    Rate { rater: String, subject: String, positive: bool },
    Mint { user: String, global: u64, uri: String, quality: f64 },
    List { user: String, local: NftId, price: u64 },
    Buy { user: String, local: NftId },
    BuyRemote { buyer: String, asset: u64, to_shard: usize, price: u64 },
    RecordCollection {
        user: String,
        subject: String,
        sensor: SensorClass,
        purpose: String,
        basis: LawfulBasis,
        bytes: u64,
    },
    TwinSync { property: u32, delta: f64 },
    QuadraticVote { user: String, scope: Arc<str>, local: u64, support: bool, votes: u64 },
    SensorEvent {
        user: String,
        class: SensorClass,
        reading: f64,
        /// Micro-epsilon the plan loop debited for this event.
        epsilon_micro: u64,
        /// Per-event noise stream (`pet_noise_seed ^ seq`), stamped by
        /// the plan loop so noise never depends on shard placement.
        noise_seed: u64,
    },
    Appeal { user: String },
}

/// A cross-shard side effect a worker hands back instead of applying:
/// the merge phase applies these in admission-`seq` order.
#[derive(Debug)]
enum WorkerEffect {
    /// `register_user` + grant deposit succeeded; mint the grant into
    /// the supply ledger and join every other shard's DAOs.
    Registered { user: String },
    /// A proposal opened; record it in the global directory.
    ProposalCreated { global: u64, scope: String, local: u64 },
    /// An asset minted; record it in the global directory.
    AssetMinted { global: u64, local: NftId },
    /// A remote buy's escrow was withdrawn on the buyer's home shard;
    /// account for it and enqueue the settlement entry.
    RemoteBuy { buyer: String, asset: u64, to_shard: usize, price: u64 },
    /// A sensor event cleared its shard's PET pipeline and was
    /// recorded; reconcile its micro-epsilon against the global ledger.
    SensorReleased { micro: u64 },
}

/// One `seq`-ordered unit the merge phase consumes.
#[derive(Debug)]
enum MergeItem {
    /// A worker executed the op on its shard.
    Executed { shard: usize, result: Result<Option<WorkerEffect>, CoreError> },
    /// A rating whose subject lives on another shard: enqueued during
    /// the merge so the settlement queue stays in `seq` order.
    RateRemote { subject: String, to_shard: usize, positive: bool },
    /// The op's target may be created earlier this same epoch; execute
    /// sequentially after the worker barrier.
    Deferred(Op),
    /// A delegation change (set or revoke): global governance state,
    /// applied to every shard's replica at the merge barrier.
    Delegation { user: String, delegate: Option<String> },
}

/// Where pre-routing sends one drained op.
#[derive(Debug)]
enum Planned {
    /// Run on `shard`'s worker.
    Execute { shard: usize, op: ShardOp },
    /// Handle in the sequential merge phase.
    Merge(MergeItem),
    /// Target shard is breaker-skipped: hold on its queue.
    Requeue { shard: usize, op: Op },
}

/// The read-only router state pre-routing consults, split out of
/// `&mut self` so the pipelined plan loop can keep resolving ops while
/// worker threads hold `&mut` on the shards. Directories cannot change
/// during the plan loop (`apply_effect` runs at the merge barrier,
/// after it), so a shared borrow for the whole phase is sound *and*
/// byte-identical to the batched path's mid-loop reads.
struct PlanCtx<'a> {
    ring: &'a Ring,
    sessions: &'a SessionTable,
    assets: &'a DenseDir<AssetLocation>,
    proposals: &'a DenseDir<ProposalEntry>,
    dp_epsilon_per_event_micro: u64,
}

impl PlanCtx<'_> {
    /// Registered users execute on their session's shard; everyone
    /// else (rating subjects that never registered) falls back to the
    /// hash ring so the plan is still deterministic.
    fn session_shard(&self, user: &str) -> usize {
        self.sessions.get(user).map(Session::shard).unwrap_or_else(|| self.ring.shard_for(user))
    }

    /// Resolves one drained op into its epoch plan: a single-shard
    /// [`ShardOp`] a worker can run without touching cross-shard state,
    /// a merge-phase item (remote ratings; ops whose target may be
    /// created later this epoch), or a requeue (target shard skipped).
    /// `buy_price` abstracts the one shard read pre-routing needs (a
    /// remote listing's price): the batched path reads the market
    /// directly, the pipelined path reads a pre-pass snapshot taken
    /// before the workers took the shards — same values either way,
    /// because listings only change at the merge barrier.
    fn pre_route(
        &self,
        op: Op,
        skipped: &[bool],
        buy_price: &dyn Fn(u64) -> Option<u64>,
    ) -> Planned {
        match op {
            Op::Register { user } => {
                let shard = self.session_shard(&user);
                Planned::Execute { shard, op: ShardOp::Register { user } }
            }
            Op::EnterWorld { user, handle, x, y } => {
                let shard = self.session_shard(&user);
                Planned::Execute { shard, op: ShardOp::EnterWorld { user, handle, x, y } }
            }
            Op::Propose { user, proposal, scope, title } => {
                let shard = self.session_shard(&user);
                Planned::Execute {
                    shard,
                    op: ShardOp::Propose { user, global: proposal, scope, title },
                }
            }
            Op::Vote { user, proposal, support } => match self.proposals.get(proposal) {
                Some(&(pshard, ref scope, local)) => {
                    if skipped[pshard] {
                        Planned::Requeue {
                            shard: pshard,
                            op: Op::Vote { user, proposal, support },
                        }
                    } else {
                        Planned::Execute {
                            shard: pshard,
                            op: ShardOp::Vote { user, scope: scope.clone(), local, support },
                        }
                    }
                }
                // The proposal may open earlier this same epoch.
                None => Planned::Merge(MergeItem::Deferred(Op::Vote {
                    user,
                    proposal,
                    support,
                })),
            },
            Op::Endorse { user, subject } => self.plan_rating(user, subject, true),
            Op::Report { user, subject } => self.plan_rating(user, subject, false),
            Op::Mint { user, asset, uri, quality } => {
                let shard = self.session_shard(&user);
                Planned::Execute { shard, op: ShardOp::Mint { user, global: asset, uri, quality } }
            }
            Op::List { user, asset, price } => match self.assets.get(asset) {
                // Listings execute on the asset's shard regardless of
                // where the seller is homed — ownership lives there.
                Some(&loc) => {
                    if skipped[loc.shard] {
                        Planned::Requeue { shard: loc.shard, op: Op::List { user, asset, price } }
                    } else {
                        Planned::Execute {
                            shard: loc.shard,
                            op: ShardOp::List { user, local: loc.local, price },
                        }
                    }
                }
                // The asset may be minted earlier this same epoch.
                None => Planned::Merge(MergeItem::Deferred(Op::List { user, asset, price })),
            },
            Op::Buy { user, asset } => {
                let home = self.session_shard(&user);
                match self.assets.get(asset) {
                    Some(&loc) if loc.shard == home => {
                        Planned::Execute { shard: home, op: ShardOp::Buy { user, local: loc.local } }
                    }
                    Some(&loc) => {
                        // Remote: the listing price resolves here,
                        // before fan-out, so the worker only touches
                        // the buyer's home shard (withdraw into
                        // escrow).
                        match buy_price(asset) {
                            Some(price) => Planned::Execute {
                                shard: home,
                                op: ShardOp::BuyRemote {
                                    buyer: user,
                                    asset,
                                    to_shard: loc.shard,
                                    price,
                                },
                            },
                            // A same-epoch `List` may land it.
                            None => Planned::Merge(MergeItem::Deferred(Op::Buy { user, asset })),
                        }
                    }
                    None => Planned::Merge(MergeItem::Deferred(Op::Buy { user, asset })),
                }
            }
            Op::RecordCollection { user, subject, sensor, purpose, basis, bytes } => {
                let shard = self.session_shard(&user);
                Planned::Execute {
                    shard,
                    op: ShardOp::RecordCollection { user, subject, sensor, purpose, basis, bytes },
                }
            }
            Op::TwinSync { user, property, delta } => {
                let shard = self.session_shard(&user);
                Planned::Execute { shard, op: ShardOp::TwinSync { property, delta } }
            }
            // Delegation is global state (membership spans every
            // shard's DAOs), so it applies at the merge barrier to all
            // shards at once — the cycle check then sees identical
            // delegation graphs no matter how users are sharded.
            Op::Delegate { user, delegate } => {
                Planned::Merge(MergeItem::Delegation { user, delegate: Some(delegate) })
            }
            Op::RevokeDelegation { user } => {
                Planned::Merge(MergeItem::Delegation { user, delegate: None })
            }
            Op::QuadraticVote { user, proposal, support, votes } => {
                match self.proposals.get(proposal) {
                    Some(&(pshard, ref scope, local)) => {
                        if skipped[pshard] {
                            Planned::Requeue {
                                shard: pshard,
                                op: Op::QuadraticVote { user, proposal, support, votes },
                            }
                        } else {
                            Planned::Execute {
                                shard: pshard,
                                op: ShardOp::QuadraticVote {
                                    user,
                                    scope: scope.clone(),
                                    local,
                                    support,
                                    votes: u64::from(votes),
                                },
                            }
                        }
                    }
                    // The proposal may open earlier this same epoch.
                    None => Planned::Merge(MergeItem::Deferred(Op::QuadraticVote {
                        user,
                        proposal,
                        support,
                        votes,
                    })),
                }
            }
            Op::SensorEvent { user, class, reading } => {
                let shard = self.session_shard(&user);
                Planned::Execute {
                    shard,
                    op: ShardOp::SensorEvent {
                        user,
                        class,
                        reading,
                        epsilon_micro: self.dp_epsilon_per_event_micro,
                        // Patched to the per-event stream when the plan
                        // loop debits the global DP ledger.
                        noise_seed: 0,
                    },
                }
            }
            Op::AppealModeration { user } => {
                let shard = self.session_shard(&user);
                Planned::Execute { shard, op: ShardOp::Appeal { user } }
            }
        }
    }

    /// Endorse/report plan: local subjects execute on the rater's
    /// shard; remote subjects go through settlement (enqueued in the
    /// merge phase so the queue stays in `seq` order).
    fn plan_rating(&self, user: String, subject: String, positive: bool) -> Planned {
        let home = self.session_shard(&user);
        let subject_shard = self.session_shard(&subject);
        if subject_shard == home {
            Planned::Execute { shard: home, op: ShardOp::Rate { rater: user, subject, positive } }
        } else {
            Planned::Merge(MergeItem::RateRemote { subject, to_shard: subject_shard, positive })
        }
    }
}

/// The mutable, order-sensitive half of the plan loop: the global DP
/// ledger, the router trace ring, and the per-op metric bumps. Both
/// epoch paths drive the exact same `route` on the exact same `seq`
/// order, which is what makes the batched and pipelined ledgers,
/// budget reports, and trace streams byte-identical.
struct PlanState<'a> {
    dp: &'a mut DpLedger,
    recorder: &'a mut FlightRecorder,
    metrics: &'a GatewayMetrics,
    dp_budget_micro: u64,
    pet_noise_seed: u64,
    epoch: u64,
    now: u64,
}

impl PlanState<'_> {
    fn trace(&mut self, seq: u64, stage: TraceStage) {
        self.recorder.record(TraceEvent { seq, epoch: self.epoch, tick: self.now, stage });
    }

    /// Consumes one plan: returns `Some((shard, op))` when the op
    /// should reach a worker, `None` when it was refused, merged, or
    /// requeued. Requeues are buffered (not pushed onto shard queues)
    /// because the pipelined caller's workers hold the shards.
    fn route(
        &mut self,
        seq: u64,
        plan: Planned,
        merge: &mut BTreeMap<u64, MergeItem>,
        requeues: &mut Vec<(usize, u64, Op)>,
        report: &mut EpochReport,
    ) -> Option<(usize, ShardOp)> {
        match plan {
            Planned::Execute { shard, op } => {
                let mut op = op;
                match &mut op {
                    // The global DP ledger debits here — still
                    // sequential, still in `seq` order — so the spend
                    // sequence and the refusal frontier are invariant
                    // under shard and worker counts *and* under
                    // pipelining.
                    ShardOp::SensorEvent { epsilon_micro, noise_seed, .. } => {
                        let remaining = self.dp_budget_micro.saturating_sub(self.dp.spent_micro);
                        if *epsilon_micro > remaining {
                            self.dp.refused += 1;
                            self.metrics.dp_refused.incr();
                            self.metrics.ops_failed.incr();
                            report.failed += 1;
                            if self.recorder.is_enabled() {
                                self.trace(
                                    seq,
                                    TraceStage::BudgetRefused {
                                        op: "sensor_event",
                                        requested_micro: *epsilon_micro,
                                        remaining_micro: remaining,
                                    },
                                );
                            }
                            return None;
                        }
                        self.dp.spent_micro += *epsilon_micro;
                        *noise_seed = self.pet_noise_seed ^ seq;
                    }
                    ShardOp::QuadraticVote { .. } => {
                        self.metrics.governance_quadratic_votes.incr();
                    }
                    ShardOp::Appeal { .. } => self.metrics.governance_appeals.incr(),
                    _ => {}
                }
                Some((shard, op))
            }
            Planned::Merge(item) => {
                if self.recorder.is_enabled() {
                    if let MergeItem::Deferred(ref op) = item {
                        self.trace(seq, TraceStage::Deferred { op: op.label() });
                    }
                }
                merge.insert(seq, item);
                None
            }
            Planned::Requeue { shard, op } => {
                self.trace(seq, TraceStage::Requeued { shard: shard as u32 });
                requeues.push((shard, seq, op));
                None
            }
        }
    }
}

/// One shard's slice of an epoch.
struct ShardWork {
    skip: bool,
    batch: Vec<(u64, ShardOp)>,
}

/// Per-epoch constants every shard worker shares: the clock delta, the
/// registration grant, and the logical timestamp (epoch + tick) stamped
/// onto worker-side trace events.
#[derive(Clone, Copy)]
struct EpochCtx {
    tick_delta: u64,
    grant: u64,
    epoch: u64,
    now: u64,
}

/// `(height, header digest)` of the chain state a just-committed epoch
/// sealed: the last block of the commit, or the current head when the
/// commit had nothing to seal (the head is still the auditable state
/// the ops executed under).
fn sealed_head(platform: &MetaversePlatform) -> (u64, [u8; 32]) {
    platform
        .last_sealed_blocks()
        .last()
        .map(|(h, d)| (*h, d.0))
        .unwrap_or_else(|| (platform.chain().height(), platform.chain().head().id().0))
}

/// What one shard's worker came back with.
struct ShardOutcome {
    shard: usize,
    skipped: bool,
    commit_ok: bool,
    results: Vec<(u64, Result<Option<WorkerEffect>, CoreError>)>,
    /// Ops-plane heat counts for this shard's epoch slice (always
    /// filled — three `u64` adds per op; `queue_depth` is topped up at
    /// the merge barrier where requeue timing is path-independent).
    heat: ShardHeatSample,
}

/// Runs every shard's epoch slice, fanning out across `workers` scoped
/// threads (`1` runs inline on the caller's thread — genuinely
/// sequential, which is what the determinism gate compares against).
/// Outcomes are returned in shard order regardless of which thread
/// finished first, so thread timing never reaches observable state.
fn run_shard_phase(
    shards: &mut [Shard],
    work: Vec<ShardWork>,
    workers: usize,
    ctx: EpochCtx,
    metrics: &GatewayMetrics,
) -> Vec<ShardOutcome> {
    debug_assert_eq!(shards.len(), work.len());
    if workers <= 1 || shards.len() <= 1 {
        return shards
            .iter_mut()
            .zip(work)
            .enumerate()
            .map(|(i, (shard, w))| run_shard_epoch(i, shard, w, ctx, metrics))
            .collect();
    }
    let chunk = shards.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut base = 0usize;
        let mut work_iter = work.into_iter();
        for shard_chunk in shards.chunks_mut(chunk) {
            let chunk_work: Vec<ShardWork> = work_iter.by_ref().take(shard_chunk.len()).collect();
            let start = base;
            base += shard_chunk.len();
            handles.push(scope.spawn(move || {
                shard_chunk
                    .iter_mut()
                    .zip(chunk_work)
                    .enumerate()
                    .map(|(j, (shard, w))| run_shard_epoch(start + j, shard, w, ctx, metrics))
                    .collect::<Vec<ShardOutcome>>()
            }));
        }
        let mut outcomes: Vec<ShardOutcome> = handles
            .into_iter()
            // A worker panic re-raises on the caller's thread with its
            // original payload instead of a second, less useful panic.
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
        outcomes.sort_by_key(|o| o.shard);
        outcomes
    })
}

/// One shard's whole epoch slice: batch execution, clock advance, and
/// ledger commit, all on (at most) one worker thread. Skipped shards
/// only advance their clock, keeping them in lockstep with the router.
fn run_shard_epoch(
    index: usize,
    shard: &mut Shard,
    work: ShardWork,
    ctx: EpochCtx,
    metrics: &GatewayMetrics,
) -> ShardOutcome {
    if work.skip {
        shard.platform.advance_ticks(ctx.tick_delta);
        return ShardOutcome {
            shard: index,
            skipped: true,
            commit_ok: true,
            results: Vec::new(),
            heat: ShardHeatSample::default(),
        };
    }
    metrics.batch_size.record(work.batch.len() as u64);
    let span = metrics.shard_batch_ns[index].start_span();
    let mut results = Vec::with_capacity(work.batch.len());
    let mut heat = ShardHeatSample::default();
    for (seq, op) in work.batch {
        let result = exec_shard_op(index, shard, seq, op, ctx);
        heat.routed += 1;
        if result.is_ok() {
            heat.executed += 1;
        } else {
            heat.failed += 1;
        }
        if shard.recorder.is_enabled() {
            shard.recorder.record(TraceEvent {
                seq,
                epoch: ctx.epoch,
                tick: ctx.now,
                stage: TraceStage::Executed { shard: index as u32, ok: result.is_ok() },
            });
        }
        results.push((seq, result));
    }
    drop(span);
    shard.platform.advance_ticks(ctx.tick_delta);
    let commit_ok = shard.platform.commit_epoch().is_ok();
    if commit_ok && shard.recorder.is_enabled() {
        // The commit just sealed this epoch's records: every op that
        // executed ok is now durable in the named block.
        let (height, block) = sealed_head(&shard.platform);
        let committed: Vec<u64> =
            results.iter().filter(|(_, r)| r.is_ok()).map(|(seq, _)| *seq).collect();
        for seq in committed {
            shard.recorder.record(TraceEvent {
                seq,
                epoch: ctx.epoch,
                tick: ctx.now,
                stage: TraceStage::CommittedInEpoch { shard: index as u32, height, block },
            });
        }
    }
    ShardOutcome { shard: index, skipped: false, commit_ok, results, heat }
}

/// The pipelined counterpart of [`run_shard_epoch`] for one worker's
/// chunk of shards: ops arrive over a channel *while the plan loop is
/// still running* and execute immediately; the epoch tail (clock
/// advance, ledger commit, commit traces) runs once the channel closes.
/// Per-shard op order equals the batched path's batch order (the plan
/// loop sends in admission-`seq` order and the channel is FIFO), so
/// every observable — results, traces, sealed blocks — is identical;
/// only wall-clock overlap differs.
fn stream_shard_chunk(
    start: usize,
    shards: &mut [Shard],
    skipped: &[bool],
    rx: mpsc::Receiver<(usize, u64, ShardOp)>,
    ctx: EpochCtx,
    metrics: &GatewayMetrics,
) -> Vec<ShardOutcome> {
    debug_assert_eq!(shards.len(), skipped.len());
    // Per shard: (admission seq, op outcome), in channel arrival order.
    type ShardResults = Vec<(u64, Result<Option<WorkerEffect>, CoreError>)>;
    let mut results: Vec<ShardResults> = (0..shards.len()).map(|_| Vec::new()).collect();
    let mut exec_ns = vec![0u64; shards.len()];
    let mut heats = vec![ShardHeatSample::default(); shards.len()];
    while let Ok((local, seq, op)) = rx.recv() {
        let started = std::time::Instant::now();
        let result = exec_shard_op(start + local, &mut shards[local], seq, op, ctx);
        exec_ns[local] += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        heats[local].routed += 1;
        if result.is_ok() {
            heats[local].executed += 1;
        } else {
            heats[local].failed += 1;
        }
        let shard = &mut shards[local];
        if shard.recorder.is_enabled() {
            shard.recorder.record(TraceEvent {
                seq,
                epoch: ctx.epoch,
                tick: ctx.now,
                stage: TraceStage::Executed {
                    shard: (start + local) as u32,
                    ok: result.is_ok(),
                },
            });
        }
        results[local].push((seq, result));
    }
    // Channel closed: the plan loop is done, every op for this chunk
    // has executed. Run each shard's epoch tail exactly as the batched
    // path would.
    shards
        .iter_mut()
        .zip(results)
        .enumerate()
        .map(|(j, (shard, results))| {
            if skipped[j] {
                shard.platform.advance_ticks(ctx.tick_delta);
                return ShardOutcome {
                    shard: start + j,
                    skipped: true,
                    commit_ok: true,
                    results: Vec::new(),
                    heat: ShardHeatSample::default(),
                };
            }
            metrics.batch_size.record(results.len() as u64);
            metrics.shard_batch_ns[start + j].record(exec_ns[j]);
            shard.platform.advance_ticks(ctx.tick_delta);
            let commit_ok = shard.platform.commit_epoch().is_ok();
            if commit_ok && shard.recorder.is_enabled() {
                let (height, block) = sealed_head(&shard.platform);
                let committed: Vec<u64> =
                    results.iter().filter(|(_, r)| r.is_ok()).map(|(seq, _)| *seq).collect();
                for seq in committed {
                    shard.recorder.record(TraceEvent {
                        seq,
                        epoch: ctx.epoch,
                        tick: ctx.now,
                        stage: TraceStage::CommittedInEpoch {
                            shard: (start + j) as u32,
                            height,
                            block,
                        },
                    });
                }
            }
            ShardOutcome { shard: start + j, skipped: false, commit_ok, results, heat: heats[j] }
        })
        .collect()
}

/// Executes one pre-routed op against its own shard. No cross-shard
/// state is reachable from here — cross-shard consequences come back as
/// [`WorkerEffect`]s for the merge phase. `index`/`seq`/`ctx` exist so
/// worker-side trace events (PET filtering, moderation escalation) land
/// in the shard's staging ring with the right causal stamps.
fn exec_shard_op(
    index: usize,
    shard: &mut Shard,
    seq: u64,
    op: ShardOp,
    ctx: EpochCtx,
) -> Result<Option<WorkerEffect>, CoreError> {
    let grant = ctx.grant;
    match op {
        ShardOp::Register { user } => {
            shard.platform.register_user(&user)?;
            shard.platform.deposit(&user, grant);
            Ok(Some(WorkerEffect::Registered { user }))
        }
        ShardOp::EnterWorld { user, handle, x, y } => {
            shard.platform.enter_world(&user, &handle, Vec2::new(x, y))?;
            Ok(None)
        }
        ShardOp::Propose { user, global, scope, title } => {
            let local = shard.platform.propose(&scope, &user, &title)?;
            Ok(Some(WorkerEffect::ProposalCreated { global, scope, local }))
        }
        ShardOp::Vote { user, scope, local, support } => {
            shard.platform.vote(&scope, &user, local, support)?;
            Ok(None)
        }
        ShardOp::Rate { rater, subject, positive } => {
            if positive {
                shard.platform.endorse(&rater, &subject)?;
            } else {
                let action = shard.platform.report(&rater, &subject)?;
                // A report that pushed the subject past a warning is an
                // escalation — the moderation-flood scenarios audit how
                // deep the ladder went, so it joins the causal chain.
                if shard.recorder.is_enabled()
                    && !matches!(action, ModAction::Deferred | ModAction::Warn)
                {
                    shard.recorder.record(TraceEvent {
                        seq,
                        epoch: ctx.epoch,
                        tick: ctx.now,
                        stage: TraceStage::Escalated {
                            shard: index as u32,
                            action: action.label(),
                        },
                    });
                }
            }
            Ok(None)
        }
        ShardOp::Mint { user, global, uri, quality } => {
            let local = shard.platform.mint_asset(&user, &uri, uri.as_bytes(), quality)?;
            Ok(Some(WorkerEffect::AssetMinted { global, local }))
        }
        ShardOp::List { user, local, price } => {
            shard.platform.list_asset(&user, local, price)?;
            Ok(None)
        }
        ShardOp::Buy { user, local } => {
            shard.platform.buy_asset(&user, local)?;
            Ok(None)
        }
        ShardOp::BuyRemote { buyer, asset, to_shard, price } => {
            shard.platform.withdraw(&buyer, price)?;
            Ok(Some(WorkerEffect::RemoteBuy { buyer, asset, to_shard, price }))
        }
        ShardOp::RecordCollection { user, subject, sensor, purpose, basis, bytes } => {
            let tick = shard.platform.tick();
            shard.platform.record_collection(DataCollectionEvent {
                collector: user,
                subject,
                sensor,
                purpose,
                basis,
                tick,
                bytes,
            });
            Ok(None)
        }
        ShardOp::TwinSync { property, delta } => {
            shard.channel.step(&mut shard.twin, property as usize % 8, delta);
            Ok(None)
        }
        ShardOp::QuadraticVote { user, scope, local, support, votes } => {
            shard.platform.vote_quadratic(&scope, &user, local, support, votes)?;
            Ok(None)
        }
        ShardOp::SensorEvent { user, class, reading, epsilon_micro, noise_seed } => {
            // The PET stage runs on the raw reading before anything is
            // recorded. Noise draws from the event's own seeded stream,
            // so the released value for a given admission is identical
            // at every shard and worker count.
            let mut samples = vec![SensorSample {
                sensor: class,
                values: vec![reading],
                tick: shard.platform.tick(),
            }];
            let samples_in = samples.len() as u32;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(noise_seed);
            shard.pet.apply(&mut samples, &mut rng).map_err(CoreError::Privacy)?;
            let samples_out = samples.len() as u32;
            shard.platform.ingest_sensor(
                &user,
                class,
                epsilon_micro as f64 / 1e6,
                samples.iter().map(|s| s.values.len() as u64 * 8).sum(),
            )?;
            if shard.recorder.is_enabled() {
                shard.recorder.record(TraceEvent {
                    seq,
                    epoch: ctx.epoch,
                    tick: ctx.now,
                    stage: TraceStage::PetFiltered {
                        shard: index as u32,
                        samples_in,
                        samples_out,
                        epsilon_micro,
                    },
                });
            }
            Ok(Some(WorkerEffect::SensorReleased { micro: epsilon_micro }))
        }
        ShardOp::Appeal { user } => {
            let verdict = shard.platform.appeal_moderation(&user)?;
            if shard.recorder.is_enabled() {
                let action = match verdict {
                    AppealVerdict::Granted => "restore",
                    AppealVerdict::Upheld(action) => action.label(),
                };
                shard.recorder.record(TraceEvent {
                    seq,
                    epoch: ctx.epoch,
                    tick: ctx.now,
                    stage: TraceStage::Escalated { shard: index as u32, action },
                });
            }
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GatewayConfigBuilder;
    use crate::error::GatewayError;
    use crate::ingress::Ingress;
    use metaverse_resilience::FaultKind;

    fn config(shards: usize) -> GatewayConfigBuilder {
        GatewayConfig::builder()
            .shards(shards)
            .breaker(BreakerConfig {
                failure_threshold: 2,
                failure_window: 10,
                cooldown: 3,
                probation_successes: 1,
            })
            // Shallow key trees keep per-test keygen cheap; these
            // workloads seal far fewer than 2^6 blocks per shard.
            .key_tree_depth(6)
    }

    fn register_all(router: &mut ShardRouter, users: &[&str]) {
        for u in users {
            router.ingress(Op::Register { user: (*u).into() }).unwrap();
        }
        router.execute_epoch();
    }

    #[test]
    fn ring_is_stable_and_covers_all_shards() {
        let router = ShardRouter::new(config(4).build());
        let mut seen = [false; 4];
        for i in 0..256 {
            let shard = router.home_shard(&format!("user-{i}"));
            assert!(shard < 4);
            seen[shard] = true;
            assert_eq!(shard, router.home_shard(&format!("user-{i}")), "stable");
        }
        assert!(seen.iter().all(|s| *s), "256 users should land on every shard");
    }

    #[test]
    fn register_grants_tokens_and_joins_governance_everywhere() {
        let mut router = ShardRouter::new(config(2).build());
        register_all(&mut router, &["alice", "bob", "carol", "dave"]);
        let report = router.conservation_report();
        assert_eq!(report.users, 4);
        assert_eq!(report.tokens_minted, 4 * router.config.initial_grant);
        assert_eq!(report.tokens_on_shards, report.tokens_minted);
        assert!(report.conserved);
        // A proposal on any shard accepts votes from users homed on the
        // other shard (global governance membership).
        let shard_of = |r: &ShardRouter, u: &str| r.sessions[u].shard();
        let (a, b) = ("alice", "bob");
        if shard_of(&router, a) != shard_of(&router, b) {
            router
                .ingress(Op::Propose {
                    user: a.into(),
                    proposal: 0,
                    scope: "root".into(),
                    title: "cross-shard ballot".into(),
                })
                .unwrap();
            router.execute_epoch();
            router.ingress(Op::Vote { user: b.into(), proposal: 0, support: true }).unwrap();
            let report = router.execute_epoch();
            assert_eq!(report.failed, 0, "cross-shard vote must land");
        }
    }

    #[test]
    fn unknown_user_is_refused_with_typed_error() {
        let mut router = ShardRouter::new(config(2).build());
        let err = router
            .ingress(Op::Endorse { user: "ghost".into(), subject: "alice".into() })
            .unwrap_err();
        assert!(matches!(err, GatewayError::Admission(AdmissionError::UnknownUser { .. })));
        let snap = router.telemetry_snapshot();
        assert_eq!(snap.counters[names::gateway::REJECTED_UNKNOWN_USER], 1);
    }

    #[test]
    fn cross_shard_purchase_conserves_tokens() {
        let mut router = ShardRouter::new(config(4).build());
        // Find two users on different shards.
        let users: Vec<String> = (0..32).map(|i| format!("trader-{i}")).collect();
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        register_all(&mut router, &refs);
        let creator = users
            .iter()
            .find(|u| router.sessions[*u].shard() != router.sessions[&users[0]].shard())
            .expect("32 users span at least two shards")
            .clone();
        let buyer = users[0].clone();
        router
            .ingress(Op::Mint {
                user: creator.clone(),
                asset: 0,
                uri: "asset://0".into(),
                quality: 0.9,
            })
            .unwrap();
        router.execute_epoch();
        router.ingress(Op::List { user: creator.clone(), asset: 0, price: 500 }).unwrap();
        router.execute_epoch();
        router.ingress(Op::Buy { user: buyer.clone(), asset: 0 }).unwrap();
        router.execute_epoch();
        router.drain(8);
        let ledger = router.settlement_ledger();
        assert_eq!(ledger.applied, 1, "purchase settles: {:?}", ledger.entries);
        assert_eq!(ledger.escrow, 0);
        let report = router.conservation_report();
        assert!(report.conserved, "{report:?}");
        // Ownership actually moved.
        let loc = router.assets[&0];
        assert_eq!(router.shards[loc.shard].platform.assets().get(loc.local).unwrap().owner, buyer);
    }

    #[test]
    fn stalled_shard_trips_breaker_and_other_shards_keep_committing() {
        let mut router = ShardRouter::new(
            config(2)
                .resilience(ResilienceConfig { enabled: false, ..ResilienceConfig::default() })
                .build(),
        );
        let users: Vec<String> = (0..16).map(|i| format!("user-{i}")).collect();
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        register_all(&mut router, &refs);
        // A rogue validator stalls shard 0's commits for a long window.
        router.install_shard_fault_plan(
            0,
            FaultPlan::new().schedule(
                0,
                10_000,
                FaultKind::RogueValidator { validator: "validator-0".into() },
            ),
        );
        let victim = users.iter().find(|u| router.sessions[*u].shard() == 0).unwrap().clone();
        let survivor = users.iter().find(|u| router.sessions[*u].shard() == 1).unwrap().clone();
        let peer = users
            .iter()
            .find(|u| router.sessions[*u].shard() == 0 && **u != victim)
            .unwrap()
            .clone();
        // Seed shard 0's mempool with one ledger record: the aborted
        // commit keeps it queued, so every later epoch re-attempts the
        // commit and fails again until the breaker opens (threshold 2).
        router
            .ingress(Op::Endorse { user: victim.clone(), subject: peer })
            .unwrap();
        let mut tripped = false;
        for _ in 0..4 {
            let report = router.execute_epoch();
            if !report.commit_failures.is_empty() {
                tripped = matches!(router.shard_breaker_state(0), BreakerState::Open { .. });
                if tripped {
                    break;
                }
            }
        }
        assert!(tripped, "shard 0 breaker should open after repeated commit failures");
        // New ops for shard 0 are refused with the typed error...
        let err = router
            .ingress(Op::TwinSync { user: victim, property: 0, delta: 1.0 })
            .unwrap_err();
        assert!(matches!(
            err,
            GatewayError::Admission(AdmissionError::ShardUnavailable { shard: 0 })
        ));
        // ...while shard 1 still accepts and commits.
        router
            .ingress(Op::TwinSync { user: survivor, property: 0, delta: 1.0 })
            .unwrap();
        let report = router.execute_epoch();
        assert!(report.skipped_shards.contains(&0));
        assert_eq!(report.committed, 1);
        let snap = router.telemetry_snapshot();
        assert!(snap.counters[names::gateway::REJECTED_SHARD_DOWN] >= 1);
        assert!(snap.counters[names::gateway::SHARD_EPOCHS_SKIPPED] >= 1);
    }

    #[test]
    fn single_shard_runs_everything_locally() {
        let mut router = ShardRouter::new(config(1).build());
        register_all(&mut router, &["solo-a", "solo-b"]);
        router
            .ingress(Op::Mint {
                user: "solo-a".into(),
                asset: 0,
                uri: "asset://0".into(),
                quality: 0.8,
            })
            .unwrap();
        router.execute_epoch();
        router.ingress(Op::List { user: "solo-a".into(), asset: 0, price: 100 }).unwrap();
        router.execute_epoch();
        router.ingress(Op::Buy { user: "solo-b".into(), asset: 0 }).unwrap();
        router.execute_epoch();
        assert_eq!(router.settlement_ledger().enqueued, 0, "no cross-shard traffic on 1 shard");
        assert!(router.conservation_report().conserved);
    }

    #[test]
    fn zero_burst_rate_limit_refuses_first_register_without_panicking() {
        use crate::session::RateLimit;
        let mut router = ShardRouter::new(
            config(2)
                .rate_limit(RateLimit { burst: 0, milli_per_tick: 1000 })
                .mailbox_capacity(8)
                .build(),
        );
        let err = router.ingress(Op::Register { user: "alice".into() }).unwrap_err();
        assert!(
            matches!(
                err,
                GatewayError::Admission(AdmissionError::RateLimited {
                    retry_in_ticks: u64::MAX,
                    ..
                })
            ),
            "burst 0 must refuse with an unreachable retry, got {err:?}"
        );
        assert_eq!(router.session_count(), 0, "refused register leaves no half-open session");
        let snap = router.telemetry_snapshot();
        assert_eq!(snap.counters[names::gateway::REJECTED_RATE_LIMITED], 1);
        // The same user can register later under a saner policy — the
        // refusal above must not read as a duplicate.
        let mut sane = ShardRouter::new(config(2).build());
        sane.ingress(Op::Register { user: "alice".into() }).expect("default policy admits");
    }

    #[test]
    fn duplicate_register_is_refused_at_admission() {
        let mut router = ShardRouter::new(config(2).build());
        router.ingress(Op::Register { user: "alice".into() }).unwrap();
        // Duplicate in the same epoch (session exists, op still mailboxed)...
        let err = router.ingress(Op::Register { user: "alice".into() }).unwrap_err();
        assert!(matches!(err, GatewayError::Admission(AdmissionError::AlreadyRegistered { ref user }) if user == "alice"));
        let report = router.execute_epoch();
        assert_eq!(report.committed, 1);
        assert_eq!(report.failed, 0);
        // ...and after the registration committed.
        let err = router.ingress(Op::Register { user: "alice".into() }).unwrap_err();
        assert!(matches!(err, GatewayError::Admission(AdmissionError::AlreadyRegistered { ref user }) if user == "alice"));
        // The refusal costs nothing downstream: no mailbox slot, no
        // batch slot, no failed-op inflation.
        let report = router.execute_epoch();
        assert_eq!(report.committed, 0);
        assert_eq!(report.failed, 0);
        let snap = router.telemetry_snapshot();
        assert_eq!(snap.counters[names::gateway::REJECTED_DUPLICATE_REGISTER], 2);
        assert_eq!(snap.counters[names::gateway::OPS_FAILED], 0);
    }

    #[test]
    fn router_and_shard_clocks_stay_in_lockstep_across_skipped_epochs() {
        // Resilience off: the resilient commit path can advance ticks
        // internally during rogue-validator retries, which is its own
        // (documented) clock domain; lockstep is asserted for the
        // router-driven delta.
        for epoch_ticks in [0u64, 3] {
            let mut router = ShardRouter::new(
                config(2)
                    .epoch_ticks(epoch_ticks)
                    .resilience(ResilienceConfig { enabled: false, ..ResilienceConfig::default() })
                    .build(),
            );
            let users: Vec<String> = (0..16).map(|i| format!("user-{i}")).collect();
            let refs: Vec<&str> = users.iter().map(String::as_str).collect();
            register_all(&mut router, &refs);
            router.install_shard_fault_plan(
                0,
                FaultPlan::new().schedule(
                    0,
                    10_000,
                    FaultKind::RogueValidator { validator: "validator-0".into() },
                ),
            );
            let victim =
                users.iter().find(|u| router.sessions[*u].shard() == 0).unwrap().clone();
            let peer = users
                .iter()
                .find(|u| router.sessions[*u].shard() == 0 && **u != victim)
                .unwrap()
                .clone();
            // Seed shard 0's mempool so its commits keep failing and
            // the breaker opens — later epochs then *skip* shard 0.
            router.ingress(Op::Endorse { user: victim, subject: peer }).unwrap();
            let mut saw_skip = false;
            for _ in 0..8 {
                let report = router.execute_epoch();
                saw_skip |= !report.skipped_shards.is_empty();
                for i in 0..router.shard_count() {
                    assert_eq!(
                        router.shard_platform(i).tick(),
                        router.now(),
                        "shard {i} clock must match the router at epoch_ticks={epoch_ticks}"
                    );
                }
            }
            assert!(saw_skip, "the stalled shard should have been skipped at least once");
        }
    }

    #[test]
    fn worker_thread_knob_resolves_within_bounds() {
        let r = ShardRouter::new(config(4).workers(7).build());
        assert_eq!(r.worker_threads(), 4, "capped at the shard count");
        let r = ShardRouter::new(config(4).workers(1).build());
        assert_eq!(r.worker_threads(), 1);
        let r = ShardRouter::new(config(2).workers(0).build());
        assert!((1..=2).contains(&r.worker_threads()), "auto sizes to host, capped at shards");
    }

    #[test]
    fn parallel_epochs_match_sequential_for_a_mixed_workload() {
        use crate::workload::{WorkloadConfig, WorkloadEngine};
        let workload = WorkloadConfig { users: 24, ops: 600, seed: 99, ..Default::default() };
        let engine = WorkloadEngine::new(workload);
        let run = |workers: usize| {
            let mut router =
                ShardRouter::new(config(4).workers(workers).telemetry(false).build());
            let report = engine.drive(&mut router, 128);
            (
                format!("{:?}", router.settlement_ledger()),
                router.conservation_report(),
                router.asset_owners(),
                report,
            )
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential.0, parallel.0, "settlement ledgers must be byte-identical");
        assert_eq!(sequential.1, parallel.1, "conservation reports must match");
        assert!(sequential.1.conserved);
        assert_eq!(sequential.2, parallel.2, "asset ownership must match");
        assert_eq!(sequential.3, parallel.3, "drive reports must match");
    }

    fn traced(shards: usize) -> GatewayConfigBuilder {
        config(shards).tracing(1 << 14)
    }

    #[test]
    fn trace_of_follows_a_local_op_from_admission_to_ledger_commit() {
        let mut router = ShardRouter::new(traced(1).build());
        let seq = router.ingress(Op::Register { user: "alice".into() }).unwrap();
        router.execute_epoch();
        let events = router.trace_of(seq);
        let labels: Vec<&str> = events.iter().map(|e| e.stage.label()).collect();
        assert_eq!(
            labels,
            ["admitted", "routed_to_shard", "executed", "committed_in_epoch"],
            "complete causal chain for a local op"
        );
        match events.last().unwrap().stage {
            TraceStage::CommittedInEpoch { height, block, .. } => {
                let chain = router.shard_platform(0).chain();
                let sealed = chain.block_at(height).expect("traced height exists on-chain");
                assert_eq!(sealed.id().0, block, "trace names the real committing block");
            }
            ref other => panic!("expected committed_in_epoch last, got {other:?}"),
        }
    }

    #[test]
    fn refusals_are_traced_without_consuming_admission_seqs() {
        let mut router = ShardRouter::new(traced(1).build());
        let err = router
            .ingress(Op::Endorse { user: "ghost".into(), subject: "alice".into() })
            .unwrap_err();
        assert!(matches!(err, GatewayError::Admission(AdmissionError::UnknownUser { .. })));
        let seq = router.ingress(Op::Register { user: "alice".into() }).unwrap();
        assert_eq!(seq, 0, "a refusal must not consume an admission seq");
        router.execute_epoch();
        let events = router.trace_of(0);
        assert!(
            matches!(
                events[0].stage,
                TraceStage::Refused { op: "endorse", cause: "unknown_user" }
            ),
            "refusal borrows the next unassigned seq: {events:?}"
        );
        assert_eq!(events[1].stage.label(), "admitted");
        let query = router.trace_query();
        let drops = query.drops();
        assert_eq!(drops.len(), 1, "only the refusal is a drop: {drops:?}");
    }

    #[test]
    fn cross_shard_purchase_trace_and_provenance_name_the_committing_block() {
        let mut router = ShardRouter::new(traced(4).build());
        let users: Vec<String> = (0..32).map(|i| format!("trader-{i}")).collect();
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        register_all(&mut router, &refs);
        let creator = users
            .iter()
            .find(|u| router.sessions[*u].shard() != router.sessions[&users[0]].shard())
            .expect("32 users span at least two shards")
            .clone();
        let buyer = users[0].clone();
        router
            .ingress(Op::Mint {
                user: creator.clone(),
                asset: 0,
                uri: "asset://0".into(),
                quality: 0.9,
            })
            .unwrap();
        router.execute_epoch();
        router.ingress(Op::List { user: creator, asset: 0, price: 500 }).unwrap();
        router.execute_epoch();
        let buy_seq = router.ingress(Op::Buy { user: buyer.clone(), asset: 0 }).unwrap();
        router.drain(8);
        // Settlement records seal at the target shard's *next* commit.
        router.execute_epoch();
        let labels: Vec<&str> =
            router.trace_of(buy_seq).iter().map(|e| e.stage.label()).collect();
        for stage in ["admitted", "routed_to_shard", "executed", "escrowed", "settled"] {
            assert!(labels.contains(&stage), "buy trace misses {stage}: {labels:?}");
        }
        let provenance = router.provenance_report();
        assert_eq!(provenance.len(), 1, "{provenance:?}");
        let rec = &provenance[0];
        assert_eq!(rec.seq, buy_seq);
        let height = rec.height.expect("extra epoch seals the settlement records");
        assert!(height > rec.floor_height);
        let chain = router.shard_platform(rec.shard).chain();
        let sealed = chain.block_at(height).expect("provenance height exists");
        assert_eq!(sealed.id().0, rec.block.unwrap(), "provenance names the real block");
        assert!(
            sealed.transactions.iter().any(|tx| matches!(
                &tx.payload,
                TxPayload::AssetTransfer { to, price: 500, .. } if *to == buyer
            )),
            "the named block carries the purchase's transfer record"
        );
    }

    #[test]
    fn traces_are_byte_identical_at_one_worker_and_many() {
        use crate::workload::{WorkloadConfig, WorkloadEngine};
        let workload = WorkloadConfig { users: 24, ops: 600, seed: 99, ..Default::default() };
        let engine = WorkloadEngine::new(workload);
        let run = |workers: usize| {
            let mut router = ShardRouter::new(
                config(4).workers(workers).telemetry(false).tracing(1 << 16).build(),
            );
            engine.drive(&mut router, 128);
            (router.trace_jsonl(), format!("{:?}", router.settlement_ledger()))
        };
        let (seq_trace, seq_ledger) = run(1);
        let (par_trace, par_ledger) = run(4);
        assert!(!seq_trace.is_empty(), "the workload must produce trace events");
        assert_eq!(seq_trace, par_trace, "traces must be byte-identical at 1 vs 4 workers");
        assert_eq!(par_ledger, seq_ledger, "tracing must not perturb settlement");
    }

    #[test]
    fn disabled_tracing_records_nothing_and_reports_empty() {
        let mut router = ShardRouter::new(config(2).build());
        register_all(&mut router, &["alice", "bob"]);
        router.ingress(Op::Endorse { user: "alice".into(), subject: "bob".into() }).unwrap();
        router.execute_epoch();
        let stats = router.trace_stats();
        assert_eq!(stats.capacity, 0, "default config disables tracing");
        assert_eq!(stats.recorded, 0);
        assert!(router.trace_jsonl().is_empty());
        assert!(router.provenance_report().is_empty());
        assert!(router.trace_of(0).is_empty());
    }

    /// The escrow/settle race under faults: a cross-shard purchase
    /// whose target shard's breaker opens *between* the escrow
    /// withdrawal (merge phase) and the settlement pass of the same
    /// epoch must hold the funds in flight — requeued, visible to the
    /// conservation audit — and release them when the entry
    /// terminates, never minting or burning supply.
    #[test]
    fn breaker_opening_between_escrow_and_settle_conserves_funds() {
        let mut router = ShardRouter::new(
            config(2)
                .resilience(ResilienceConfig { enabled: false, ..ResilienceConfig::default() })
                .build(),
        );
        let users: Vec<String> = (0..16).map(|i| format!("user-{i}")).collect();
        let refs: Vec<&str> = users.iter().map(String::as_str).collect();
        register_all(&mut router, &refs);
        let creator = users.iter().find(|u| router.sessions[*u].shard() == 0).unwrap().clone();
        let peer = users
            .iter()
            .find(|u| router.sessions[*u].shard() == 0 && **u != creator)
            .unwrap()
            .clone();
        let buyer = users.iter().find(|u| router.sessions[*u].shard() == 1).unwrap().clone();
        // Mint and list on shard 0 while it is still healthy.
        router
            .ingress(Op::Mint { user: creator.clone(), asset: 0, uri: "a://0".into(), quality: 0.8 })
            .unwrap();
        router.execute_epoch();
        router.ingress(Op::List { user: creator.clone(), asset: 0, price: 500 }).unwrap();
        router.execute_epoch();
        // Stall shard 0's commits and seed its mempool so every later
        // epoch re-attempts the commit and fails (breaker threshold 2).
        router.install_shard_fault_plan(
            0,
            FaultPlan::new().schedule(
                0,
                10_000,
                FaultKind::RogueValidator { validator: "validator-0".into() },
            ),
        );
        router.ingress(Op::Endorse { user: creator.clone(), subject: peer }).unwrap();
        let report = router.execute_epoch();
        assert!(report.commit_failures.contains(&0), "first failure lands");
        assert!(
            !matches!(router.shard_breaker_state(0), BreakerState::Open { .. }),
            "one failure is under the threshold — the breaker must still admit"
        );
        // The buy epoch: escrow is withdrawn on the buyer's shard in
        // the merge phase; shard 0's second consecutive commit failure
        // opens the breaker at the same barrier; the settlement pass
        // then finds the target down and requeues the funded entry.
        router.ingress(Op::Buy { user: buyer.clone(), asset: 0 }).unwrap();
        let report = router.execute_epoch();
        assert!(report.commit_failures.contains(&0));
        assert!(matches!(router.shard_breaker_state(0), BreakerState::Open { .. }));
        assert_eq!(report.requeued, 1, "the funded entry is held, not dropped");
        let mid = router.conservation_report();
        assert_eq!(mid.tokens_in_flight, 500, "escrow visible to the audit");
        assert!(mid.conserved, "{mid:?}");
        // The audit stays green through every requeue and the entry's
        // terminal state.
        for _ in 0..12 {
            router.execute_epoch();
            let audit = router.conservation_report();
            assert!(audit.conserved, "{audit:?}");
        }
        let entry = router.ledger.entries.last().expect("entry reached a terminal state");
        assert!(entry.requeues >= 1, "the entry waited out at least one down epoch");
        assert!(
            matches!(entry.outcome, SettlementOutcome::Refunded | SettlementOutcome::Applied),
            "funds are released, not stranded: {entry:?}"
        );
        assert_eq!(router.ledger.escrow, 0, "nothing left in flight");
        let end = router.conservation_report();
        assert!(end.conserved && end.tokens_in_flight == 0, "{end:?}");
    }

    /// Regression for the settlement hot path's former panicking index:
    /// a purchase whose asset has vanished from the global directory
    /// must refund the escrow and keep the conservation audit green,
    /// not unwind mid-settlement.
    #[test]
    fn settlement_with_missing_directory_entry_refunds_the_escrow() {
        let mut router = ShardRouter::new(config(2).build());
        register_all(&mut router, &["alice", "bob", "carol", "dave"]);
        let buyer = "alice".to_string();
        let home = router.sessions[&buyer].shard();
        let price = 100;
        router.shards[home].platform.withdraw(&buyer, price).unwrap();
        router.ledger.escrow += price;
        router.enqueue_settlement(
            0,
            SettlementEffect::Purchase {
                buyer: buyer.clone(),
                asset: 9_999, // never minted
                from_shard: home,
                to_shard: (home + 1) % 2,
                price,
            },
        );
        router.execute_epoch();
        let entry = router.ledger.entries.last().expect("entry reached a terminal state");
        assert_eq!(entry.outcome, SettlementOutcome::Refunded);
        assert_eq!(router.ledger.escrow, 0, "escrow returned to the buyer's home shard");
        assert!(router.conservation_report().conserved);
    }

    /// Regression for the admission hot path's former
    /// `expect("session resolved above")`: a session that disappears
    /// between shard resolution and the mailbox offer degrades to the
    /// typed `UnknownUser` refusal.
    #[test]
    fn home_shard_is_total_and_admission_errors_stay_typed() {
        let mut router = ShardRouter::new(config(1).build());
        // Ring lookups are total even for adversarial keys.
        for key in ["", "a", "\u{10FFFF}", &"x".repeat(512)] {
            assert_eq!(router.home_shard(key), 0);
        }
        let err = router
            .ingress(Op::Endorse { user: "nobody".into(), subject: "alice".into() })
            .unwrap_err();
        assert!(matches!(err, GatewayError::Admission(AdmissionError::UnknownUser { .. })));
    }

    #[test]
    fn delegation_applies_globally_and_cycles_fail_uniformly() {
        let mut router = ShardRouter::new(traced(4).build());
        register_all(&mut router, &["alice", "bob"]);
        let seq = router
            .ingress(Op::Delegate { user: "alice".into(), delegate: "bob".into() })
            .unwrap();
        let report = router.execute_epoch();
        assert_eq!(report.committed, 1, "delegation commits once, globally");
        let labels: Vec<&str> =
            router.trace_of(seq).iter().map(|e| e.stage.label()).collect();
        assert!(labels.contains(&"delegated"), "got {labels:?}");
        // The reverse edge closes a cycle on *every* shard's replica,
        // so it fails — uniformly, not shard-by-shard.
        router
            .ingress(Op::Delegate { user: "bob".into(), delegate: "alice".into() })
            .unwrap();
        let report = router.execute_epoch();
        assert_eq!((report.committed, report.failed), (0, 1), "cycle refused everywhere");
        // Revocation reopens the edge for the other direction.
        router.ingress(Op::RevokeDelegation { user: "alice".into() }).unwrap();
        router.execute_epoch();
        router
            .ingress(Op::Delegate { user: "bob".into(), delegate: "alice".into() })
            .unwrap();
        let report = router.execute_epoch();
        assert_eq!(report.committed, 1, "edge is free after the revocation");
    }

    #[test]
    fn quadratic_votes_route_to_the_proposal_shard_and_defer_within_an_epoch() {
        let mut router = ShardRouter::new(config(4).build());
        register_all(&mut router, &["alice", "bob", "carol"]);
        // Same-epoch propose + vote: the vote defers past the worker
        // barrier and still lands.
        router
            .ingress(Op::Propose {
                user: "alice".into(),
                proposal: 7,
                scope: "root".into(),
                title: "quadratic".into(),
            })
            .unwrap();
        router
            .ingress(Op::QuadraticVote { user: "bob".into(), proposal: 7, support: true, votes: 3 })
            .unwrap();
        let report = router.execute_epoch();
        assert_eq!(report.failed, 0, "same-epoch quadratic vote must not fail");
        assert_eq!(report.committed, 2);
        // Next epoch the proposal directory is warm: the vote routes
        // straight to the proposal's shard.
        router
            .ingress(Op::QuadraticVote {
                user: "carol".into(),
                proposal: 7,
                support: false,
                votes: 2,
            })
            .unwrap();
        let report = router.execute_epoch();
        assert_eq!((report.committed, report.failed), (1, 0));
        // Overdrawing the voice-credit budget fails on the shard.
        router
            .ingress(Op::QuadraticVote {
                user: "carol".into(),
                proposal: 7,
                support: true,
                votes: 1_000,
            })
            .unwrap();
        let report = router.execute_epoch();
        assert_eq!((report.committed, report.failed), (0, 1), "credits are finite");
    }

    #[test]
    fn dp_budget_fails_closed_and_audits_identically_across_shard_counts() {
        let run = |shards: usize| {
            let mut router = ShardRouter::new(
                traced(shards)
                    .dp_budget_micro(3_000)
                    .dp_epsilon_per_event_micro(1_000)
                    .build(),
            );
            register_all(&mut router, &["alice", "bob"]);
            for i in 0..8 {
                let user = if i % 2 == 0 { "alice" } else { "bob" };
                router
                    .ingress(Op::SensorEvent {
                        user: user.into(),
                        class: SensorClass::HeartRate,
                        reading: 72.5 + i as f64,
                    })
                    .unwrap();
            }
            router.execute_epoch();
            (format!("{:?}", router.dp_budget_report()), router.trace_jsonl())
        };
        let (report, trace) = run(1);
        let parsed = run(4).0;
        assert_eq!(report, parsed, "DP audit must be shard-count-invariant");
        assert_eq!(run(2).0, report);
        assert!(report.contains("spent_micro: 3000"), "got {report}");
        assert!(report.contains("refused_events: 5"), "got {report}");
        assert!(report.contains("within_budget: true"), "got {report}");
        assert!(report.contains("reconciled: true"), "got {report}");
        assert!(trace.contains("\"budget_refused\""), "refusals join the causal trace");
        assert!(trace.contains("\"pet_filtered\""), "admitted events record PET filtering");
    }

    #[test]
    fn sensor_stream_traces_and_dp_audit_are_invariant_under_worker_count() {
        let run = |workers: usize| {
            let mut router =
                ShardRouter::new(traced(4).workers(workers).pet_noise_seed(42).build());
            register_all(&mut router, &["alice", "bob", "carol", "dave"]);
            for (i, user) in ["alice", "bob", "carol", "dave"].iter().cycle().take(32).enumerate()
            {
                router
                    .ingress(Op::SensorEvent {
                        user: (*user).into(),
                        class: SensorClass::Gaze,
                        reading: i as f64 / 3.0,
                    })
                    .unwrap();
            }
            router.execute_epoch();
            (format!("{:?}", router.dp_budget_report()), router.trace_jsonl())
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential.0, parallel.0, "DP audit never sees thread placement");
        assert_eq!(sequential.1, parallel.1, "pet_filtered events merge in seq order");
        assert!(sequential.1.contains("\"pet_filtered\""));
    }

    #[test]
    fn appeal_walks_the_moderation_ladder_into_the_trace() {
        let mut router = ShardRouter::new(traced(1).build());
        register_all(&mut router, &["alice", "bob", "carol"]);
        // Two reports push bob past a warning; the second escalation is
        // traced from the worker.
        for rater in ["alice", "carol"] {
            router.ingress(Op::Report { user: rater.into(), subject: "bob".into() }).unwrap();
            router.execute_epoch();
        }
        let seq = router.ingress(Op::AppealModeration { user: "bob".into() }).unwrap();
        let report = router.execute_epoch();
        assert_eq!(report.failed, 0, "the appeal itself must not fail");
        let labels: Vec<&str> =
            router.trace_of(seq).iter().map(|e| e.stage.label()).collect();
        assert!(labels.contains(&"escalated"), "verdict joins the chain: {labels:?}");
        let jsonl = router.trace_jsonl();
        assert!(jsonl.contains("\"escalated\""), "got {jsonl}");
    }
}
