//! Deterministic multi-user workload generation.
//!
//! A [`WorkloadEngine`] expands a seed and a [`WorkloadConfig`] into a
//! complete op stream **before** any routing happens: global asset and
//! proposal ids are assigned by the engine in creation order, actors
//! are drawn from a zipf popularity table, and burst phases
//! periodically concentrate traffic onto the hottest users. Because the
//! stream depends only on the seed — never on shard placement or
//! execution outcomes — the *same* byte-for-byte stream can be driven
//! into a 1-shard and an 8-shard router, which is what makes the
//! shard-count conservation experiments (E21) and the determinism CI
//! gate possible.
//!
//! The engine keeps a small optimistic model (who owns which asset,
//! what is listed, which proposals exist) purely to generate *sensible*
//! ops; if the platform refuses an op the model drifts harmlessly and
//! later ops touching that object simply fail and are counted.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use metaverse_ledger::audit::{LawfulBasis, SensorClass};

use crate::op::Op;
use crate::router::{EpochReport, ShardRouter};

/// Relative weights of the non-register op kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// World entry / movement ops.
    pub enter_world: u32,
    /// Governance proposals.
    pub propose: u32,
    /// Ballots.
    pub vote: u32,
    /// Positive ratings.
    pub endorse: u32,
    /// Negative ratings.
    pub report: u32,
    /// Asset mints.
    pub mint: u32,
    /// Sale listings.
    pub list: u32,
    /// Purchases.
    pub buy: u32,
    /// Audit-trail data-collection events.
    pub record_collection: u32,
    /// Digital-twin updates.
    pub twin_sync: u32,
    /// Vote delegations (liquid democracy).
    pub delegate: u32,
    /// Delegation revocations.
    pub revoke_delegation: u32,
    /// Credit-budgeted quadratic ballots.
    pub quadratic_vote: u32,
    /// PET-filtered biometric sensor events (metered against the
    /// gateway's global DP budget).
    pub sensor_event: u32,
    /// Moderation appeals.
    pub appeal: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        // A social-economy-heavy mix: most traffic is presence, twin
        // sync, and ratings; governance and minting are rarer.
        OpMix {
            enter_world: 10,
            propose: 2,
            vote: 10,
            endorse: 12,
            report: 6,
            mint: 8,
            list: 6,
            buy: 10,
            record_collection: 12,
            twin_sync: 24,
            // The governance/PET kinds default to zero so every
            // pre-existing seed expands to the same byte-for-byte
            // stream it always did; the scenario constructors
            // ([`WorkloadConfig::proposal_storm`] and friends) turn
            // them on.
            delegate: 0,
            revoke_delegation: 0,
            quadratic_vote: 0,
            sensor_event: 0,
            appeal: 0,
        }
    }
}

/// Periodic burst phases concentrating traffic on hot users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstConfig {
    /// Stream positions per period.
    pub period: usize,
    /// Leading positions of each period that burst.
    pub len: usize,
    /// Hot-set size as a divisor of the user count (`users / hot_divisor`,
    /// minimum 1).
    pub hot_divisor: usize,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig { period: 1000, len: 200, hot_divisor: 10 }
    }
}

/// Engine parameters; everything observable follows from these plus the
/// seed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Distinct users (each gets one register op first).
    pub users: usize,
    /// Ops generated after the registers.
    pub ops: usize,
    /// Stream seed.
    pub seed: u64,
    /// Zipf exponent for actor/subject/asset popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Op-kind weights.
    pub mix: OpMix,
    /// Optional burst phases.
    pub burst: Option<BurstConfig>,
    /// Governance scopes proposals draw from (must exist on the
    /// platform; the defaults match [`metaverse_core::platform::PlatformConfig`]).
    pub scopes: Vec<String>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            users: 64,
            ops: 10_000,
            seed: 7,
            zipf_exponent: 1.1,
            mix: OpMix::default(),
            burst: Some(BurstConfig::default()),
            scopes: vec!["privacy".into(), "moderation".into(), "assets".into(), "root".into()],
        }
    }
}

impl WorkloadConfig {
    /// A DAO voting storm: proposals open continuously while delegated
    /// and quadratic ballots pile onto them, with periodic bursts from
    /// the most active delegates.
    pub fn proposal_storm(users: usize, ops: usize, seed: u64) -> Self {
        WorkloadConfig {
            users,
            ops,
            seed,
            mix: OpMix {
                enter_world: 4,
                propose: 6,
                vote: 18,
                quadratic_vote: 14,
                delegate: 6,
                revoke_delegation: 2,
                endorse: 2,
                report: 0,
                mint: 0,
                list: 0,
                buy: 0,
                record_collection: 2,
                twin_sync: 6,
                sensor_event: 0,
                appeal: 0,
            },
            ..WorkloadConfig::default()
        }
    }

    /// A biometric stream burst: the stream is dominated by sensor
    /// events that must clear the PET pipeline and the global DP
    /// budget, with bursts concentrating readings on a hot cohort.
    pub fn biometric_burst(users: usize, ops: usize, seed: u64) -> Self {
        WorkloadConfig {
            users,
            ops,
            seed,
            mix: OpMix {
                enter_world: 6,
                propose: 0,
                vote: 0,
                quadratic_vote: 0,
                delegate: 0,
                revoke_delegation: 0,
                endorse: 2,
                report: 0,
                mint: 0,
                list: 0,
                buy: 0,
                record_collection: 10,
                twin_sync: 10,
                sensor_event: 40,
                appeal: 0,
            },
            burst: Some(BurstConfig { period: 500, len: 250, hot_divisor: 8 }),
            ..WorkloadConfig::default()
        }
    }

    /// A Sybil-wave harassment flood: report traffic concentrated onto
    /// a small set of subjects (steep zipf), with victims appealing the
    /// resulting moderation actions.
    pub fn moderation_flood(users: usize, ops: usize, seed: u64) -> Self {
        WorkloadConfig {
            users,
            ops,
            seed,
            zipf_exponent: 1.5,
            mix: OpMix {
                enter_world: 4,
                propose: 0,
                vote: 0,
                quadratic_vote: 0,
                delegate: 0,
                revoke_delegation: 0,
                endorse: 6,
                report: 30,
                mint: 0,
                list: 0,
                buy: 0,
                record_collection: 2,
                twin_sync: 8,
                sensor_event: 0,
                appeal: 12,
            },
            burst: Some(BurstConfig { period: 400, len: 160, hot_divisor: 16 }),
            ..WorkloadConfig::default()
        }
    }
}

/// Precomputed zipf sampler: cumulative weights + binary search.
#[derive(Debug, Clone)]
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for rank in 1..=n.max(1) {
            total += 1.0 / (rank as f64).powf(exponent);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty table");
        let needle = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < needle).min(self.cumulative.len() - 1)
    }
}

/// Totals of one driven run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Ops offered to the router.
    pub submitted: u64,
    /// Ops admitted.
    pub accepted: u64,
    /// Ops refused at admission.
    pub rejected: u64,
    /// Ops that executed successfully on a shard.
    pub committed: u64,
    /// Ops that reached a shard and failed.
    pub failed: u64,
    /// Epochs executed (including the final drain).
    pub epochs: u64,
}

/// Deterministic op-stream generator and driver.
#[derive(Debug)]
pub struct WorkloadEngine {
    config: WorkloadConfig,
}

impl WorkloadEngine {
    /// An engine for `config`.
    pub fn new(config: WorkloadConfig) -> Self {
        assert!(config.users > 0, "workload needs at least one user");
        assert!(!config.scopes.is_empty(), "workload needs at least one scope");
        WorkloadEngine { config }
    }

    /// The configured parameters.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    fn user_name(i: usize) -> String {
        format!("user-{i:05}")
    }

    /// Expands the full op stream: `users` registers followed by
    /// `ops` mixed ops. Depends only on the config (and its seed).
    pub fn generate(&self) -> Vec<Op> {
        let c = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(c.seed);
        let zipf = Zipf::new(c.users, c.zipf_exponent);
        let mix = [
            (c.mix.enter_world, 0usize),
            (c.mix.propose, 1),
            (c.mix.vote, 2),
            (c.mix.endorse, 3),
            (c.mix.report, 4),
            (c.mix.mint, 5),
            (c.mix.list, 6),
            (c.mix.buy, 7),
            (c.mix.record_collection, 8),
            (c.mix.twin_sync, 9),
            (c.mix.delegate, 10),
            (c.mix.revoke_delegation, 11),
            (c.mix.quadratic_vote, 12),
            (c.mix.sensor_event, 13),
            (c.mix.appeal, 14),
        ];
        let mix_total: u32 = mix.iter().map(|(w, _)| *w).sum();
        assert!(mix_total > 0, "op mix cannot be all zero");

        let mut stream = Vec::with_capacity(c.users + c.ops);
        for i in 0..c.users {
            stream.push(Op::Register { user: Self::user_name(i) });
        }

        // Optimistic object model.
        let mut next_asset: u64 = 0;
        let mut next_proposal: u64 = 0;
        let mut owners: Vec<String> = Vec::new(); // asset id → model owner
        let mut listed: Vec<u64> = Vec::new(); // listable global ids
        let hot = c
            .burst
            .map(|b| (c.users / b.hot_divisor.max(1)).max(1))
            .unwrap_or(1);

        for pos in 0..c.ops {
            let bursting = c
                .burst
                .map(|b| b.period > 0 && pos % b.period < b.len)
                .unwrap_or(false);
            let actor_rank = if bursting { rng.gen_range(0..hot) } else { zipf.sample(&mut rng) };
            let actor = Self::user_name(actor_rank);
            let mut pick = rng.gen_range(0..mix_total);
            let kind = mix
                .iter()
                .find(|(w, _)| {
                    if pick < *w {
                        true
                    } else {
                        pick -= *w;
                        false
                    }
                })
                .map(|(_, k)| *k)
                .expect("weights sum to mix_total");
            let op = match kind {
                0 => Op::EnterWorld {
                    handle: format!("avatar-{actor_rank}-{pos}"),
                    user: actor,
                    x: rng.gen::<f64>() * 100.0,
                    y: rng.gen::<f64>() * 100.0,
                },
                1 => {
                    let id = next_proposal;
                    next_proposal += 1;
                    Op::Propose {
                        user: actor,
                        proposal: id,
                        scope: c.scopes[rng.gen_range(0..c.scopes.len())].clone(),
                        title: format!("proposal-{id}"),
                    }
                }
                2 if next_proposal > 0 => Op::Vote {
                    user: actor,
                    proposal: rng.gen_range(0..next_proposal),
                    support: rng.gen_bool(0.7),
                },
                3 | 4 => {
                    let mut subject_rank = zipf.sample(&mut rng);
                    if Self::user_name(subject_rank) == actor {
                        subject_rank = (subject_rank + 1) % c.users;
                    }
                    if Self::user_name(subject_rank) == actor {
                        // Single-user workload: ratings degenerate to twin syncs.
                        Op::TwinSync { user: actor, property: 0, delta: 0.0 }
                    } else if kind == 3 {
                        Op::Endorse { user: actor, subject: Self::user_name(subject_rank) }
                    } else {
                        Op::Report { user: actor, subject: Self::user_name(subject_rank) }
                    }
                }
                5 => {
                    let id = next_asset;
                    next_asset += 1;
                    owners.push(actor.clone());
                    Op::Mint {
                        user: actor,
                        asset: id,
                        uri: format!("asset://{id}"),
                        quality: 0.5 + rng.gen::<f64>() * 0.5,
                    }
                }
                6 if next_asset > 0 => {
                    let id = rng.gen_range(0..next_asset);
                    if !listed.contains(&id) {
                        listed.push(id);
                    }
                    Op::List {
                        user: owners[id as usize].clone(),
                        asset: id,
                        price: rng.gen_range(10..400),
                    }
                }
                7 if !listed.is_empty() => {
                    let slot = rng.gen_range(0..listed.len());
                    let id = listed.swap_remove(slot);
                    owners[id as usize] = actor.clone();
                    Op::Buy { user: actor, asset: id }
                }
                8 => {
                    let subject = zipf.sample(&mut rng);
                    Op::RecordCollection {
                        user: actor,
                        subject: Self::user_name(subject),
                        sensor: SensorClass::ALL[rng.gen_range(0..SensorClass::ALL.len())],
                        purpose: "analytics".into(),
                        basis: LawfulBasis::Consent,
                        bytes: rng.gen_range(64..8192),
                    }
                }
                10 if c.users > 1 => {
                    // Delegate toward a (usually) more popular user;
                    // cycles the DAO refuses just count as failures.
                    let mut delegate_rank = zipf.sample(&mut rng);
                    if delegate_rank == actor_rank {
                        delegate_rank = (delegate_rank + 1) % c.users;
                    }
                    Op::Delegate { user: actor, delegate: Self::user_name(delegate_rank) }
                }
                11 => Op::RevokeDelegation { user: actor },
                12 if next_proposal > 0 => Op::QuadraticVote {
                    user: actor,
                    proposal: rng.gen_range(0..next_proposal),
                    support: rng.gen_bool(0.7),
                    // Quadratic cost 1..=9 of the 100 starting credits.
                    votes: rng.gen_range(1..=3),
                },
                13 => Op::SensorEvent {
                    user: actor,
                    class: SensorClass::ALL[rng.gen_range(0..SensorClass::ALL.len())],
                    reading: rng.gen::<f64>() * 100.0,
                },
                14 => Op::AppealModeration { user: actor },
                _ => Op::TwinSync {
                    user: actor,
                    property: rng.gen_range(0..8u32),
                    delta: rng.gen::<f64>() * 2.0 - 1.0,
                },
            };
            stream.push(op);
        }
        stream
    }

    /// Drives the full stream into `router`, executing an epoch every
    /// `ops_per_epoch` submissions and draining at the end. Admission
    /// refusals are counted, not retried.
    pub fn drive(&self, router: &mut ShardRouter, ops_per_epoch: usize) -> DriveReport {
        let stream = self.generate();
        let mut report = DriveReport::default();
        let per_epoch = ops_per_epoch.max(1);
        let absorb = |r: &EpochReport, report: &mut DriveReport| {
            report.committed += r.committed;
            report.failed += r.failed;
            report.epochs += 1;
        };
        for (i, op) in stream.into_iter().enumerate() {
            report.submitted += 1;
            match router.admit(op) {
                Ok(_) => report.accepted += 1,
                Err(_) => report.rejected += 1,
            }
            if (i + 1) % per_epoch == 0 {
                let r = router.execute_epoch();
                absorb(&r, &mut report);
            }
        }
        // Flush mailboxes, held queues, and settlement.
        let mut flush = 0;
        while router.pending_ops() > 0 && flush < 64 {
            let r = router.execute_epoch();
            absorb(&r, &mut report);
            flush += 1;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::GatewayConfig;

    #[test]
    fn stream_is_deterministic_for_a_seed() {
        let engine = WorkloadEngine::new(WorkloadConfig {
            users: 16,
            ops: 500,
            seed: 42,
            ..WorkloadConfig::default()
        });
        let a = engine.generate();
        let b = engine.generate();
        assert_eq!(a, b, "same seed, same stream");
        let other = WorkloadEngine::new(WorkloadConfig {
            users: 16,
            ops: 500,
            seed: 43,
            ..WorkloadConfig::default()
        });
        assert_ne!(a, other.generate(), "different seed, different stream");
    }

    #[test]
    fn stream_starts_with_registers_and_references_only_created_objects() {
        let engine = WorkloadEngine::new(WorkloadConfig {
            users: 8,
            ops: 400,
            seed: 3,
            ..WorkloadConfig::default()
        });
        let stream = engine.generate();
        assert_eq!(stream.len(), 8 + 400);
        let mut minted = 0u64;
        let mut proposed = 0u64;
        for (i, op) in stream.iter().enumerate() {
            if i < 8 {
                assert!(matches!(op, Op::Register { .. }), "op {i} should be a register");
                continue;
            }
            match op {
                Op::Register { .. } => panic!("register after the preamble"),
                Op::Mint { asset, .. } => {
                    assert_eq!(*asset, minted, "mint ids are dense creation order");
                    minted += 1;
                }
                Op::Propose { proposal, .. } => {
                    assert_eq!(*proposal, proposed);
                    proposed += 1;
                }
                Op::Vote { proposal, .. } => assert!(*proposal < proposed),
                Op::List { asset, .. } | Op::Buy { asset, .. } => assert!(*asset < minted),
                Op::Endorse { user, subject } | Op::Report { user, subject } => {
                    assert_ne!(user, subject, "no self-ratings")
                }
                _ => {}
            }
        }
        assert!(minted > 0, "the default mix mints");
        assert!(proposed > 0, "the default mix proposes");
    }

    #[test]
    fn burst_phases_concentrate_actors() {
        let config = WorkloadConfig {
            users: 100,
            ops: 1000,
            seed: 9,
            zipf_exponent: 0.0, // uniform outside bursts
            burst: Some(BurstConfig { period: 1000, len: 500, hot_divisor: 20 }),
            ..WorkloadConfig::default()
        };
        let stream = WorkloadEngine::new(config).generate();
        let actors: Vec<&str> = stream[100..].iter().map(|op| op.user()).collect();
        let hot_count = |ops: &[&str]| ops.iter().filter(|u| **u < "user-00005").count();
        let burst_hot = hot_count(&actors[..500]);
        let calm_hot = hot_count(&actors[500..]);
        assert!(
            burst_hot > calm_hot * 3,
            "burst window should be dominated by hot users ({burst_hot} vs {calm_hot})"
        );
    }

    #[test]
    fn driving_a_router_conserves_and_reports() {
        let engine = WorkloadEngine::new(WorkloadConfig {
            users: 24,
            ops: 1200,
            seed: 11,
            ..WorkloadConfig::default()
        });
        let mut router = ShardRouter::new(GatewayConfig {
            shards: 2,
            // Shallow key tree: this short drive seals well under 2^6
            // blocks per shard, and keygen dominates test setup.
            chain_config: metaverse_ledger::chain::ChainConfig {
                key_tree_depth: 6,
                ..metaverse_ledger::chain::ChainConfig::default()
            },
            ..GatewayConfig::default()
        });
        let report = engine.drive(&mut router, 64);
        assert_eq!(report.submitted, 24 + 1200);
        assert_eq!(report.accepted + report.rejected, report.submitted);
        assert!(report.committed > 0);
        assert_eq!(
            report.committed + report.failed,
            report.accepted,
            "every admitted op reaches a terminal execution state"
        );
        let conservation = router.conservation_report();
        assert!(conservation.conserved, "{conservation:?}");
        assert_eq!(conservation.tokens_in_flight, 0, "drain settles everything");
    }

    #[test]
    fn governance_scenarios_emit_their_signature_ops() {
        let storm = WorkloadEngine::new(WorkloadConfig::proposal_storm(16, 600, 5)).generate();
        assert!(storm.iter().any(|op| matches!(op, Op::QuadraticVote { .. })));
        assert!(storm.iter().any(|op| matches!(op, Op::Delegate { .. })));
        let burst = WorkloadEngine::new(WorkloadConfig::biometric_burst(16, 600, 5)).generate();
        assert!(burst.iter().any(|op| matches!(op, Op::SensorEvent { .. })));
        let flood = WorkloadEngine::new(WorkloadConfig::moderation_flood(16, 600, 5)).generate();
        assert!(flood.iter().any(|op| matches!(op, Op::Report { .. })));
        assert!(flood.iter().any(|op| matches!(op, Op::AppealModeration { .. })));
        // New kinds stay off in the default mix so historic seeds keep
        // expanding byte-for-byte.
        let default = WorkloadEngine::new(WorkloadConfig {
            users: 16,
            ops: 600,
            seed: 5,
            ..WorkloadConfig::default()
        })
        .generate();
        assert!(!default.iter().any(|op| matches!(
            op,
            Op::Delegate { .. }
                | Op::RevokeDelegation { .. }
                | Op::QuadraticVote { .. }
                | Op::SensorEvent { .. }
                | Op::AppealModeration { .. }
        )));
    }

    #[test]
    fn governance_scenarios_drive_clean_and_audit_conserved() {
        for config in [
            WorkloadConfig::proposal_storm(20, 900, 13),
            WorkloadConfig::biometric_burst(20, 900, 13),
            WorkloadConfig::moderation_flood(20, 900, 13),
        ] {
            let engine = WorkloadEngine::new(config);
            let mut router = ShardRouter::new(
                GatewayConfig::builder().shards(2).key_tree_depth(6).build(),
            );
            let report = engine.drive(&mut router, 64);
            assert!(report.committed > 0);
            assert_eq!(report.committed + report.failed, report.accepted);
            assert!(router.conservation_report().conserved);
            let dp = router.dp_budget_report();
            assert!(dp.within_budget && dp.reconciled, "{dp:?}");
        }
    }
}
