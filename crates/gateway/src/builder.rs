//! Fluent gateway construction.
//!
//! [`GatewayConfigBuilder`] mirrors the platform's `PlatformBuilder`:
//! a caller names only the knobs it cares about instead of spelling out
//! a full [`GatewayConfig`] literal (struct-literal construction is
//! deprecated — the field set grows with every subsystem, and a bare
//! literal breaks every caller each time it does). Every knob defaults
//! to the same value as [`GatewayConfig::default`].
//!
//! ```
//! use metaverse_gateway::router::{GatewayConfig, ShardRouter};
//!
//! let router = ShardRouter::new(
//!     GatewayConfig::builder()
//!         .shards(2)
//!         .workers(1)
//!         .tracing(1 << 12)
//!         .key_tree_depth(5)
//!         .build(),
//! );
//! assert_eq!(router.shard_count(), 2);
//! ```

use metaverse_core::resilience::ResilienceConfig;
use metaverse_ledger::chain::ChainConfig;
use metaverse_replication::ReplicationConfig;
use metaverse_resilience::BreakerConfig;

use crate::ops::OpsPlaneConfig;
use crate::router::GatewayConfig;
use crate::session::{RateLimit, SessionConfig};

/// Builds a [`GatewayConfig`]. Obtain one from
/// [`GatewayConfig::builder`]; every knob starts at the corresponding
/// [`GatewayConfig::default`] value.
#[derive(Debug, Clone, Default)]
pub struct GatewayConfigBuilder {
    config: GatewayConfig,
}

impl GatewayConfigBuilder {
    /// A builder with every default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing config (the legacy-shim path for
    /// callers still holding a [`GatewayConfig`] value).
    pub fn from_config(config: GatewayConfig) -> Self {
        GatewayConfigBuilder { config }
    }

    /// Number of independent platform shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Virtual nodes per shard on the hash ring.
    pub fn vnodes(mut self, vnodes: usize) -> Self {
        self.config.vnodes = vnodes;
        self
    }

    /// Admission policy stamped onto every new session.
    pub fn session(mut self, session: SessionConfig) -> Self {
        self.config.session = session;
        self
    }

    /// Per-session token-bucket policy (keeps the rest of the session
    /// config at its current values).
    pub fn rate_limit(mut self, rate: RateLimit) -> Self {
        self.config.session.rate = rate;
        self
    }

    /// Per-session mailbox bound (keeps the rest of the session config
    /// at its current values).
    pub fn mailbox_capacity(mut self, capacity: usize) -> Self {
        self.config.session.mailbox_capacity = capacity;
        self
    }

    /// Platform ticks advanced on every shard per epoch.
    pub fn epoch_ticks(mut self, ticks: u64) -> Self {
        self.config.epoch_ticks = ticks;
        self
    }

    /// Router-side per-shard breaker tuning (in epoch time).
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.config.breaker = breaker;
        self
    }

    /// Resilience config handed to each shard platform.
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.config.resilience = resilience;
        self
    }

    /// Ledger tuning handed to each shard platform.
    pub fn chain_config(mut self, chain_config: ChainConfig) -> Self {
        self.config.chain_config = chain_config;
        self
    }

    /// Validator key-tree depth (the one chain knob nearly every test
    /// and experiment tunes — shallow trees keep per-shard keygen
    /// cheap; the rest of the chain config keeps its current values).
    pub fn key_tree_depth(mut self, depth: usize) -> Self {
        self.config.chain_config.key_tree_depth = depth;
        self
    }

    /// Whether the gateway (and its shards) record telemetry.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.config.telemetry = on;
        self
    }

    /// Tokens granted to each successfully registered user.
    pub fn initial_grant(mut self, grant: u64) -> Self {
        self.config.initial_grant = grant;
        self
    }

    /// Settlement attempts against a down module before giving up.
    pub fn max_settlement_requeues(mut self, requeues: u32) -> Self {
        self.config.max_settlement_requeues = requeues;
        self
    }

    /// Worker threads for the per-shard epoch phase (`0` sizes to the
    /// host; see [`GatewayConfig::workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Enables causal tracing with a flight-recorder ring of `capacity`
    /// events (`0` disables tracing; see
    /// [`GatewayConfig::trace_capacity`]).
    pub fn tracing(mut self, capacity: usize) -> Self {
        self.config.trace_capacity = capacity;
        self
    }

    /// Installs a quorum-commit replication cluster over every shard's
    /// sealed chain.
    pub fn replication(mut self, replication: ReplicationConfig) -> Self {
        self.config.replication = Some(replication);
        self
    }

    /// Global differential-privacy budget for sensor ingestion, in
    /// micro-epsilon (see [`GatewayConfig::dp_budget_micro`]).
    pub fn dp_budget_micro(mut self, budget: u64) -> Self {
        self.config.dp_budget_micro = budget;
        self
    }

    /// Micro-epsilon charged per admitted sensor event (see
    /// [`GatewayConfig::dp_epsilon_per_event_micro`]).
    pub fn dp_epsilon_per_event_micro(mut self, micro: u64) -> Self {
        self.config.dp_epsilon_per_event_micro = micro;
        self
    }

    /// Base seed for PET-pipeline noise (see
    /// [`GatewayConfig::pet_noise_seed`]).
    pub fn pet_noise_seed(mut self, seed: u64) -> Self {
        self.config.pet_noise_seed = seed;
        self
    }

    /// Streams the epoch plan loop to shard workers instead of
    /// batching it ahead of fan-out (see [`GatewayConfig::pipeline`];
    /// no effect below 2 shards / 2 workers).
    pub fn pipeline(mut self, on: bool) -> Self {
        self.config.pipeline = on;
        self
    }

    /// Installs the ops plane: per-shard heat accounting, stage-latency
    /// attribution, and SLO evaluation folded at every epoch barrier
    /// (see [`crate::ops::OpsPlaneConfig`]). Off by default.
    pub fn ops_plane(mut self, config: OpsPlaneConfig) -> Self {
        self.config.ops_plane = Some(config);
        self
    }

    /// Worker threads each shard's chain may use to seal an epoch's
    /// blocks (`0` sizes to the host; keeps the rest of the chain
    /// config at its current values — see `ChainConfig::seal_workers`).
    pub fn seal_workers(mut self, workers: usize) -> Self {
        self.config.chain_config.seal_workers = workers;
        self
    }

    /// The finished config.
    pub fn build(self) -> GatewayConfig {
        self.config
    }
}

impl GatewayConfig {
    /// Fluent construction — the supported way to build a config (see
    /// [`GatewayConfigBuilder`]).
    pub fn builder() -> GatewayConfigBuilder {
        GatewayConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_legacy_default_config() {
        let built = GatewayConfig::builder().build();
        let legacy = GatewayConfig::default();
        assert_eq!(format!("{built:?}"), format!("{legacy:?}"));
    }

    #[test]
    fn every_knob_reaches_the_config() {
        let config = GatewayConfig::builder()
            .shards(8)
            .vnodes(32)
            .session(SessionConfig { mailbox_capacity: 7, ..SessionConfig::default() })
            .rate_limit(RateLimit { burst: 3, milli_per_tick: 500 })
            .mailbox_capacity(9)
            .epoch_ticks(4)
            .breaker(BreakerConfig { failure_threshold: 5, ..BreakerConfig::default() })
            .resilience(ResilienceConfig { enabled: false, ..ResilienceConfig::default() })
            .chain_config(ChainConfig { key_tree_depth: 4, ..ChainConfig::default() })
            .key_tree_depth(5)
            .telemetry(false)
            .initial_grant(77)
            .max_settlement_requeues(9)
            .workers(3)
            .tracing(1 << 10)
            .replication(ReplicationConfig::default())
            .dp_budget_micro(42_000)
            .dp_epsilon_per_event_micro(7)
            .pet_noise_seed(0xfeed)
            .pipeline(true)
            .ops_plane(OpsPlaneConfig { heat_window_ticks: 16, objectives: Vec::new() })
            .seal_workers(2)
            .build();
        assert_eq!(config.shards, 8);
        assert_eq!(config.vnodes, 32);
        assert_eq!(config.session.rate.burst, 3);
        assert_eq!(config.session.mailbox_capacity, 9, "later knob wins");
        assert_eq!(config.epoch_ticks, 4);
        assert_eq!(config.breaker.failure_threshold, 5);
        assert!(!config.resilience.enabled);
        assert_eq!(config.chain_config.key_tree_depth, 5, "depth knob refines chain_config");
        assert!(!config.telemetry);
        assert_eq!(config.initial_grant, 77);
        assert_eq!(config.max_settlement_requeues, 9);
        assert_eq!(config.workers, 3);
        assert_eq!(config.trace_capacity, 1 << 10);
        assert!(config.replication.is_some());
        assert_eq!(config.dp_budget_micro, 42_000);
        assert_eq!(config.dp_epsilon_per_event_micro, 7);
        assert_eq!(config.pet_noise_seed, 0xfeed);
        assert!(config.pipeline);
        assert_eq!(config.ops_plane.as_ref().map(|o| o.heat_window_ticks), Some(16));
        assert_eq!(config.chain_config.seal_workers, 2, "seal knob refines chain_config");
    }

    #[test]
    fn from_config_preserves_an_existing_config() {
        let base = GatewayConfig::builder().shards(6).initial_grant(123).build();
        let rebuilt = GatewayConfigBuilder::from_config(base.clone()).workers(2).build();
        assert_eq!(rebuilt.shards, 6);
        assert_eq!(rebuilt.initial_grant, 123);
        assert_eq!(rebuilt.workers, 2);
    }
}
