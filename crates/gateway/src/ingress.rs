//! The unified ingress surface: one trait, one error type, every way
//! an op can enter the deterministic epoch core.
//!
//! Before this trait existed the gateway had two front doors with two
//! error vocabularies: `ShardRouter::submit` returned `AdmissionError`
//! while `ShardRouter::submit_wire` returned `GatewayError`, so every
//! caller that handled both paths carried two match arms for the same
//! refusal. [`Ingress`] collapses them: typed ops and raw wire bytes
//! enter through [`Ingress::ingress`] / [`Ingress::ingress_wire`], both
//! speaking [`GatewayError`], and the epoch boundary that drains what
//! was admitted is part of the same contract
//! ([`Ingress::epoch_boundary`]).
//!
//! The trait is deliberately object-safe: the network front door
//! (`metaverse-net`) serves `dyn`-free generic servers in production
//! but the admission journal replays through `&mut dyn Ingress`, so a
//! recorded network run can be re-fed into *any* ingress — a fresh
//! router, a mock, a byte-counting shim — without monomorphising the
//! journal.
//!
//! ## Determinism contract
//!
//! Everything an implementation does in `ingress`/`epoch_boundary`
//! must be a pure function of the call sequence: no wall clock, no
//! ambient randomness. That is what makes the admission journal a
//! sufficient determinism boundary — replaying the same offers and
//! epoch boundaries in the same order reproduces every audit, trace,
//! and conservation byte (see `metaverse-net`'s journal tests).

use crate::error::GatewayError;
use crate::op::{Op, StatsKind, StatsReply};
use crate::router::{EpochReport, ShardRouter};

/// A sink that admits ops into the deterministic epoch core.
///
/// Implemented by [`ShardRouter`]; the network serving layer is generic
/// over this trait so it can be driven against a real router or a test
/// double, and so journal replay works through a trait object.
pub trait Ingress {
    /// Offers a typed op. On success the op waits for the next epoch
    /// boundary; the returned sequence number is its global admission
    /// order. Every refusal is a typed [`GatewayError`].
    fn ingress(&mut self, op: Op) -> Result<u64, GatewayError>;

    /// Offers an encoded op: decode, then admit. Wire errors surface as
    /// [`GatewayError::Wire`]; everything else behaves exactly like
    /// [`Ingress::ingress`].
    fn ingress_wire(&mut self, bytes: &[u8]) -> Result<u64, GatewayError> {
        let op = Op::decode(bytes)?;
        self.ingress(op)
    }

    /// Executes one epoch boundary: drains admitted work into the
    /// shards, commits, settles, and advances the logical clock.
    fn epoch_boundary(&mut self) -> EpochReport;

    /// The current logical tick (the clock that admission backpressure
    /// retry hints are quoted in).
    fn logical_now(&self) -> u64;

    /// Ops admitted or in flight that a future epoch boundary still has
    /// to resolve (mailboxed, queued, and unsettled work). A server
    /// drains until this reaches zero.
    fn backlog(&self) -> usize;

    /// Serves one live-stats query (the `StatsQuery` admin frame).
    /// Read-only with respect to the op stream: serving a reply must
    /// never change what a later `ingress`/`epoch_boundary` call does.
    /// The default says "not supported" (`None`), so test doubles and
    /// byte-counting shims stay oblivious; [`ShardRouter`] overrides
    /// it with the ops plane's live views.
    fn serve_stats(&mut self, kind: StatsKind) -> Option<StatsReply> {
        let _ = kind;
        None
    }
}

impl Ingress for ShardRouter {
    fn ingress(&mut self, op: Op) -> Result<u64, GatewayError> {
        self.admit(op).map_err(Into::into)
    }

    /// Zero-copy override of the trait's decode-then-admit default:
    /// admission checks (known user, rate limit, mailbox depth) run
    /// against a borrowed [`crate::op::OpView`] of the wire bytes, and
    /// the owned [`Op`] is only materialised for ops that are actually
    /// accepted into a mailbox. Refusals — the path a gateway under
    /// attack mostly takes — never allocate.
    fn ingress_wire(&mut self, bytes: &[u8]) -> Result<u64, GatewayError> {
        let view = crate::op::OpView::decode(bytes)?;
        self.admit_view(view).map_err(Into::into)
    }

    fn epoch_boundary(&mut self) -> EpochReport {
        self.execute_epoch()
    }

    fn logical_now(&self) -> u64 {
        self.now()
    }

    fn backlog(&self) -> usize {
        self.pending_ops()
    }

    fn serve_stats(&mut self, kind: StatsKind) -> Option<StatsReply> {
        Some(self.stats_reply(kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AdmissionError;
    use crate::router::GatewayConfig;

    fn router() -> ShardRouter {
        ShardRouter::new(GatewayConfig::builder().shards(2).key_tree_depth(6).build())
    }

    #[test]
    fn ingress_admits_and_numbers_ops_like_the_legacy_surface() {
        let mut r = router();
        let a = r.ingress(Op::Register { user: "alice".into() }).unwrap();
        let b = r.ingress(Op::Register { user: "bob".into() }).unwrap();
        assert_eq!((a, b), (0, 1));
        r.epoch_boundary();
        let c = r.ingress(Op::Endorse { user: "alice".into(), subject: "bob".into() }).unwrap();
        assert_eq!(c, 2);
        let report = r.epoch_boundary();
        assert_eq!(report.failed, 0);
        assert_eq!(r.backlog(), 0);
    }

    #[test]
    fn every_refusal_is_one_typed_gateway_error() {
        let mut r = router();
        let err = r.ingress(Op::Endorse { user: "ghost".into(), subject: "x".into() }).unwrap_err();
        assert!(matches!(err, GatewayError::Admission(AdmissionError::UnknownUser { .. })));
        r.ingress(Op::Register { user: "alice".into() }).unwrap();
        let err = r.ingress(Op::Register { user: "alice".into() }).unwrap_err();
        assert!(matches!(err, GatewayError::Admission(AdmissionError::AlreadyRegistered { .. })));
        let err = r.ingress_wire(&[0xff, 0x00]).unwrap_err();
        assert!(matches!(err, GatewayError::Wire(_)));
    }

    #[test]
    fn ingress_wire_round_trips_the_codec() {
        let mut r = router();
        let op = Op::Register { user: "alice".into() };
        let seq = r.ingress_wire(&op.encode()).unwrap();
        assert_eq!(seq, 0);
        r.epoch_boundary();
        assert!(r.conservation_report().conserved);
    }

    #[test]
    fn the_trait_is_object_safe_for_journal_replay() {
        let mut r = router();
        let dyn_ingress: &mut dyn Ingress = &mut r;
        dyn_ingress.ingress_wire(&Op::Register { user: "alice".into() }.encode()).unwrap();
        dyn_ingress.epoch_boundary();
        assert_eq!(dyn_ingress.logical_now(), 1);
        assert_eq!(dyn_ingress.backlog(), 0);
    }

    #[test]
    fn logical_now_tracks_epoch_boundaries() {
        let mut r = router();
        assert_eq!(r.logical_now(), 0);
        r.epoch_boundary();
        r.epoch_boundary();
        assert_eq!(r.logical_now(), 2);
    }
}
