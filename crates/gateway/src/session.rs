//! Per-user sessions: the gateway's admission layer.
//!
//! A [`Session`] owns two backpressure mechanisms, both deterministic
//! and both in logical tick time:
//!
//! * a **token bucket** ([`RateLimit`]) in integer milli-tokens — no
//!   floats, so refill arithmetic is exact and replayable — refusing
//!   bursts beyond the configured sustained rate, and
//! * a **bounded mailbox** holding admitted ops until the router drains
//!   them at the next epoch boundary; a full mailbox refuses with
//!   [`AdmissionError::MailboxFull`] rather than buffering without
//!   bound.
//!
//! Refusals are *typed* ([`AdmissionError`]) so callers can tell "slow
//! down" apart from "session missing" apart from "shard down" — the
//! governance analogue of the paper's argument that opaque denials are
//! themselves a harm.

use std::collections::VecDeque;

use crate::error::AdmissionError;
use crate::op::Op;

/// Milli-tokens per whole token.
const MILLI: u64 = 1000;

/// Sustained-rate + burst admission policy for one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity in whole ops (burst size).
    ///
    /// A burst of 0 is a bucket that can never hold one whole token —
    /// refills cap at capacity — so *every* offer is refused with
    /// [`AdmissionError::RateLimited`] reporting `retry_in_ticks:
    /// u64::MAX`. It is a valid (if draconian) policy, not a panic.
    pub burst: u32,
    /// Refill rate in milli-tokens per tick (1000 = one op per tick).
    pub milli_per_tick: u64,
}

impl Default for RateLimit {
    fn default() -> Self {
        // Sustain 2 ops per tick, absorb bursts of 16.
        RateLimit { burst: 16, milli_per_tick: 2 * MILLI }
    }
}

/// Deterministic token bucket in integer milli-tokens.
#[derive(Debug, Clone)]
struct TokenBucket {
    capacity_milli: u64,
    level_milli: u64,
    refill_per_tick: u64,
    last_tick: u64,
}

impl TokenBucket {
    fn new(limit: RateLimit) -> Self {
        let capacity_milli = u64::from(limit.burst) * MILLI;
        TokenBucket {
            capacity_milli,
            level_milli: capacity_milli, // start full
            refill_per_tick: limit.milli_per_tick,
            last_tick: 0,
        }
    }

    fn refill(&mut self, now: u64) {
        let elapsed = now.saturating_sub(self.last_tick);
        self.last_tick = self.last_tick.max(now);
        let gained = elapsed.saturating_mul(self.refill_per_tick);
        self.level_milli = self.level_milli.saturating_add(gained).min(self.capacity_milli);
    }

    /// Takes one whole token, or reports how many ticks until one is
    /// available again.
    fn try_take(&mut self, now: u64) -> Result<(), u64> {
        self.refill(now);
        if self.level_milli >= MILLI {
            self.level_milli -= MILLI;
            return Ok(());
        }
        if self.refill_per_tick == 0 || self.capacity_milli < MILLI {
            // Never refills, or (burst 0) can never hold a whole token:
            // waiting will not help, and the caller should know that.
            return Err(u64::MAX);
        }
        let deficit = MILLI - self.level_milli;
        Err(deficit.div_ceil(self.refill_per_tick))
    }
}

/// Admission knobs shared by every session a router creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Token-bucket policy.
    pub rate: RateLimit,
    /// Mailbox bound (admitted ops awaiting the next epoch).
    pub mailbox_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { rate: RateLimit::default(), mailbox_capacity: 64 }
    }
}

/// One connected user: identity, home shard, admission state, mailbox.
#[derive(Debug)]
pub struct Session {
    user: String,
    shard: usize,
    bucket: TokenBucket,
    mailbox: VecDeque<(u64, Op, u64)>,
    mailbox_capacity: usize,
    accepted_total: u64,
    rejected_total: u64,
}

impl Session {
    /// A fresh session for `user`, homed on `shard`.
    pub fn new(user: &str, shard: usize, config: SessionConfig) -> Self {
        Session {
            user: user.to_string(),
            shard,
            bucket: TokenBucket::new(config.rate),
            mailbox: VecDeque::new(),
            mailbox_capacity: config.mailbox_capacity.max(1),
            accepted_total: 0,
            rejected_total: 0,
        }
    }

    /// Session owner.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Home shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Ops currently waiting for the next epoch.
    pub fn pending(&self) -> usize {
        self.mailbox.len()
    }

    /// Ops admitted over the session's lifetime.
    pub fn accepted_total(&self) -> u64 {
        self.accepted_total
    }

    /// Ops refused over the session's lifetime.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_total
    }

    /// Offers an op at logical time `now`; on success the op sits in
    /// the mailbox (tagged with its global admission sequence number)
    /// until the router drains it.
    pub fn offer(&mut self, seq: u64, op: Op, now: u64) -> Result<(), AdmissionError> {
        self.offer_with(seq, now, move || op)
    }

    /// [`Session::offer`] with the op materialised only *after* the
    /// mailbox and rate-limit checks pass. The zero-copy wire path
    /// hands a closure that turns a borrowed `OpView` into an owned
    /// [`Op`], so a refused flood never allocates; refusal accounting
    /// and admission order are identical to [`Session::offer`].
    pub fn offer_with(
        &mut self,
        seq: u64,
        now: u64,
        make_op: impl FnOnce() -> Op,
    ) -> Result<(), AdmissionError> {
        if self.mailbox.len() >= self.mailbox_capacity {
            self.rejected_total += 1;
            return Err(AdmissionError::MailboxFull {
                user: self.user.clone(),
                capacity: self.mailbox_capacity,
            });
        }
        if let Err(retry_in_ticks) = self.bucket.try_take(now) {
            self.rejected_total += 1;
            return Err(AdmissionError::RateLimited { user: self.user.clone(), retry_in_ticks });
        }
        self.mailbox.push_back((seq, make_op(), now));
        self.accepted_total += 1;
        Ok(())
    }

    /// Removes and returns every admitted op, oldest first, each tagged
    /// with its admission seq and the tick it was admitted at (so the
    /// router's tracing layer can report mailbox wait time).
    pub fn drain(&mut self) -> Vec<(u64, Op, u64)> {
        self.mailbox.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(user: &str) -> Op {
        Op::TwinSync { user: user.into(), property: 0, delta: 1.0 }
    }

    #[test]
    fn burst_then_rate_limit_then_refill() {
        let config = SessionConfig {
            rate: RateLimit { burst: 3, milli_per_tick: 500 }, // 1 op / 2 ticks
            mailbox_capacity: 100,
        };
        let mut s = Session::new("alice", 0, config);
        for i in 0..3 {
            assert!(s.offer(i, op("alice"), 0).is_ok(), "burst op {i}");
        }
        match s.offer(3, op("alice"), 0) {
            Err(AdmissionError::RateLimited { retry_in_ticks, .. }) => {
                assert_eq!(retry_in_ticks, 2, "500 milli/tick needs 2 ticks per token")
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
        // Two ticks later one token has refilled — exactly one op fits.
        assert!(s.offer(3, op("alice"), 2).is_ok());
        assert!(matches!(
            s.offer(4, op("alice"), 2),
            Err(AdmissionError::RateLimited { .. })
        ));
        assert_eq!(s.accepted_total(), 4);
        assert_eq!(s.rejected_total(), 2);
    }

    #[test]
    fn zero_refill_bucket_reports_unreachable_retry() {
        let config = SessionConfig {
            rate: RateLimit { burst: 1, milli_per_tick: 0 },
            mailbox_capacity: 8,
        };
        let mut s = Session::new("bob", 0, config);
        assert!(s.offer(0, op("bob"), 0).is_ok());
        match s.offer(1, op("bob"), 1000) {
            Err(AdmissionError::RateLimited { retry_in_ticks, .. }) => {
                assert_eq!(retry_in_ticks, u64::MAX)
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
    }

    #[test]
    fn zero_burst_bucket_refuses_everything_with_unreachable_retry() {
        let config = SessionConfig {
            rate: RateLimit { burst: 0, milli_per_tick: 1000 },
            mailbox_capacity: 8,
        };
        let mut s = Session::new("eve", 0, config);
        // Even arbitrarily far in the future: refills cap at capacity 0.
        for now in [0u64, 1, 1_000_000] {
            match s.offer(0, op("eve"), now) {
                Err(AdmissionError::RateLimited { retry_in_ticks, .. }) => {
                    assert_eq!(retry_in_ticks, u64::MAX, "burst 0 can never admit")
                }
                other => panic!("expected rate limit, got {other:?}"),
            }
        }
        assert_eq!(s.accepted_total(), 0);
        assert_eq!(s.rejected_total(), 3);
    }

    #[test]
    fn mailbox_bound_refuses_and_drain_resets() {
        let config = SessionConfig {
            rate: RateLimit { burst: 100, milli_per_tick: 100_000 },
            mailbox_capacity: 2,
        };
        let mut s = Session::new("carol", 1, config);
        assert!(s.offer(0, op("carol"), 0).is_ok());
        assert!(s.offer(1, op("carol"), 0).is_ok());
        assert!(matches!(
            s.offer(2, op("carol"), 0),
            Err(AdmissionError::MailboxFull { capacity: 2, .. })
        ));
        let drained = s.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 0, "oldest first");
        assert_eq!(s.pending(), 0);
        assert!(s.offer(3, op("carol"), 0).is_ok(), "drain frees capacity");
    }

    /// Regression (tick-clock overflow audit): a clock at or near
    /// `u64::MAX` must never panic in refill arithmetic or wrap the
    /// bucket level into admitting ops a sane clock would refuse. The
    /// `burst: 0` draconian policy is the sharpest case — its refusals
    /// quote `retry_in_ticks: u64::MAX`, and a caller that adds that
    /// hint to its own clock is exactly how a near-MAX `now` arrives.
    #[test]
    fn near_max_tick_clock_never_panics_or_wraps_into_admitting() {
        // burst 0: every offer refused with the unreachable-retry hint,
        // no matter how extreme the clock (elapsed * refill would
        // overflow u64 without saturation).
        let zero_burst = SessionConfig {
            rate: RateLimit { burst: 0, milli_per_tick: u64::MAX },
            mailbox_capacity: 8,
        };
        let mut s = Session::new("eve", 0, zero_burst);
        for now in [u64::MAX - 1, u64::MAX] {
            match s.offer(0, op("eve"), now) {
                Err(AdmissionError::RateLimited { retry_in_ticks, .. }) => {
                    assert_eq!(retry_in_ticks, u64::MAX, "burst 0 can never admit")
                }
                other => panic!("expected rate limit at now={now}, got {other:?}"),
            }
        }
        assert_eq!(s.accepted_total(), 0, "no overflow wrapped into an admission");

        // burst > 0 at u64::MAX: the gained amount saturates, the level
        // still caps at capacity — exactly `burst` ops fit, not more.
        let config = SessionConfig {
            rate: RateLimit { burst: 2, milli_per_tick: u64::MAX },
            mailbox_capacity: 8,
        };
        let mut s = Session::new("mallory", 0, config);
        for i in 0..2 {
            assert!(s.offer(i, op("mallory"), u64::MAX).is_ok(), "burst slot {i}");
        }
        assert!(
            matches!(s.offer(2, op("mallory"), u64::MAX), Err(AdmissionError::RateLimited { .. })),
            "a saturated refill must still cap at the burst capacity"
        );

        // The clock running backwards from MAX (skew) saturates to zero
        // elapsed instead of underflowing.
        assert!(matches!(
            s.offer(3, op("mallory"), 0),
            Err(AdmissionError::RateLimited { .. })
        ));
    }

    #[test]
    fn bucket_never_overfills_past_burst() {
        let config = SessionConfig {
            rate: RateLimit { burst: 2, milli_per_tick: 1000 },
            mailbox_capacity: 100,
        };
        let mut s = Session::new("dave", 0, config);
        // A huge idle gap must cap the bucket at `burst`, not accumulate.
        for i in 0..2 {
            assert!(s.offer(i, op("dave"), 1_000_000).is_ok());
        }
        assert!(matches!(
            s.offer(2, op("dave"), 1_000_000),
            Err(AdmissionError::RateLimited { .. })
        ));
    }
}
