//! # metaverse-gateway
//!
//! The sharded session front door for `metaverse-kit`: the paper's
//! scalability story (§II's "the metaverse" is many interoperating
//! platforms, not one monolith) made concrete. One
//! [`ShardRouter`](router::ShardRouter) runs N independent
//! [`MetaversePlatform`](metaverse_core::platform::MetaversePlatform)
//! shards behind a single typed surface:
//!
//! * [`op::Op`] — one variant per platform action, with a
//!   dependency-free wire codec that round-trips exactly;
//! * [`session::Session`] — per-user admission control: deterministic
//!   milli-token buckets and bounded mailboxes, refusing with typed
//!   [`error::AdmissionError`]s instead of silently shedding load;
//! * [`router::ShardRouter`] — consistent hashing onto shards, batched
//!   execution at epoch boundaries, per-shard circuit breakers (a
//!   stalled shard refuses, the rest keep committing), and a
//!   cross-shard settlement queue that conserves token supply and
//!   asset ownership by construction — plus end-to-end causal tracing
//!   ([`GatewayConfig::trace_capacity`](router::GatewayConfig) > 0):
//!   every admitted op gets a deterministic trace through admission,
//!   routing, execution, escrow, settlement, and ledger commit,
//!   queryable via [`ShardRouter::trace_of`](router::ShardRouter) and
//!   exportable as JSON Lines or Prometheus text;
//! * [`workload::WorkloadEngine`] — a seeded multi-user workload
//!   generator (zipf popularity, configurable op mix, burst phases)
//!   whose stream is independent of shard placement, so the same run
//!   can be replayed at any shard count and audited with
//!   [`router::ConservationReport`].
//!
//! * [`ingress::Ingress`] — the unified front-door trait: typed and
//!   wire admission, epoch boundaries, and logical time behind one
//!   object-safe surface, so serving layers (see `metaverse-net`) and
//!   offline replay drive a router identically;
//! * [`ops::OpsPlaneConfig`] — the opt-in ops plane: deterministic
//!   per-shard heat accounting, stage-latency attribution, and SLO
//!   trip events folded at the epoch barrier, served live over the
//!   wire as [`op::StatsQuery`]/[`op::StatsReply`] admin frames;
//! * [`builder::GatewayConfigBuilder`] — fluent config construction
//!   ([`GatewayConfig::builder`](router::GatewayConfig::builder));
//!   bare struct literals are deprecated.
//!
//! ## Example
//!
//! ```
//! use metaverse_gateway::ingress::Ingress;
//! use metaverse_gateway::op::Op;
//! use metaverse_gateway::router::{GatewayConfig, ShardRouter};
//!
//! let mut gateway = ShardRouter::new(
//!     // Shallow demo key tree — per-shard keygen dominates setup.
//!     GatewayConfig::builder().shards(4).key_tree_depth(5).build(),
//! );
//! gateway.ingress(Op::Register { user: "alice".into() }).unwrap();
//! gateway.ingress(Op::Register { user: "bob".into() }).unwrap();
//! gateway.epoch_boundary();
//! gateway.ingress(Op::Endorse { user: "alice".into(), subject: "bob".into() }).unwrap();
//! gateway.epoch_boundary();
//! gateway.drain(8); // settle any cross-shard effects
//! assert!(gateway.conservation_report().conserved);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod ingress;
pub mod op;
pub mod ops;
pub mod router;
pub mod session;
pub mod workload;

pub use builder::GatewayConfigBuilder;
pub use error::{AdmissionError, GatewayError};
pub use ingress::Ingress;
pub use op::{Op, StatsKind, StatsQuery, StatsReply, WireError};
pub use ops::OpsPlaneConfig;
pub use router::{
    ConservationReport, EpochReport, GatewayConfig, ProvenanceRecord, ShardRouter,
};
pub use session::{RateLimit, Session, SessionConfig};
pub use workload::{DriveReport, WorkloadConfig, WorkloadEngine};
