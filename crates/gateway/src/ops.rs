//! The gateway's ops plane: deterministic, tick-clocked observability.
//!
//! When [`OpsPlaneConfig`] is set on the gateway config, the router
//! folds three aggregates at every epoch barrier — all derived from
//! logical state only, so every number is byte-identical across shard
//! counts, worker counts, and batched vs pipelined execution:
//!
//! * **heat** — a sliding tick-window [`HeatWindow`] of per-shard and
//!   global load (ops/kilotick, refusal rate by class, queue depth,
//!   escrow pressure, DP-budget burn). Its imbalance/skew numbers are
//!   the load signal ROADMAP item 3 (shard split/merge) needs.
//! * **stage latency** — a [`StageLatencyProfiler`] folding the flight
//!   recorder's trace events into per-stage tick budgets
//!   (admitted→routed→executed→…→committed plus replication lag) with
//!   log₂ histograms and a slowest-ops exemplar table.
//! * **SLOs** — a [`SloEngine`] evaluating declarative objectives
//!   against the window each epoch; trips become trace events and
//!   on-ledger `HealthTransition` records.
//!
//! The plane is opt-in and lock-free: every fold happens on `&mut
//! ShardRouter` at the barrier, never inside shard workers.

use metaverse_telemetry::heat::REFUSAL_CLASS_COUNT;
use metaverse_telemetry::{
    HeatWindow, SloEngine, SloKind, SloObjective, StageLatencyProfiler,
};

use crate::error::AdmissionError;

/// Default sliding-window width for heat accounting, in ticks.
pub const DEFAULT_HEAT_WINDOW_TICKS: u64 = 64;

/// Configuration for the gateway's ops plane. `None` on the gateway
/// config means the plane is off and the hot path pays nothing beyond
/// an `Option` check per epoch.
#[derive(Debug, Clone)]
pub struct OpsPlaneConfig {
    /// Sliding-window width for heat accounting, in ticks. Epoch
    /// samples older than `now - heat_window_ticks` are evicted.
    pub heat_window_ticks: u64,
    /// Declarative objectives evaluated at every epoch barrier.
    pub objectives: Vec<SloObjective>,
}

impl Default for OpsPlaneConfig {
    fn default() -> Self {
        OpsPlaneConfig {
            heat_window_ticks: DEFAULT_HEAT_WINDOW_TICKS,
            objectives: default_objectives(),
        }
    }
}

impl OpsPlaneConfig {
    /// A config with the default window and no objectives — heat and
    /// latency attribution without SLO evaluation.
    pub fn without_objectives() -> Self {
        OpsPlaneConfig { heat_window_ticks: DEFAULT_HEAT_WINDOW_TICKS, objectives: Vec::new() }
    }
}

/// The stock objective set: admission must route within 8 ticks at
/// p99, at most 10% of offered ops may be refused over the window, and
/// the platform may burn at most 1ε (1 000 000 micro) of DP budget per
/// epoch.
pub fn default_objectives() -> Vec<SloObjective> {
    vec![
        SloObjective { name: "admission_p99", kind: SloKind::AdmissionP99MaxTicks, max: 8 },
        SloObjective { name: "refusal_rate", kind: SloKind::RefusalRateMaxMilli, max: 100 },
        SloObjective {
            name: "dp_burn",
            kind: SloKind::DpBurnMaxMicroPerEpoch,
            max: 1_000_000,
        },
    ]
}

/// Maps an admission refusal onto its heat-window class index (the
/// order of `metaverse_telemetry::heat::REFUSAL_CLASSES`). DP-budget
/// refusals (class 5) are not admission errors — the router derives
/// them from the DP ledger's own refusal counter instead.
pub(crate) fn refusal_class(e: &AdmissionError) -> usize {
    match e {
        AdmissionError::RateLimited { .. } => 0,
        AdmissionError::MailboxFull { .. } => 1,
        AdmissionError::UnknownUser { .. } => 2,
        AdmissionError::AlreadyRegistered { .. } => 3,
        AdmissionError::ShardUnavailable { .. } => 4,
    }
}

/// Live ops-plane state carried by the router. All mutation happens at
/// the epoch barrier; the `last_*` watermarks turn the router's
/// monotone ledgers into per-epoch deltas.
pub(crate) struct OpsPlane {
    /// Sliding tick-window of epoch heat samples.
    pub(crate) window: HeatWindow,
    /// Stage-latency attribution folded from trace events.
    pub(crate) profiler: StageLatencyProfiler,
    /// Declarative objectives, evaluated each barrier.
    pub(crate) slo: SloEngine,
    /// Admission refusals accumulated since the last barrier, by
    /// class. Only classes 0–4 are filled here; class 5
    /// (budget_refused) comes from the DP ledger delta.
    pub(crate) pending_refused: [u64; REFUSAL_CLASS_COUNT],
    /// Objectives currently tripped (for the `ops_plane.slo.tripped`
    /// gauge).
    pub(crate) tripped_count: i64,
    /// Admission-seq watermark at the last barrier.
    pub(crate) last_seq: u64,
    /// DP ledger `spent_micro` watermark at the last barrier.
    pub(crate) last_dp_spent_micro: u64,
    /// DP ledger `refused` watermark at the last barrier.
    pub(crate) last_dp_refused: u64,
    /// Settlement ledger `enqueued` watermark at the last barrier.
    pub(crate) last_escrow_enqueued: u64,
}

impl OpsPlane {
    pub(crate) fn new(config: &OpsPlaneConfig) -> Self {
        OpsPlane {
            window: HeatWindow::new(config.heat_window_ticks),
            profiler: StageLatencyProfiler::new(),
            slo: SloEngine::new(config.objectives.clone()),
            pending_refused: [0; REFUSAL_CLASS_COUNT],
            tripped_count: 0,
            last_seq: 0,
            last_dp_spent_micro: 0,
            last_dp_refused: 0,
            last_escrow_enqueued: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_carries_the_stock_objectives() {
        let config = OpsPlaneConfig::default();
        assert_eq!(config.heat_window_ticks, DEFAULT_HEAT_WINDOW_TICKS);
        let names: Vec<&str> = config.objectives.iter().map(|o| o.name).collect();
        assert_eq!(names, ["admission_p99", "refusal_rate", "dp_burn"]);
        assert!(OpsPlaneConfig::without_objectives().objectives.is_empty());
    }

    #[test]
    fn refusal_classes_cover_every_admission_error() {
        use metaverse_telemetry::heat::REFUSAL_CLASSES;
        let cases = [
            (
                AdmissionError::RateLimited { user: "u".into(), retry_in_ticks: 1 },
                "rate_limited",
            ),
            (AdmissionError::MailboxFull { user: "u".into(), capacity: 8 }, "mailbox_full"),
            (AdmissionError::UnknownUser { user: "u".into() }, "unknown_user"),
            (AdmissionError::AlreadyRegistered { user: "u".into() }, "duplicate_register"),
            (AdmissionError::ShardUnavailable { shard: 0 }, "shard_down"),
        ];
        for (err, label) in cases {
            assert_eq!(REFUSAL_CLASSES[refusal_class(&err)], label);
        }
    }
}
