//! Typed gateway failures.
//!
//! Admission control speaks [`AdmissionError`] — every refusal names
//! its cause and (where it makes sense) when retrying could help, so a
//! client under backpressure can distinguish "slow down" from "your
//! shard is down" from "who are you?". [`GatewayError`] wraps admission
//! refusals together with the wire and platform failures a gateway
//! front door can surface.

use crate::op::WireError;
use metaverse_core::CoreError;

/// Why an op was refused at the gateway door (before reaching a shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The session's token bucket is empty — backpressure, retry later.
    RateLimited {
        /// Session owner.
        user: String,
        /// Ticks until one whole token has refilled.
        retry_in_ticks: u64,
    },
    /// The session's mailbox is at capacity — an epoch must drain it
    /// before more ops are admitted.
    MailboxFull {
        /// Session owner.
        user: String,
        /// Configured mailbox bound.
        capacity: usize,
    },
    /// No session exists for this user (register first).
    UnknownUser {
        /// The unknown account.
        user: String,
    },
    /// A session already exists for this user: a second `Register` is
    /// refused at the door instead of occupying a mailbox slot and a
    /// shard batch slot just to fail on the shard.
    AlreadyRegistered {
        /// The already-registered account.
        user: String,
    },
    /// The user's home shard has its circuit breaker open; the gateway
    /// refuses rather than queueing into a stalled shard.
    ShardUnavailable {
        /// Index of the tripped shard.
        shard: usize,
    },
}

impl AdmissionError {
    /// Stable lowercase cause label for trace events and exports
    /// (matches the `gateway.rejected.*` metric-name suffixes).
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionError::RateLimited { .. } => "rate_limited",
            AdmissionError::MailboxFull { .. } => "mailbox_full",
            AdmissionError::UnknownUser { .. } => "unknown_user",
            AdmissionError::AlreadyRegistered { .. } => "duplicate_register",
            AdmissionError::ShardUnavailable { .. } => "shard_down",
        }
    }
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::RateLimited { user, retry_in_ticks } => {
                write!(f, "admission: {user:?} rate limited, retry in {retry_in_ticks} ticks")
            }
            AdmissionError::MailboxFull { user, capacity } => {
                write!(f, "admission: mailbox for {user:?} full at {capacity}")
            }
            AdmissionError::UnknownUser { user } => {
                write!(f, "admission: no session for {user:?}")
            }
            AdmissionError::AlreadyRegistered { user } => {
                write!(f, "admission: {user:?} is already registered")
            }
            AdmissionError::ShardUnavailable { shard } => {
                write!(f, "admission: shard {shard} unavailable (breaker open)")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Any failure the gateway surface can return.
#[derive(Debug)]
pub enum GatewayError {
    /// Refused at the admission layer.
    Admission(AdmissionError),
    /// The byte string was not a valid op.
    Wire(WireError),
    /// A session already exists for this user.
    DuplicateSession {
        /// The already-connected account.
        user: String,
    },
    /// A platform error escaped synchronous execution.
    Core(CoreError),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Admission(e) => write!(f, "{e}"),
            GatewayError::Wire(e) => write!(f, "{e}"),
            GatewayError::DuplicateSession { user } => {
                write!(f, "gateway: session for {user:?} already connected")
            }
            GatewayError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<AdmissionError> for GatewayError {
    fn from(e: AdmissionError) -> Self {
        GatewayError::Admission(e)
    }
}

impl From<WireError> for GatewayError {
    fn from(e: WireError) -> Self {
        GatewayError::Wire(e)
    }
}

impl From<CoreError> for GatewayError {
    fn from(e: CoreError) -> Self {
        GatewayError::Core(e)
    }
}
