//! Offline stand-in for the parts of `rand` 0.8 used by this workspace.
//!
//! See `third_party/README.md`. Implements `RngCore`, `SeedableRng`,
//! the `Rng` extension trait (`gen`, `gen_bool`, `gen_range`),
//! `rngs::StdRng` (xoshiro256++) and `seq::SliceRandom`
//! (`choose`/`shuffle`). Signatures mirror upstream so the workspace
//! compiles unchanged against the real crate when a registry is
//! available.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: raw 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (same scheme as
    /// upstream rand) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used only for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Values samplable "from the standard distribution" — backs
/// [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open interval `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from the closed interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty => $std:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

uniform_float!(f32 => f32, f64 => f64);

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience extension over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Fills a byte buffer (subset of upstream's `Fill`-based `fill`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ (upstream `StdRng`
    /// is ChaCha12; this stand-in only promises determinism, not stream
    /// compatibility).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// `choose` / `shuffle` over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
            let n = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should permute 50 elements");
    }

    #[test]
    fn dyn_rngcore_usable() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = dyn_rng.next_u32();
        let v = dyn_rng.gen_range(0..10u32);
        assert!(v < 10);
    }
}
