//! Offline stand-in for `serde` 1.
//!
//! Nothing in this workspace actually serializes through serde (the one
//! JSON emitter, `metaverse-bench::report`, writes JSON by hand), so
//! `Serialize`/`Deserialize` are marker traits with blanket impls and
//! the derives are no-ops. Code written with `#[derive(Serialize,
//! Deserialize)]` and `T: Serialize` bounds compiles unchanged against
//! both this stand-in and the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Example {
        _field: u32,
    }

    fn assert_bounds<T: super::Serialize + super::de::DeserializeOwned>() {}

    #[test]
    fn derives_and_bounds_resolve() {
        assert_bounds::<Example>();
    }
}
