//! Offline stub for `serde_json` 1.
//!
//! The offline `serde` stand-in has no introspection, so this crate
//! cannot render real JSON; any call returns an error rather than
//! silently emitting garbage. In-tree JSON (experiment reports) is
//! hand-rolled in `metaverse-bench::report` instead.

use std::fmt;

/// Error type mirroring `serde_json::Error`'s role.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stand-in: serialization unsupported offline; use hand-rolled JSON")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Always fails — see crate docs.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error)
}

/// Always fails — see crate docs.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error)
}
