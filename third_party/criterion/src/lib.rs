//! Offline mini benchmark harness standing in for `criterion` 0.5.
//!
//! Mirrors the API subset the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::
//! iter`/`iter_batched`, `BenchmarkId`, `BatchSize`, the
//! `criterion_group!`/`criterion_main!` macros, `black_box`). Instead
//! of statistical sampling it times a short fixed budget per benchmark
//! and prints one `name ... time/iter` line — enough to compare orders
//! of magnitude offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` inputs are grouped; accepted for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` over a short budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // Warm-up.
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while iters < MAX_ITERS && elapsed < BUDGET {
            let start = Instant::now();
            black_box(routine());
            elapsed += start.elapsed();
            iters += 1;
        }
        self.measured = Some((elapsed, iters));
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // Warm-up.
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while iters < MAX_ITERS && elapsed < BUDGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.measured = Some((elapsed, iters));
    }
}

const MAX_ITERS: u64 = 30;
const BUDGET: Duration = Duration::from_millis(50);

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { measured: None };
    f(&mut bencher);
    match bencher.measured {
        Some((elapsed, iters)) if iters > 0 => {
            let per_iter = elapsed.as_nanos() / u128::from(iters);
            println!("bench {label:<48} {per_iter:>12} ns/iter ({iters} iters)");
        }
        _ => println!("bench {label:<48} (no measurement)"),
    }
}

/// Top-level harness, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for parity; the stand-in uses a fixed time budget.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, |b| f(b));
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for parity; the stand-in uses a fixed time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("stand-in/iter", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("stand-in");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter_batched(|| vec![1u64; n as usize], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
