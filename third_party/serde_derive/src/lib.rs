//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The offline `serde` stand-in gives every type a blanket marker-trait
//! impl, so these derives only need to exist for name resolution — they
//! expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` stand-in's blanket impl covers the type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` stand-in's blanket impl covers the type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
