//! Value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String patterns of the form `"[a-z]{m,n}"` (the only regex subset
/// this workspace uses). Anything else panics with a clear message.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min_len, max_len) = parse_char_class_pattern(self).unwrap_or_else(|| {
            panic!(
                "proptest stand-in: unsupported string pattern {self:?} \
                 (only \"[x-y]{{m,n}}\" is implemented)"
            )
        });
        let len = rng.gen_range(min_len..=max_len);
        (0..len).map(|_| rng.gen_range(lo..=hi) as char).collect()
    }
}

/// Parses `[x-y]{m,n}` into `(x, y, m, n)`.
fn parse_char_class_pattern(pattern: &str) -> Option<(u8, u8, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let &[lo, b'-', hi] = class.as_bytes() else {
        return None;
    };
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min_len, max_len) = counts.split_once(',')?;
    let min_len = min_len.parse().ok()?;
    let max_len = max_len.parse().ok()?;
    (lo <= hi && min_len <= max_len).then_some((lo, hi, min_len, max_len))
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Object-safe strategy view, used by [`Union`] to mix strategies of
/// different concrete types but one value type.
pub trait DynStrategy<T> {
    /// Generates one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Boxes one `prop_oneof!` arm.
pub fn union_arm<T, S>(strategy: S) -> Box<dyn DynStrategy<T>>
where
    S: Strategy<Value = T> + 'static,
{
    Box::new(strategy)
}

/// Uniform choice between strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate_dyn(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_tuples_and_maps() {
        let mut r = rng();
        let s = (0u64..10, -1.0f64..1.0).prop_map(|(a, b)| (a * 2, b.abs()));
        for _ in 0..200 {
            let (a, b) = s.generate(&mut r);
            assert!(a < 20 && a % 2 == 0);
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn string_patterns() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{1,12}".generate(&mut r);
            assert!((1..=12).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
        assert_eq!(parse_char_class_pattern("[0-9]{2,2}"), Some((b'0', b'9', 2, 2)));
        assert_eq!(parse_char_class_pattern("nope"), None);
    }

    #[test]
    fn unions_cover_all_arms() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(s.generate(&mut r));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }

    #[test]
    fn any_generates_extremes_eventually() {
        let mut r = rng();
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
