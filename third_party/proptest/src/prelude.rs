//! The usual `use proptest::prelude::*;` surface.

pub use crate::strategy::{any, Arbitrary, Just, Strategy};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
