//! Offline mini property-testing stand-in for `proptest` 1.
//!
//! Implements the subset this workspace uses: the `proptest!` macro,
//! strategies over numeric ranges, tuples, `Just`, `any::<T>()`,
//! simple `"[a-z]{m,n}"` string patterns, `proptest::collection::vec`,
//! `.prop_map`, `prop_oneof!`, and the `prop_assert*`/`prop_assume!`
//! macros. No shrinking: a failing case panics with the seed-derived
//! case number, and runs are fully deterministic (case seeds derive
//! from the test's module path; `PROPTEST_CASES` overrides the default
//! of 64 cases).

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop_holds(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __runner = $crate::test_runner::Runner::new(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__runner.cases() {
                    let mut __rng = __runner.rng_for(__case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __body = move || $body;
                    __body();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Picks one of several strategies (uniformly; weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}
