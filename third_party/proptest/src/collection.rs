//! Collection strategies.

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from a half-open
/// range, mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = vec(0u32..5, 1..10);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn nested_vecs() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = vec(vec(crate::strategy::any::<u8>(), 0..16), 0..20);
        let v = s.generate(&mut rng);
        assert!(v.len() < 20);
        assert!(v.iter().all(|inner| inner.len() < 16));
    }
}
