//! Deterministic case scheduling for `proptest!`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Default number of cases per property (`PROPTEST_CASES` overrides).
const DEFAULT_CASES: u32 = 64;

/// Schedules the cases of one property test.
pub struct Runner {
    cases: u32,
    base_seed: u64,
}

impl Runner {
    /// A runner whose case seeds derive from `name` (the test's module
    /// path), so every run of the same test is identical.
    pub fn new(name: &str) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        Runner { cases, base_seed: fnv1a(name.as_bytes()) }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        ChaCha8Rng::seed_from_u64(self.base_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_name_same_streams() {
        let a = Runner::new("mod::prop");
        let b = Runner::new("mod::prop");
        assert_eq!(a.rng_for(3).next_u64(), b.rng_for(3).next_u64());
        let c = Runner::new("mod::other");
        assert_ne!(a.rng_for(3).next_u64(), c.rng_for(3).next_u64());
        assert_ne!(a.rng_for(3).next_u64(), a.rng_for(4).next_u64());
    }
}
