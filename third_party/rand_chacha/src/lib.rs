//! Offline stand-in for `rand_chacha` 0.3.
//!
//! The block function is a genuine ChaCha8 (RFC 7539 quarter-rounds, 8
//! rounds, 64-byte blocks, little-endian word output), keyed from the
//! 32-byte seed with a zero nonce and a 64-bit block counter. The word
//! stream is *not* guaranteed to be bit-identical to upstream
//! `rand_chacha` (which uses a different counter layout); within this
//! workspace only determinism matters, and that holds.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// Deterministic ChaCha8-based generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(b);
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(20220701);
        let mut b = ChaCha8Rng::seed_from_u64(20220701);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);
        let mut c = ChaCha8Rng::seed_from_u64(20220702);
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn clone_forks_the_stream_in_place() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 7]);
    }
}
